"""Input validation helpers shared across the library.

The checks raise :class:`ValidationError` (a ``ValueError`` subclass) with
messages that name the offending argument, which keeps the public API
error messages consistent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp


class ValidationError(ValueError):
    """Raised when a user-supplied argument fails a sanity check."""


def check_positive(value: float, name: str) -> float:
    """Ensure ``value > 0``; return it unchanged."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Ensure ``value >= 0``; return it unchanged."""
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(value: float, low: float, high: float, name: str,
                   inclusive: bool = True) -> float:
    """Ensure ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        raise ValidationError(
            f"{name} must lie in {'[' if inclusive else '('}{low}, {high}"
            f"{']' if inclusive else ')'}, got {value!r}"
        )
    return value


def check_square(matrix, name: str = "matrix"):
    """Ensure a (sparse or dense) matrix is square; return it unchanged."""
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {matrix.shape}")
    return matrix


def check_symmetric(matrix, name: str = "matrix", tol: float = 1e-10):
    """Ensure a sparse matrix is numerically symmetric within *tol*."""
    check_square(matrix, name)
    m = sp.csr_matrix(matrix)
    diff = (m - m.T).tocoo()
    if diff.nnz:
        max_dev = float(np.max(np.abs(diff.data)))
        scale = float(np.max(np.abs(m.data))) if m.nnz else 1.0
        if max_dev > tol * max(scale, 1.0):
            raise ValidationError(
                f"{name} is not symmetric: max deviation {max_dev:.3e} "
                f"(tolerance {tol:.1e} relative to {scale:.3e})"
            )
    return matrix


def check_spd_sample(matrix, name: str = "matrix", n_probes: int = 4,
                     rng: Optional[np.random.Generator] = None, tol: float = 0.0):
    """Cheap probabilistic SPD check: ``v.T @ A @ v > tol`` for random probes.

    A full Cholesky would be too expensive for the large matrices used in
    benchmarks; random quadratic-form probes catch sign errors in the
    generators while staying O(nnz).
    """
    check_symmetric(matrix, name)
    m = sp.csr_matrix(matrix)
    rng = rng if rng is not None else np.random.default_rng(0)
    n = m.shape[0]
    for _ in range(max(1, n_probes)):
        v = rng.standard_normal(n)
        quad = float(v @ (m @ v))
        if not quad > tol:
            raise ValidationError(
                f"{name} failed SPD probe: v.T A v = {quad:.3e} <= {tol:.3e}"
            )
    return matrix


def check_rank_list(ranks, n_nodes: int, name: str = "ranks"):
    """Validate a collection of node ranks against the cluster size."""
    ranks = list(ranks)
    if len(set(ranks)) != len(ranks):
        raise ValidationError(f"{name} contains duplicates: {ranks}")
    for r in ranks:
        if not (0 <= int(r) < n_nodes):
            raise ValidationError(
                f"{name} entry {r} out of range for {n_nodes} nodes"
            )
    return [int(r) for r in ranks]
