"""Deterministic random-number handling.

All stochastic behaviour in the library (synthetic matrices, failure
scenarios, runtime jitter in the cost model) flows through
:class:`numpy.random.Generator` objects created here, so that every
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

#: Canonical alias used throughout the code base.
RandomState = np.random.Generator

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> RandomState:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer, an existing generator
        (returned unchanged), or a :class:`numpy.random.SeedSequence`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[RandomState]:
    """Create *count* statistically independent generators from one seed.

    Used by the experiment harness to give every repetition of a
    configuration its own stream while remaining reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh entropy from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(count)]


def stable_hash_seed(*parts: object, base_seed: int = 0) -> int:
    """Derive a stable 63-bit seed from a tuple of hashable descriptors.

    Unlike the built-in :func:`hash`, the result does not depend on
    ``PYTHONHASHSEED``: only ``repr`` of the parts and the base seed matter.
    This is used to give e.g. (matrix-id, phi, location, repetition) its own
    deterministic stream.
    """
    import hashlib

    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode())
    for part in parts:
        digest.update(b"\x1f")
        digest.update(repr(part).encode())
    return int.from_bytes(digest.digest()[:8], "little") & (2**63 - 1)


def jittered(rng: Optional[RandomState], value: float, rel_std: float) -> float:
    """Return *value* perturbed by multiplicative Gaussian noise.

    The cost model uses this to emulate run-to-run variability of a real
    machine (the paper reports mean +/- standard deviation over >= 5 runs).
    ``rng=None`` or ``rel_std<=0`` returns *value* unchanged; the result is
    clipped below at 10% of the nominal value so a jitter draw can never
    produce a non-positive duration.
    """
    if rng is None or rel_std <= 0.0:
        return float(value)
    factor = 1.0 + rel_std * float(rng.standard_normal())
    return float(value) * max(factor, 0.1)


def choice_without_replacement(rng: RandomState, pool: Iterable[int], k: int) -> List[int]:
    """Sample *k* distinct elements of *pool* (helper for failure scenarios)."""
    pool = list(pool)
    if k > len(pool):
        raise ValueError(f"cannot sample {k} items from a pool of {len(pool)}")
    idx = rng.choice(len(pool), size=k, replace=False)
    return [pool[int(i)] for i in idx]
