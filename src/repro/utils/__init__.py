"""Small shared utilities: RNG handling, validation, lightweight logging.

These helpers are deliberately dependency-free (NumPy only) and are used by
every other subpackage.  They carry no domain logic of their own.
"""

from .rng import RandomState, spawn_rngs, as_rng
from .validation import (
    check_positive,
    check_nonnegative,
    check_in_range,
    check_square,
    check_symmetric,
    check_spd_sample,
    ValidationError,
)
from .logging import get_logger, set_verbosity

__all__ = [
    "RandomState",
    "spawn_rngs",
    "as_rng",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_square",
    "check_symmetric",
    "check_spd_sample",
    "ValidationError",
    "get_logger",
    "set_verbosity",
]
