"""Minimal logging facade.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace.  By default nothing is emitted (a ``NullHandler`` is
installed); the harness and the examples call :func:`set_verbosity` to turn
on human-readable progress output.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

_ROOT_NAME = "repro"

_root = logging.getLogger(_ROOT_NAME)
if not _root.handlers:
    _root.addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    ``get_logger("core.pcg")`` yields the logger ``repro.core.pcg``.
    """
    if not name:
        return _root
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_verbosity(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root logger.

    Parameters
    ----------
    level:
        Standard :mod:`logging` level (e.g. ``logging.DEBUG``).
    stream:
        Target stream; defaults to ``sys.stderr``.
    """
    stream = stream if stream is not None else sys.stderr
    for handler in list(_root.handlers):
        if isinstance(handler, logging.StreamHandler) and not isinstance(
            handler, logging.NullHandler
        ):
            _root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(
        logging.Formatter("[%(levelname)s] %(name)s: %(message)s")
    )
    _root.addHandler(handler)
    _root.setLevel(level)
    return _root
