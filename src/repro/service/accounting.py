"""Cost attribution and service statistics.

When ``k`` requests coalesce into one block solve, the batch is charged once
by the :class:`~repro.cluster.cost_model.CostLedger` -- the service must then
attribute those charges back to the tenants that rode in the batch.  The
attribution model follows how the block solver actually scales (see
``repro.core.block_pcg``):

* **volume terms** (every ``compute.*`` phase) scale with the columns, so
  they are split proportionally to each request's column work
  (``iterations + 1`` block operations touched the column);
* **message/latency terms** (``comm.*``, ``recovery.*``, ``checkpoint``)
  have a message count independent of ``k`` -- that is the whole point of
  coalescing -- so they are amortized equally across the batch.

Shares are computed by :func:`exact_shares`, whose contract is *exact*
floating-point conservation: the left-to-right ``sum()`` of the returned
shares equals the input total bit-for-bit (the proportionality is only
approximate -- the last share absorbs the rounding, fixed up ulp by ulp).
That makes per-tenant ledgers reconcile exactly against the service ledger,
with no "leaked" simulated nanoseconds.

:class:`ServiceStats` accumulates per-request results into a
JSON-round-trippable snapshot.  Its :meth:`~ServiceStats.aggregate` view is
built exclusively from simulated/deterministic quantities, so a seeded
traffic trace produces byte-identical aggregates across scheduler
invocations; host-wallclock latency percentiles live in the separate
:meth:`~ServiceStats.latency_summary`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

#: Ledger-phase prefix of the per-column volume terms.
VOLUME_PHASE_PREFIX = "compute."


def _fit_complement(partial: float, total: float) -> Optional[float]:
    """A ``last`` with ``fl(partial + last) == total``, or ``None``.

    ``total - partial`` is within an ulp or two of the exact complement and
    float addition is monotone in ``last``, so a few ulp steps either land
    on *total* or prove it unreachable (the candidate sums straddle *total*
    without hitting it -- a round-to-even tie).
    """
    last = total - partial
    for _ in range(8):
        recomposed = partial + last
        if recomposed == total:
            return last
        last = math.nextafter(last, math.inf if recomposed < total
                              else -math.inf)
    return None


def exact_shares(total: float, weights: Sequence[float]) -> List[float]:
    """Split *total* into ``len(weights)`` shares that sum back exactly.

    The first ``k - 1`` shares are the rounded proportional values
    ``fl(total * w_j / W)``; the last share is the complement ``total -
    sum(shares[:-1])`` nudged by ulps (``math.nextafter``) until the
    left-to-right float sum of all shares reproduces *total* bit-for-bit.
    When no complement can reach *total* (the candidate sums tie exactly
    between two representable values and round-to-even skips *total*), the
    preceding share is nudged an ulp to move the prefix sum off the tie.
    With every weight zero the split degrades to equal weights.
    """
    k = len(weights)
    if k == 0:
        raise ValueError("cannot split a charge over zero requests")
    if k == 1:
        return [float(total)]
    total = float(total)
    w = [float(max(x, 0.0)) for x in weights]
    w_sum = math.fsum(w)
    if w_sum <= 0.0 or not math.isfinite(w_sum):
        w = [1.0] * k
        w_sum = float(k)
    shares = [total * (w[j] / w_sum) for j in range(k - 1)]
    for _ in range(64):
        partial = 0.0
        for s in shares:
            partial += s
        last = _fit_complement(partial, total)
        if last is not None:
            shares.append(last)
            return shares
        # Tie-break: step the largest prefix share one ulp toward zero (it
        # is nonzero whenever a tie can occur, and its granularity is at
        # most the sum's, so the prefix sum moves off the midpoint within a
        # few steps).
        at = max(range(k - 1), key=lambda j: abs(shares[j]))
        shares[at] = math.nextafter(shares[at], 0.0)
    raise ArithmeticError(  # pragma: no cover - defensive, not reachable
        f"could not reconcile shares against total {total!r}")


def split_charges(breakdown: Mapping[str, float],
                  column_weights: Sequence[float]) -> List[Dict[str, float]]:
    """Attribute a batch's per-phase charges to its coalesced requests.

    *breakdown* is the batch's per-phase simulated-time delta (e.g.
    ``result.time_breakdown``); *column_weights* holds one volume weight per
    request in column order (the service uses ``iterations_j + 1``).
    Returns one ``{phase: share}`` dict per request.  For every phase the
    left-to-right sum of the shares over the requests equals the batch total
    exactly (:func:`exact_shares`), so summing the returned dicts
    reconstructs *breakdown* bit-for-bit.
    """
    k = len(column_weights)
    if k == 0:
        raise ValueError("cannot attribute charges to zero requests")
    per_request: List[Dict[str, float]] = [{} for _ in range(k)]
    equal = [1.0] * k
    for phase in sorted(breakdown):
        total = float(breakdown[phase])
        is_volume = phase.startswith(VOLUME_PHASE_PREFIX)
        shares = exact_shares(total, column_weights if is_volume else equal)
        for j in range(k):
            per_request[j][phase] = shares[j]
    return per_request


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` in [0, 100].  Returns ``nan`` for an empty sequence.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return float("nan")
    ordered = sorted(float(v) for v in values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class TenantUsage:
    """Accumulated usage of one tenant (the per-tenant cost ledger)."""

    tenant: str
    n_requests: int = 0
    n_converged: int = 0
    iterations: int = 0
    simulated_time: float = 0.0
    #: Per-phase attributed charges, summed over the tenant's requests.
    charges: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "n_requests": int(self.n_requests),
            "n_converged": int(self.n_converged),
            "iterations": int(self.iterations),
            "simulated_time": float(self.simulated_time),
            "charges": {k: float(self.charges[k])
                        for k in sorted(self.charges)},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantUsage":
        return cls(tenant=str(data["tenant"]),
                   n_requests=int(data["n_requests"]),
                   n_converged=int(data["n_converged"]),
                   iterations=int(data["iterations"]),
                   simulated_time=float(data["simulated_time"]),
                   charges=dict(data["charges"]))


@dataclass
class ServiceStats:
    """Accumulated service statistics; JSON-round-trippable.

    The deterministic core (request/batch counts, widths, per-tenant
    ledgers, simulated time) is separated from the host-wallclock latency
    samples: :meth:`aggregate` summarizes only the former and is therefore
    byte-identical across invocations for a seeded trace, while
    :meth:`latency_summary` reports the (run-dependent) p50/p99 wallclock
    percentiles.
    """

    n_requests: int = 0
    n_batches: int = 0
    #: Requests that rode in a batch of width >= 2.
    n_coalesced: int = 0
    n_failed: int = 0
    batch_widths: List[int] = field(default_factory=list)
    tenants: Dict[str, TenantUsage] = field(default_factory=dict)
    #: Total simulated time charged across all batches.
    simulated_time: float = 0.0
    #: Host-wallclock samples (seconds), one per completed request.
    queue_waits_s: List[float] = field(default_factory=list)
    batch_waits_s: List[float] = field(default_factory=list)
    solves_s: List[float] = field(default_factory=list)
    latencies_s: List[float] = field(default_factory=list)

    # -- recording -----------------------------------------------------------
    def record_batch(self, width: int) -> None:
        self.n_batches += 1
        self.batch_widths.append(int(width))

    def record_request(self, result: "Any") -> None:
        """Fold one resolved :class:`~repro.service.jobs.RequestResult` in."""
        self.n_requests += 1
        if result.batch_width >= 2:
            self.n_coalesced += 1
        usage = self.tenants.get(result.tenant)
        if usage is None:
            usage = TenantUsage(result.tenant)
            self.tenants[result.tenant] = usage
        usage.n_requests += 1
        usage.n_converged += int(bool(result.converged))
        usage.iterations += int(result.iterations)
        usage.simulated_time += float(result.simulated_time)
        for phase in sorted(result.charges):
            usage.charges[phase] = usage.charges.get(phase, 0.0) \
                + float(result.charges[phase])
        self.simulated_time += float(result.simulated_time)
        self.queue_waits_s.append(float(result.queue_wait_s))
        self.batch_waits_s.append(float(result.batch_wait_s))
        self.solves_s.append(float(result.solve_s))
        self.latencies_s.append(float(result.latency_s))

    def record_failure(self) -> None:
        self.n_failed += 1

    # -- views ---------------------------------------------------------------
    @property
    def mean_batch_width(self) -> float:
        if not self.batch_widths:
            return float("nan")
        return math.fsum(self.batch_widths) / len(self.batch_widths)

    def aggregate(self) -> Dict[str, Any]:
        """Deterministic aggregate view (no host-wallclock quantities).

        For a seeded traffic trace pumped through a deterministic scheduler
        this dictionary is byte-identical across invocations.
        """
        return {
            "n_requests": int(self.n_requests),
            "n_batches": int(self.n_batches),
            "n_coalesced": int(self.n_coalesced),
            "n_failed": int(self.n_failed),
            "batch_widths": list(self.batch_widths),
            "mean_batch_width": self.mean_batch_width,
            "simulated_time": float(self.simulated_time),
            "tenants": {name: self.tenants[name].to_dict()
                        for name in sorted(self.tenants)},
        }

    def latency_summary(self) -> Dict[str, float]:
        """Host-wallclock latency percentiles (run-dependent)."""
        return {
            "queue_wait_p50_s": percentile(self.queue_waits_s, 50.0),
            "queue_wait_p99_s": percentile(self.queue_waits_s, 99.0),
            "solve_p50_s": percentile(self.solves_s, 50.0),
            "solve_p99_s": percentile(self.solves_s, 99.0),
            "latency_p50_s": percentile(self.latencies_s, 50.0),
            "latency_p99_s": percentile(self.latencies_s, 99.0),
            "latency_mean_s": (math.fsum(self.latencies_s)
                               / len(self.latencies_s))
            if self.latencies_s else float("nan"),
        }

    # -- (de)serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Full JSON-round-trippable snapshot (see :meth:`from_dict`)."""
        return {
            "n_requests": int(self.n_requests),
            "n_batches": int(self.n_batches),
            "n_coalesced": int(self.n_coalesced),
            "n_failed": int(self.n_failed),
            "batch_widths": list(self.batch_widths),
            "simulated_time": float(self.simulated_time),
            "tenants": {name: self.tenants[name].to_dict()
                        for name in sorted(self.tenants)},
            "queue_waits_s": [float(v) for v in self.queue_waits_s],
            "batch_waits_s": [float(v) for v in self.batch_waits_s],
            "solves_s": [float(v) for v in self.solves_s],
            "latencies_s": [float(v) for v in self.latencies_s],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceStats":
        return cls(
            n_requests=int(data["n_requests"]),
            n_batches=int(data["n_batches"]),
            n_coalesced=int(data["n_coalesced"]),
            n_failed=int(data["n_failed"]),
            batch_widths=[int(v) for v in data["batch_widths"]],
            tenants={str(name): TenantUsage.from_dict(usage)
                     for name, usage in data["tenants"].items()},
            simulated_time=float(data["simulated_time"]),
            queue_waits_s=[float(v) for v in data["queue_waits_s"]],
            batch_waits_s=[float(v) for v in data["batch_waits_s"]],
            solves_s=[float(v) for v in data["solves_s"]],
            latencies_s=[float(v) for v in data["latencies_s"]],
        )
