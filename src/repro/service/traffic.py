"""Seeded synthetic traffic for the solver service.

The benchmark and the determinism tests need *reproducible* request
streams: a :class:`TrafficSpec` describes the workload shape (how many
requests, over which matrices, from which tenants, at what Poisson arrival
rate) and :func:`generate_traffic` expands it into a concrete list of
:class:`SyntheticRequest` entries.  All randomness flows through
:mod:`repro.utils.rng` (R001), so one integer seed pins the entire trace --
right-hand sides, tenants, matrices and inter-arrival gaps alike.

Right-hand sides are drawn as standard-normal vectors; with ``n_modes > 0``
a request instead picks one of ``n_modes`` shared base vectors plus a small
normal perturbation, emulating the request similarity real workloads show
(many tenants asking near-identical questions of the same operator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from ..utils.rng import SeedLike, as_rng, spawn_rngs


@dataclass(frozen=True)
class TrafficSpec:
    """Shape of a synthetic request stream (JSON-round-trippable)."""

    #: Total number of requests in the trace.
    n_requests: int = 32
    #: Matrix ids the requests target, drawn uniformly.
    matrix_ids: Tuple[str, ...] = ("default",)
    #: Tenant names, drawn uniformly.
    tenants: Tuple[str, ...] = ("tenant-0",)
    #: Mean request rate (requests / second of host time); the trace carries
    #: exponential inter-arrival gaps with this rate.  ``<= 0`` means all
    #: requests arrive at once (gaps of zero).
    rate_per_s: float = 0.0
    #: Number of shared right-hand-side modes (0: fully independent rhs).
    n_modes: int = 0
    #: Relative perturbation applied around a shared mode.
    mode_noise: float = 0.01

    def __post_init__(self) -> None:
        if self.n_requests < 0:
            raise ValueError(
                f"n_requests must be >= 0, got {self.n_requests}")
        if not self.matrix_ids:
            raise ValueError("matrix_ids must not be empty")
        if not self.tenants:
            raise ValueError("tenants must not be empty")
        if self.n_modes < 0:
            raise ValueError(f"n_modes must be >= 0, got {self.n_modes}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_requests": int(self.n_requests),
            "matrix_ids": list(self.matrix_ids),
            "tenants": list(self.tenants),
            "rate_per_s": float(self.rate_per_s),
            "n_modes": int(self.n_modes),
            "mode_noise": float(self.mode_noise),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficSpec":
        return cls(n_requests=int(data["n_requests"]),
                   matrix_ids=tuple(str(m) for m in data["matrix_ids"]),
                   tenants=tuple(str(t) for t in data["tenants"]),
                   rate_per_s=float(data["rate_per_s"]),
                   n_modes=int(data["n_modes"]),
                   mode_noise=float(data["mode_noise"]))


@dataclass(frozen=True)
class SyntheticRequest:
    """One generated request: target, payload and its arrival offset."""

    index: int
    matrix_id: str
    tenant: str
    rhs: np.ndarray
    #: Seconds after the trace start at which the request arrives.
    arrival_s: float


def generate_traffic(spec: TrafficSpec, sizes: Mapping[str, int], *,
                     seed: SeedLike = 0) -> List[SyntheticRequest]:
    """Expand *spec* into a concrete, fully seeded request trace.

    *sizes* maps each matrix id of the spec to its problem size ``n`` (the
    generated right-hand sides must match the registered operators).  The
    same ``(spec, sizes, seed)`` triple always yields the same trace.
    """
    for matrix_id in spec.matrix_ids:
        if matrix_id not in sizes:
            raise ValueError(
                f"no size given for matrix id {matrix_id!r}")
    # Independent streams: one for the request schedule (targets, tenants,
    # arrivals), one per matrix for the rhs payloads, so adding a matrix
    # does not reshuffle everything else.
    schedule_rng, payload_root = spawn_rngs(seed, 2)
    payload_rngs = dict(zip(
        spec.matrix_ids, spawn_rngs(payload_root, len(spec.matrix_ids))))
    modes: Dict[str, Sequence[np.ndarray]] = {}
    if spec.n_modes > 0:
        for matrix_id in spec.matrix_ids:
            rng = payload_rngs[matrix_id]
            modes[matrix_id] = [rng.standard_normal(sizes[matrix_id])
                                for _ in range(spec.n_modes)]

    requests: List[SyntheticRequest] = []
    arrival = 0.0
    for index in range(spec.n_requests):
        matrix_id = spec.matrix_ids[
            int(schedule_rng.integers(len(spec.matrix_ids)))]
        tenant = spec.tenants[int(schedule_rng.integers(len(spec.tenants)))]
        if spec.rate_per_s > 0.0:
            arrival += float(schedule_rng.exponential(1.0 / spec.rate_per_s))
        rng = payload_rngs[matrix_id]
        n = sizes[matrix_id]
        if spec.n_modes > 0:
            mode = modes[matrix_id][int(schedule_rng.integers(spec.n_modes))]
            rhs = mode + spec.mode_noise * rng.standard_normal(n)
        else:
            rhs = rng.standard_normal(n)
        requests.append(SyntheticRequest(
            index=index, matrix_id=matrix_id, tenant=tenant,
            rhs=np.asarray(rhs, dtype=np.float64), arrival_s=arrival))
    return requests
