"""Batching policies: which pending requests coalesce into which batch.

A batching policy decides, given the FIFO queue of pending requests and the
current instant, which batches are ready to dispatch *now*.  Policies are
plain functions behind a decorator registry mirroring the solver,
preconditioner and placement registries
(:data:`repro.core.registry.SOLVERS`,
:data:`repro.core.placement.PLACEMENTS`):

.. code-block:: python

    @register_batching_policy("my_policy", "one-line description")
    def my_policy(pending, *, now, window_s, k_max, drain=False):
        return [batch, batch2, ...]   # disjoint sublists of ``pending``

Contract (shared by every policy; pinned by ``tests/test_service_policies``):

* requests may only share a batch if they share the same coalescing ``key``
  and are ``coalescable`` (non-coalescable requests always dispatch alone);
* batches never exceed ``k_max`` requests and list their members in FIFO
  (``seq``) order, so the column order of the resulting block solve -- and
  with it the bit-exact batch execution -- is deterministic;
* with ``drain=True`` every pending request must land in some batch (the
  queue is being flushed for shutdown);
* the returned batches are disjoint and each member is drawn from
  ``pending``; the scheduler removes dispatched requests, anything not
  returned stays queued for a later window.

Two built-in policies:

``fifo_window``
    Strict arrival order: the oldest request defines the head batch, which
    dispatches once full (``k_max``), once the head has waited ``window_s``,
    or on drain.  No request ever overtakes an older one, so per-request
    latency is bounded by ``window_s`` plus the solves queued ahead of it.
``greedy_width``
    Throughput first: pending requests are grouped by key and the widest
    groups dispatch first; full ``k_max`` batches ship immediately while
    partial groups wait out the window of their oldest member.  Maximizes
    amortization at the price of letting wide groups overtake old narrow
    ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .jobs import ServiceRequest

#: A batching-policy function:
#: ``(pending, *, now, window_s, k_max, drain) -> batches``.
BatchingPolicyFn = Callable[..., List[List[ServiceRequest]]]


@dataclass(frozen=True)
class BatchingPolicy:
    """A registered batching policy (name + batch-selection function)."""

    name: str
    fn: BatchingPolicyFn
    description: str = ""

    def select(self, pending: List[ServiceRequest], *, now: float,
               window_s: float, k_max: int,
               drain: bool = False) -> List[List[ServiceRequest]]:
        return self.fn(pending, now=now, window_s=window_s, k_max=k_max,
                       drain=drain)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BatchingPolicy({self.name!r})"


class BatchingPolicyRegistry:
    """Name -> :class:`BatchingPolicy` mapping with a decorator API."""

    def __init__(self) -> None:
        self._policies: Dict[str, BatchingPolicy] = {}

    def register(self, name: str, description: str = ""
                 ) -> Callable[[BatchingPolicyFn], BatchingPolicyFn]:
        """Decorator registering a batching-policy function under *name*."""
        key = str(name).lower()

        def decorator(fn: BatchingPolicyFn) -> BatchingPolicyFn:
            self._policies[key] = BatchingPolicy(key, fn, description)
            return fn

        return decorator

    def names(self) -> Tuple[str, ...]:
        """The registered policy names, sorted."""
        return tuple(sorted(self._policies))

    def get(self, name: str) -> BatchingPolicy:
        """The policy registered under *name* (case-insensitive).

        Raises ``ValueError`` listing every registered name when *name* is
        unknown (mirroring :class:`repro.core.registry.SolverRegistry`).
        """
        key = str(name).lower()
        try:
            return self._policies[key]
        except KeyError:
            raise ValueError(
                f"unknown batching policy {name!r}; available: {self.names()}"
            ) from None


#: The default registry consulted by :class:`repro.service.SolverService`.
BATCHING_POLICIES = BatchingPolicyRegistry()

#: Register a batching policy in the default registry (decorator).
register_batching_policy = BATCHING_POLICIES.register


def _take_group(pending: List[ServiceRequest], head: ServiceRequest,
                k_max: int) -> List[ServiceRequest]:
    """The head batch: *head* plus up to ``k_max - 1`` later key-mates.

    Non-coalescable heads dispatch alone; members keep FIFO order by
    construction (``pending`` is scanned in arrival order).
    """
    if not head.coalescable or k_max <= 1:
        return [head]
    group = [head]
    for req in pending:
        if len(group) == k_max:
            break
        if req is head:
            continue
        if req.coalescable and req.key == head.key:
            group.append(req)
    return group


@register_batching_policy(
    "fifo_window",
    "strict arrival order; head batch waits at most window_s")
def fifo_window(pending: List[ServiceRequest], *, now: float,
                window_s: float, k_max: int,
                drain: bool = False) -> List[List[ServiceRequest]]:
    remaining = list(pending)
    batches: List[List[ServiceRequest]] = []
    while remaining:
        head = remaining[0]
        group = _take_group(remaining, head, k_max)
        full = len(group) == k_max or not head.coalescable
        expired = (now - head.enqueued_at) >= window_s
        if not (full or expired or drain):
            # The head is still inside its batching window: nothing younger
            # may overtake it, so the whole queue waits.
            break
        batches.append(group)
        taken = {req.seq for req in group}
        remaining = [req for req in remaining if req.seq not in taken]
    return batches


@register_batching_policy(
    "greedy_width",
    "widest key groups first; full batches ship immediately")
def greedy_width(pending: List[ServiceRequest], *, now: float,
                 window_s: float, k_max: int,
                 drain: bool = False) -> List[List[ServiceRequest]]:
    # Group by coalescing key; non-coalescable requests are singleton groups
    # keyed by their (unique) sequence number.
    groups: Dict[object, List[ServiceRequest]] = {}
    for req in pending:
        group_key: object = req.key if req.coalescable else ("solo", req.seq)
        groups.setdefault(group_key, []).append(req)
    # Widest first, ties broken by the oldest member -- a deterministic total
    # order, independent of dict insertion order.
    ordered = sorted(groups.values(),
                     key=lambda g: (-len(g), g[0].seq))
    batches: List[List[ServiceRequest]] = []
    for group in ordered:
        solo = not group[0].coalescable
        # Full k_max chunks ship immediately (members stay in FIFO order).
        while len(group) >= k_max and not solo:
            batches.append(group[:k_max])
            group = group[k_max:]
        if not group:
            continue
        expired = (now - group[0].enqueued_at) >= window_s
        if solo or expired or drain:
            batches.append(group)
    return batches
