"""The solver service: an async job queue coalescing requests into block solves.

:class:`SolverService` is the serving layer of the ROADMAP's
"production-scale" story.  Clients register matrices once
(:meth:`~SolverService.register_matrix` -> a cached
:class:`~repro.core.api.DistributedProblem`, so the operator gather and the
preconditioner factorization are paid once, not per request) and then submit
many independent ``(matrix_id, rhs, spec)`` solve requests.  A batching
policy (:mod:`repro.service.policies`) groups pending requests that share a
compatible ``(matrix_id, SolveSpec)`` key into one ``(n, k)`` block solve
through :func:`repro.solve` -- continuous batching, exactly as inference
servers do it: the block solver's allreduce *message* count is independent
of ``k``, so ``k`` coalesced requests pay the latency-bound reductions once.

**Bit-exactness.**  A batch of width 1 dispatches the raw 1-D right-hand
side through the identical ``repro.solve`` path a direct call would take; a
batch of width ``k > 1`` column-stacks the right-hand sides and rides the
block solver, whose per-column equivalence contract
(:mod:`repro.core.block_pcg`) makes column ``j`` bit-identical to the
sequential solve of request ``j``.  Either way the service returns exactly
what one-at-a-time dispatch would have.

**Coalescing key.**  Requests may merge only when they target the same
``matrix_id`` with an *auto-selecting* spec (``spec.solver is None`` and no
explicit block extension) whose configuration is JSON-serializable --
pinning a solver by name, attaching a ``BlockSpec``, or passing a live
preconditioner instance makes the request non-coalescable and it dispatches
alone, never silently re-routed.

**Execution modes.**  With ``autostart=True`` a background scheduler thread
dispatches batches as windows fill or expire (host wallclock drives the
windows -- this module is on the R002/R007 allowlists for exactly that).
With ``autostart=False`` the service is a deterministic pull-based pump:
:meth:`~SolverService.pump`/:meth:`~SolverService.drain` run the policy and
execute the selected batches inline on the calling thread, so batching
depends only on queue order and the :meth:`ServiceStats.aggregate` view is
byte-identical across runs of a seeded trace.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..cluster.cluster import VirtualCluster
from ..cluster.cost_model import MachineModel
from ..cluster.network import Topology
from ..core.api import DistributedProblem, distribute_problem, solve
from ..core.block_pcg import BlockSolveResult
from ..core.spec import SolveSpec
from ..utils.logging import get_logger
from .accounting import ServiceStats, exact_shares, split_charges
from .jobs import (
    JobHandle,
    RequestResult,
    ServiceClosedError,
    ServiceRequest,
    UnknownMatrixError,
)
from .policies import BATCHING_POLICIES, BatchingPolicy

logger = get_logger("service")

#: Default batching window (seconds of host wallclock).
DEFAULT_WINDOW_S = 0.01
#: Default maximum batch width.
DEFAULT_K_MAX = 8


@dataclass
class _MatrixEntry:
    """One registered matrix: the cached problem plus its default spec."""

    matrix_id: str
    problem: DistributedProblem
    default_spec: SolveSpec


class SolverService:
    """Solver-as-a-service front end with request coalescing.

    Parameters
    ----------
    policy:
        Batching policy: a registered name (``"fifo_window"``,
        ``"greedy_width"``, ...) or a :class:`BatchingPolicy` instance.
    window_s:
        Maximum time a request may wait for co-batchable arrivals before its
        batch dispatches anyway.
    k_max:
        Maximum batch width (columns of one block solve).
    autostart:
        Start the background scheduler thread.  ``False`` leaves the service
        in deterministic pull mode: nothing dispatches until
        :meth:`pump`/:meth:`drain`/:meth:`solve_sync` is called.
    clock:
        Monotonic time source (injectable for window tests).
    """

    def __init__(self, *, policy: Union[str, BatchingPolicy] = "fifo_window",
                 window_s: float = DEFAULT_WINDOW_S,
                 k_max: int = DEFAULT_K_MAX,
                 autostart: bool = False,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if window_s < 0.0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if k_max < 1:
            raise ValueError(f"k_max must be >= 1, got {k_max}")
        self.policy = policy if isinstance(policy, BatchingPolicy) \
            else BATCHING_POLICIES.get(policy)
        self.window_s = float(window_s)
        self.k_max = int(k_max)
        self._clock = clock if clock is not None else time.monotonic
        self._matrices: Dict[str, _MatrixEntry] = {}
        self._pending: List[ServiceRequest] = []
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: Serializes batch execution (the ledger and the per-problem caches
        #: are shared mutable state; one batch runs at a time).
        self._exec_lock = threading.Lock()
        self._seq = 0
        self._batch_seq = 0
        self._closed = False
        self._stop = False
        self.stats = ServiceStats()
        self._thread: Optional[threading.Thread] = None
        if autostart:
            self.start()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Start the background scheduler thread (idempotent)."""
        if self._closed:
            raise ServiceClosedError("service is shut down")
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop = False
        self._thread = threading.Thread(target=self._scheduler_loop,
                                        name="solver-service-scheduler",
                                        daemon=True)
        self._thread.start()

    def shutdown(self, *, drain: bool = True) -> None:
        """Stop the service.

        With ``drain=True`` (default) every pending request is still
        executed -- in-flight batches finish, then the remaining queue is
        flushed through the policy with ``drain=True`` -- so all handles
        resolve.  With ``drain=False`` pending handles fail with
        :class:`ServiceClosedError` (in-flight batches still finish; they
        cannot be recalled).  Idempotent.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._stop = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if drain:
            self._pump(drain=True)
        else:
            with self._lock:
                abandoned, self._pending = self._pending, []
            for req in abandoned:
                req.handle._fail(ServiceClosedError(
                    f"service shut down with request {req.seq} pending"))
                self.stats.record_failure()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown(drain=exc_info[0] is None)

    # -- matrix registry -----------------------------------------------------
    def register_matrix(self, matrix_id: str, matrix: Any, *,
                        rhs: Optional[np.ndarray] = None,
                        n_nodes: int = 8,
                        machine: Optional[MachineModel] = None,
                        topology: Optional[Topology] = None,
                        seed: Optional[int] = None,
                        cluster: Optional[VirtualCluster] = None,
                        default_spec: Optional[SolveSpec] = None
                        ) -> DistributedProblem:
        """Register *matrix* under *matrix_id* and cache its problem.

        *matrix* may be a raw SPD matrix (distributed over a fresh or given
        cluster via :func:`repro.distribute_problem`) or an existing
        :class:`DistributedProblem` (adopted as-is; the cluster keywords must
        then be left at their defaults).  Re-registering an id raises.
        """
        matrix_id = str(matrix_id)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            if matrix_id in self._matrices:
                raise ValueError(f"matrix id {matrix_id!r} already registered")
        if isinstance(matrix, DistributedProblem):
            problem = matrix
        else:
            problem = distribute_problem(matrix, rhs, n_nodes=n_nodes,
                                         machine=machine, topology=topology,
                                         seed=seed, cluster=cluster)
        entry = _MatrixEntry(matrix_id, problem,
                             default_spec if default_spec is not None
                             else SolveSpec())
        with self._lock:
            if matrix_id in self._matrices:
                raise ValueError(f"matrix id {matrix_id!r} already registered")
            self._matrices[matrix_id] = entry
        return problem

    def matrix_ids(self) -> Tuple[str, ...]:
        """The registered matrix ids, sorted."""
        with self._lock:
            return tuple(sorted(self._matrices))

    def problem(self, matrix_id: str) -> DistributedProblem:
        """The cached problem of *matrix_id* (KeyError-compatible raise)."""
        with self._lock:
            entry = self._matrices.get(str(matrix_id))
        if entry is None:
            raise UnknownMatrixError(
                f"unknown matrix id {matrix_id!r}; registered: "
                f"{self.matrix_ids()}")
        return entry.problem

    # -- submission ----------------------------------------------------------
    @staticmethod
    def _coalescing_key(matrix_id: str, spec: SolveSpec
                        ) -> Tuple[str, bool]:
        """The coalescing key of ``(matrix_id, spec)`` and whether requests
        carrying it may merge at all."""
        if spec.solver is not None or spec.block is not None:
            # Pinned solver / explicit block configuration: coalescing would
            # re-route the request to a different solver than asked for.
            return f"pinned:{matrix_id}", False
        try:
            payload = spec.to_dict()
        except ValueError:
            # Live preconditioner instance etc.: not serializable, no key.
            return f"opaque:{matrix_id}", False
        return f"{matrix_id}|{json.dumps(payload, sort_keys=True)}", True

    def submit(self, matrix_id: str, rhs: Any, spec: Optional[SolveSpec] = None,
               *, tenant: str = "default") -> JobHandle:
        """Enqueue one solve request; returns an awaitable :class:`JobHandle`.

        The right-hand side is captured as a 1-D float64 copy of length
        ``n``; *spec* defaults to the matrix's registered ``default_spec``.
        """
        matrix_id = str(matrix_id)
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            entry = self._matrices.get(matrix_id)
        if entry is None:
            raise UnknownMatrixError(
                f"unknown matrix id {matrix_id!r}; registered: "
                f"{self.matrix_ids()}")
        if spec is None:
            spec = entry.default_spec
        values = np.array(rhs, dtype=np.float64, copy=True)
        if values.ndim != 1 or values.shape[0] != entry.problem.n:
            raise ValueError(
                f"rhs must be a 1-D vector of length {entry.problem.n}, "
                f"got shape {values.shape}")
        key, coalescable = self._coalescing_key(matrix_id, spec)
        with self._cond:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            seq = self._seq
            self._seq += 1
            handle = JobHandle(seq, matrix_id, tenant)
            self._pending.append(ServiceRequest(
                seq=seq, matrix_id=matrix_id, rhs=values, spec=spec,
                key=key, coalescable=coalescable, tenant=str(tenant),
                handle=handle, enqueued_at=self._clock()))
            self._cond.notify_all()
        return handle

    def solve_sync(self, matrix_id: str, rhs: Any,
                   spec: Optional[SolveSpec] = None, *,
                   tenant: str = "default",
                   timeout: Optional[float] = None) -> RequestResult:
        """Submit and block until the request resolves (sync convenience).

        Without a running scheduler thread the whole queue is drained inline
        first (other pending requests dispatch too, possibly coalescing with
        this one); with the thread running this simply waits for the
        request's window.
        """
        handle = self.submit(matrix_id, rhs, spec, tenant=tenant)
        if self._thread is None or not self._thread.is_alive():
            self.drain()
        return handle.result(timeout)

    # -- dispatching ---------------------------------------------------------
    def pump(self, *, drain: bool = False) -> int:
        """Run one policy pass inline; returns the number of batches run."""
        return self._pump_once(drain=drain)

    def drain(self) -> int:
        """Dispatch until the queue is empty; returns the batches run."""
        return self._pump(drain=True)

    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def _select_batches(self, *, drain: bool) -> List[List[ServiceRequest]]:
        """Run the policy under the lock and remove the selected requests."""
        with self._lock:
            if not self._pending:
                return []
            batches = self.policy.select(
                self._pending, now=self._clock(), window_s=self.window_s,
                k_max=self.k_max, drain=drain)
            taken = {req.seq for batch in batches for req in batch}
            if len(taken) != sum(len(batch) for batch in batches):
                raise RuntimeError(
                    f"batching policy {self.policy.name!r} returned "
                    "overlapping batches")
            self._pending = [req for req in self._pending
                             if req.seq not in taken]
        return batches

    def _pump_once(self, *, drain: bool) -> int:
        batches = self._select_batches(drain=drain)
        for batch in batches:
            self._execute_batch(batch)
        return len(batches)

    def _pump(self, *, drain: bool) -> int:
        total = 0
        while True:
            ran = self._pump_once(drain=drain)
            total += ran
            if ran == 0:
                return total

    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stop and not self._pending:
                    self._cond.wait()
                if self._stop:
                    # Leave whatever is still queued to shutdown(), which
                    # either drains it or fails the handles.
                    return
            # The policy decides readiness (full batches dispatch before
            # their window expires); zero batches means wait.
            ran = self._pump_once(drain=False)
            if ran == 0:
                with self._cond:
                    if self._stop:
                        return
                    if not self._pending:
                        continue
                    now = self._clock()
                    oldest = min(req.enqueued_at for req in self._pending)
                    wait_s = max(self.window_s - (now - oldest), 0.0)
                    # Sleep until the oldest window expires or a submission
                    # arrives.
                    self._cond.wait(timeout=max(wait_s, 1e-4))

    # -- batch execution -----------------------------------------------------
    def _execute_batch(self, batch: List[ServiceRequest]) -> None:
        with self._exec_lock:
            batch_id = self._batch_seq
            self._batch_seq += 1
            dispatched_at = self._clock()
            try:
                results = self._run_batch(batch, batch_id, dispatched_at)
            except Exception as exc:  # noqa: BLE001 - fail the whole batch
                logger.warning("batch %d failed: %s", batch_id, exc)
                for req in batch:
                    req.handle._fail(exc)
                    self.stats.record_failure()
                return
            for req, res in zip(batch, results):
                self.stats.record_request(res)
                req.handle._resolve(res)

    def _run_batch(self, batch: List[ServiceRequest], batch_id: int,
                   dispatched_at: float) -> List[RequestResult]:
        width = len(batch)
        spec = batch[0].spec
        with self._lock:
            entry = self._matrices[batch[0].matrix_id]
        solver_name = spec.resolved_solver(multi_rhs=width > 1)
        if width == 1:
            # Identical dispatch path to a direct ``repro.solve`` call.
            rhs: np.ndarray = batch[0].rhs
        else:
            rhs = np.column_stack([req.rhs for req in batch])
        result = solve(entry.problem, rhs, spec=spec)
        solved_at = self._clock()
        self.stats.record_batch(width)

        solve_s = solved_at - dispatched_at
        last_enqueued = max(req.enqueued_at for req in batch)
        if width == 1:
            columns = [self._single_column(result)]
            weights = [float(columns[0]["iterations"] + 1)]
        else:
            assert isinstance(result, BlockSolveResult)
            columns = [self._block_column(result, j) for j in range(width)]
            weights = [float(col["iterations"] + 1) for col in columns]
        charges = split_charges(result.time_breakdown, weights)
        sim_shares = exact_shares(result.simulated_time, weights)

        out: List[RequestResult] = []
        for j, req in enumerate(batch):
            col = columns[j]
            out.append(RequestResult(
                request_id=req.seq,
                tenant=req.tenant,
                matrix_id=req.matrix_id,
                x=col["x"],
                converged=col["converged"],
                iterations=col["iterations"],
                residual_norms=col["residual_norms"],
                final_residual_norm=col["final_residual_norm"],
                true_residual_norm=col["true_residual_norm"],
                solver=solver_name,
                batch_id=batch_id,
                batch_width=width,
                batch_column=j,
                simulated_time=sim_shares[j],
                charges=charges[j],
                queue_wait_s=dispatched_at - req.enqueued_at,
                batch_wait_s=max(0.0, last_enqueued - req.enqueued_at),
                solve_s=solve_s,
            ))
        return out

    @staticmethod
    def _single_column(result: Any) -> Dict[str, Any]:
        return {
            "x": result.x,
            "converged": bool(result.converged),
            "iterations": int(result.iterations),
            "residual_norms": [float(v) for v in result.residual_norms],
            "final_residual_norm": float(result.final_residual_norm),
            "true_residual_norm": float(result.true_residual_norm),
        }

    @staticmethod
    def _block_column(result: BlockSolveResult, j: int) -> Dict[str, Any]:
        return {
            "x": np.array(result.x[:, j], copy=True),
            "converged": bool(result.converged[j]),
            "iterations": int(result.iterations[j]),
            "residual_norms": [float(v)
                               for v in result.residual_histories[j]],
            "final_residual_norm": float(result.final_residual_norms[j]),
            "true_residual_norm": float(result.true_residual_norms[j]),
        }
