"""Solver-as-a-service: job queue, coalescing scheduler, cost attribution.

The serving layer of the repository (ROADMAP item "solver-as-a-service"):
:class:`SolverService` accepts many independent ``(matrix_id, rhs, spec)``
requests, a pluggable batching policy coalesces compatible requests into
``(n, k)`` block solves through :func:`repro.solve`, and the accounting
module attributes the batch's cost-ledger charges back to the tenants --
exactly, bit for bit.  See :mod:`repro.service.service` for the execution
model and guarantees.
"""

from .accounting import (
    ServiceStats,
    TenantUsage,
    exact_shares,
    percentile,
    split_charges,
)
from .jobs import (
    JobHandle,
    RequestResult,
    ServiceClosedError,
    ServiceError,
    ServiceRequest,
    UnknownMatrixError,
)
from .policies import (
    BATCHING_POLICIES,
    BatchingPolicy,
    BatchingPolicyRegistry,
    register_batching_policy,
)
from .service import DEFAULT_K_MAX, DEFAULT_WINDOW_S, SolverService
from .traffic import SyntheticRequest, TrafficSpec, generate_traffic

__all__ = [
    "BATCHING_POLICIES",
    "BatchingPolicy",
    "BatchingPolicyRegistry",
    "DEFAULT_K_MAX",
    "DEFAULT_WINDOW_S",
    "JobHandle",
    "RequestResult",
    "ServiceClosedError",
    "ServiceError",
    "ServiceRequest",
    "ServiceStats",
    "SolverService",
    "SyntheticRequest",
    "TenantUsage",
    "TrafficSpec",
    "UnknownMatrixError",
    "exact_shares",
    "generate_traffic",
    "percentile",
    "register_batching_policy",
    "split_charges",
]
