"""Request, handle and per-request result types of the solver service.

A client hands the service a ``(matrix_id, rhs, spec)`` triple and gets a
:class:`JobHandle` back immediately; the coalescing scheduler later resolves
the handle with a :class:`RequestResult` -- the per-request slice of whatever
batched solve the request rode in, including the attributed share of the
batch's :class:`~repro.cluster.cost_model.CostLedger` charges and the
request's latency decomposition.  Handles are awaitable (``await handle``
inside a coroutine) and blockable (``handle.result(timeout)``), so the same
service serves async and plain-threaded callers.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from ..core.spec import SolveSpec
from ..solvers.result import jsonify


class ServiceError(RuntimeError):
    """Base class of solver-service errors."""


class ServiceClosedError(ServiceError):
    """Submitting to a service that has been shut down."""


class UnknownMatrixError(ServiceError, KeyError):
    """Submitting against a ``matrix_id`` that was never registered."""


@dataclass
class RequestResult:
    """Per-request outcome of one service solve.

    The solver-side fields (``x``, ``converged``, ``iterations``,
    ``residual_norms``, the residual norms at termination) are the request's
    column of the batched solve and are **bit-identical** to a direct
    ``repro.solve`` dispatch of the same ``(problem, rhs, spec)`` -- the
    block solver's per-column equivalence contract carries over to the
    service.  On top of those the service adds batch bookkeeping, the
    request's attributed share of the batch's ledger charges (see
    :func:`repro.service.accounting.split_charges`), and host-wallclock
    latency accounting.
    """

    #: Monotone per-service request sequence number.
    request_id: int
    tenant: str
    matrix_id: str
    #: The request's solution vector (column of the batch solution block).
    x: np.ndarray
    converged: bool
    iterations: int
    #: Per-iteration recurrence residual norms of this request's column.
    residual_norms: List[float] = field(default_factory=list)
    final_residual_norm: float = float("nan")
    true_residual_norm: float = float("nan")
    #: Registered solver name the batch dispatched to.
    solver: str = ""
    #: Batch bookkeeping: which batch, how wide, which column was ours.
    batch_id: int = -1
    batch_width: int = 1
    batch_column: int = 0
    #: Attributed share of the batch's simulated time (sums exactly to the
    #: batch total over all coalesced requests).
    simulated_time: float = 0.0
    #: Attributed per-phase ledger charges (same exact-sum contract).
    charges: Dict[str, float] = field(default_factory=dict)
    #: Host-wallclock latency decomposition (seconds): time from submission
    #: to batch dispatch, the part of that spent waiting for later co-batched
    #: arrivals, and the batched solve itself.
    queue_wait_s: float = 0.0
    batch_wait_s: float = 0.0
    solve_s: float = 0.0

    @property
    def latency_s(self) -> float:
        """End-to-end host latency: queue wait plus the batched solve."""
        return float(self.queue_wait_s + self.solve_s)

    def to_dict(self, *, include_solution: bool = True,
                include_history: bool = True) -> Dict[str, Any]:
        """Plain JSON-serializable dictionary (the service response body)."""
        data: Dict[str, Any] = {
            "request_id": int(self.request_id),
            "tenant": self.tenant,
            "matrix_id": self.matrix_id,
            "converged": bool(self.converged),
            "iterations": int(self.iterations),
            "final_residual_norm": float(self.final_residual_norm),
            "true_residual_norm": float(self.true_residual_norm),
            "solver": self.solver,
            "batch_id": int(self.batch_id),
            "batch_width": int(self.batch_width),
            "batch_column": int(self.batch_column),
            "simulated_time": float(self.simulated_time),
            "charges": {k: float(self.charges[k])
                        for k in sorted(self.charges)},
            "queue_wait_s": float(self.queue_wait_s),
            "batch_wait_s": float(self.batch_wait_s),
            "solve_s": float(self.solve_s),
            "latency_s": self.latency_s,
        }
        if include_history:
            data["residual_norms"] = [float(v) for v in self.residual_norms]
        if include_solution:
            data["x"] = jsonify(self.x)
        return data


class JobHandle:
    """Awaitable handle of one submitted request.

    Wraps a :class:`concurrent.futures.Future` so the handle works from
    plain threads (:meth:`result` blocks) and from coroutines (``await
    handle`` suspends until the scheduler resolves the request).
    """

    def __init__(self, request_id: int, matrix_id: str, tenant: str) -> None:
        self.request_id = int(request_id)
        self.matrix_id = str(matrix_id)
        self.tenant = str(tenant)
        self._future: "concurrent.futures.Future[RequestResult]" = \
            concurrent.futures.Future()

    # -- completion API ------------------------------------------------------
    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> RequestResult:
        """Block until the request resolves; raises what the solve raised."""
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        return self._future.exception(timeout)

    def __await__(self) -> Generator[Any, None, RequestResult]:
        import asyncio

        return asyncio.wrap_future(self._future).__await__()

    # -- service-side resolution (not for clients) ---------------------------
    def _resolve(self, result: RequestResult) -> None:
        self._future.set_result(result)

    def _fail(self, exc: BaseException) -> None:
        self._future.set_exception(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "done" if self.done() else "pending"
        return (f"JobHandle(id={self.request_id}, matrix={self.matrix_id!r}, "
                f"tenant={self.tenant!r}, {state})")


@dataclass
class ServiceRequest:
    """One pending request inside the service queue (internal).

    ``seq`` doubles as the request id and the FIFO arrival order; ``key`` is
    the coalescing key -- requests sharing a key may merge into one block
    solve, requests with ``coalescable=False`` (non-serializable or
    explicitly pinned single-RHS specs) always dispatch alone.
    """

    seq: int
    matrix_id: str
    rhs: np.ndarray
    spec: SolveSpec
    key: str
    coalescable: bool
    tenant: str
    handle: JobHandle
    #: Host-monotonic enqueue instant (set by the service clock).
    enqueued_at: float = 0.0
