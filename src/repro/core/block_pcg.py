"""Block (multi-RHS) preconditioned conjugate gradients.

:class:`BlockPCG` solves ``A X = B`` for ``k`` right-hand sides by running
``k`` *independent* PCG recurrences in lock-step on block-row distributed
``(n_i, k)`` blocks.  It is the solver-side half of the multi-RHS story the
ROADMAP's block-Krylov item asked for: PR 2's batched SpMV
(:func:`~repro.distributed.spmv.distributed_spmv_block`) amortizes the halo
exchange over the columns, and this solver amortizes the *reductions* -- the
latency-bound allreduces that the paper's cost model (Sec. 4.2) charges per
dot product and that dominate the iteration at scale.

Per iteration the solver performs exactly the Alg. 1 steps on whole blocks:

* one batched SpMV ``AP = A P`` -- one halo exchange, message count
  independent of ``k``, ``k``-fold volume (optionally split-phase with
  comm/compute overlap via ``overlap_spmv=True``);
* one block-local preconditioner application on the full ``(n_i, k)``
  residual block (the 2-D path of :meth:`Preconditioner.apply_block`);
* three batched reductions (``P^T AP``, ``R^T Z``, ``R^T R``) through
  :meth:`DistributedMultiVector.dots` -- each is **one** allreduce of ``k``
  scalars instead of ``k`` scalar allreduces, so the allreduce *message*
  count per iteration is independent of ``k`` while the volume scales with
  ``k`` (see :meth:`Communicator.allreduce_sum` /
  :meth:`MachineModel.allreduce_time`).  With ``fuse_reductions=True`` the
  adjacent trailing pair ``R^T Z`` / ``R^T R`` additionally ships as **one**
  ``2k``-wide collective (3 -> 2 reductions per iteration, bit-identical
  iterates; off by default to preserve the exact ``k = 1`` charge equality
  below).

**Equivalence contract.**  The recurrences are independent (per-column
``alpha_j`` / ``beta_j``, no Gram coupling), every block operation is
per-column bit-identical to its single-vector counterpart, and the partial
sums of the batched reductions accumulate in the same rank order as the
scalar ones -- so column ``j``'s iterates and residual history are
**bit-identical** to a sequential :class:`~repro.core.pcg.DistributedPCG`
solve of ``A x = b_j`` on the same execution path.  At ``k = 1`` even the
ledger charges coincide exactly with ``DistributedPCG``'s.  Columns that
converge (or break down) are *frozen*: their coefficients are forced to
zero so the lock-step block updates leave them untouched bit-for-bit, their
history stops growing -- exactly where the sequential solve stopped -- and
the remaining columns continue.

``benchmarks/bench_block_pcg.py`` measures the resulting amortization at
``k in {1, 4, 8}`` and pins the equivalence contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from .. import sanitizer as _sanitizer
from ..cluster.cluster import VirtualCluster
from ..cluster.cost_model import Phase
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix
from ..distributed.dmultivector import (
    DistributedMultiVector,
    fused_dots,
    norms_from_dots,
)
from ..distributed.partition import BlockRowPartition
from ..distributed.spmv import distributed_spmv_block
from ..precond.base import Preconditioner
from ..precond.identity import IdentityPreconditioner
from ..utils.logging import get_logger

logger = get_logger("core.block_pcg")


@dataclass
class BlockSolveResult:
    """Per-column results of one :class:`BlockPCG` run, plus time accounting.

    All per-column sequences are indexed by the column ``j`` of the
    right-hand-side block; ``residual_histories[j]`` matches the
    ``residual_norms`` a sequential :class:`DistributedPCG` solve of column
    ``j`` records (bit-for-bit on the same execution path).
    """

    #: Global ``(n, k)`` solution block.
    x: np.ndarray = None
    #: Per-column convergence flags.
    converged: List[bool] = field(default_factory=list)
    #: Per-column completed-iteration counts.
    iterations: List[int] = field(default_factory=list)
    #: Per-column preconditioned-CG residual-norm histories.
    residual_histories: List[List[float]] = field(default_factory=list)
    #: Last recurrence residual norm of each column.
    final_residual_norms: List[float] = field(default_factory=list)
    #: ``||b_j - A x_j||`` recomputed from the assembled solution.
    true_residual_norms: List[float] = field(default_factory=list)
    #: Solver metadata (preconditioner, k, thresholds, breakdown columns...).
    info: Dict[str, object] = field(default_factory=dict)
    #: Lock-step outer iterations executed (``max(iterations)`` unless every
    #: column broke down early).
    global_iterations: int = 0
    #: Total simulated time of the run (seconds in the cost model).
    simulated_time: float = 0.0
    #: Simulated time spent in failure-free iteration phases.
    simulated_iteration_time: float = 0.0
    #: Simulated time spent recovering from failures (resilient runs only).
    simulated_recovery_time: float = 0.0
    #: Per-phase simulated time breakdown.
    time_breakdown: Dict[str, float] = field(default_factory=dict)
    #: One entry per recovery episode (empty for failure-free/plain runs).
    recoveries: List[object] = field(default_factory=list)

    @property
    def all_converged(self) -> bool:
        return bool(self.converged) and all(self.converged)

    @property
    def n_failures_recovered(self) -> int:
        return int(sum(len(getattr(r, "failed_ranks", []))
                       for r in self.recoveries))

    def summary(self) -> str:
        """One-line human-readable summary (the block counterpart of
        :meth:`SolveResult.summary`, reporting the worst column)."""
        status = ("all converged" if self.all_converged
                  else "NOT all converged")
        worst = max(self.true_residual_norms) if self.true_residual_norms \
            else float("nan")
        return (
            f"{status}: k={len(self.converged)}, iterations="
            f"{list(self.iterations)}, max ||b_j - A x_j|| = {worst:.3e}"
        )

    def to_dict(self, *, include_solution: bool = False,
                include_history: bool = True) -> Dict[str, object]:
        """JSON-serializable dictionary (block counterpart of
        :meth:`SolveResult.to_dict`: per-column lists instead of scalars,
        plus the simulated-time accounting and recovery episodes)."""
        from ..solvers.result import jsonify

        data: Dict[str, object] = {
            "converged": [bool(c) for c in self.converged],
            "all_converged": self.all_converged,
            "iterations": [int(i) for i in self.iterations],
            "global_iterations": int(self.global_iterations),
            "final_residual_norms": [float(v)
                                     for v in self.final_residual_norms],
            "true_residual_norms": [float(v)
                                    for v in self.true_residual_norms],
            "info": jsonify(self.info),
            "simulated_time": float(self.simulated_time),
            "simulated_iteration_time": float(self.simulated_iteration_time),
            "simulated_recovery_time": float(self.simulated_recovery_time),
            "time_breakdown": {k: float(self.time_breakdown[k])
                               for k in sorted(self.time_breakdown)},
            "n_failures_recovered": self.n_failures_recovered,
            "recoveries": [jsonify(r) for r in self.recoveries],
        }
        if include_history:
            data["residual_histories"] = [[float(v) for v in history]
                                          for history in
                                          self.residual_histories]
        if include_solution and self.x is not None:
            data["x"] = jsonify(self.x)
        return data


class BlockPCG:
    """Lock-step multi-RHS PCG on a :class:`VirtualCluster`.

    Mirrors :class:`~repro.core.pcg.DistributedPCG` with ``(n_i, k)`` block
    operands; see the module docstring for the batching/equivalence
    contract.  Like the single-vector solver it exposes protected hooks
    (``_after_spmv``, ``_handle_failures``, ``_after_iteration``) that the
    resilient variant
    (:class:`~repro.core.resilient_block_pcg.ResilientBlockPCG`) overrides
    to add the block ESR redundancy exchange and failure recovery; this base
    class has no failure handling of its own -- a node failure raises out of
    :meth:`solve`.
    """

    #: Prefix for the names of the solver's distributed work blocks.
    vector_prefix = "bpcg"

    def __init__(self, matrix: DistributedMatrix, rhs: DistributedMultiVector,
                 preconditioner: Optional[Preconditioner] = None, *,
                 rtol: float = 1e-8, atol: float = 0.0,
                 max_iterations: Optional[int] = None,
                 context: Optional[CommunicationContext] = None,
                 overlap_spmv: bool = False,
                 engine: bool = True,
                 fuse_reductions: bool = False):
        self.matrix = matrix
        self.rhs = rhs
        self.n_cols = rhs.n_cols
        #: Execute the batched SpMVs split-phase and charge the
        #: overlap-aware cost (same semantics and rounding caveat as
        #: ``DistributedPCG(overlap_spmv=True)``).
        self.overlap_spmv = bool(overlap_spmv)
        #: Execute the batched SpMVs through the cached local-view engine
        #: (default); ``False`` runs the dense-gather reference path
        #: (bit-identical results and charges).
        self.engine = bool(engine)
        #: Ship the trailing ``R^T Z`` and ``R^T R`` reductions of each
        #: iteration as **one** ``2k``-wide allreduce (3 -> 2 reductions per
        #: iteration; see :func:`~repro.distributed.dmultivector.fused_dots`).
        #: Off by default: fusing keeps per-column iterates and histories
        #: bit-identical, but the reduced latency charge gives up the exact
        #: ``k = 1`` ledger equality with :class:`DistributedPCG`.
        self.fuse_reductions = bool(fuse_reductions)
        self.cluster: VirtualCluster = matrix.cluster
        self.partition: BlockRowPartition = matrix.partition
        if not self.partition.is_compatible_with(rhs.partition):
            raise ValueError("matrix and right-hand sides have incompatible partitions")
        self.preconditioner = (
            preconditioner if preconditioner is not None else IdentityPreconditioner()
        )
        if not self.preconditioner.is_block_diagonal:
            raise ValueError(
                "the block PCG solver requires a block-diagonal "
                f"preconditioner; {self.preconditioner.name} is not"
            )
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.max_iterations = (
            int(max_iterations) if max_iterations is not None else 10 * self.partition.n
        )
        self.context = context if context is not None else \
            CommunicationContext.from_matrix(matrix)
        if not self.preconditioner.is_set_up:
            self.preconditioner.setup(matrix.to_global(), self.partition)

        # Work blocks (created lazily in solve()).
        self.x: Optional[DistributedMultiVector] = None
        self.r: Optional[DistributedMultiVector] = None
        self.z: Optional[DistributedMultiVector] = None
        self.p: Optional[DistributedMultiVector] = None
        self.ap: Optional[DistributedMultiVector] = None
        #: Per-column r^T z of the current iterates.
        self.rz: Optional[np.ndarray] = None
        #: Per-column ``beta^(j-1)`` of the recurrences (the block
        #: counterpart of ``DistributedPCG.beta_prev``; frozen columns carry
        #: an exact ``0.0``).  The resilient variant replicates and recovers
        #: this coefficient vector.
        self.beta_prev: Optional[np.ndarray] = None
        #: Per-column completed-iteration counts.
        self.iterations: Optional[np.ndarray] = None
        #: Columns still iterating (not yet converged / broken down).
        self.active: Optional[np.ndarray] = None
        self.residual_histories: List[List[float]] = []

    # -- hooks overridden by the resilient variant ---------------------------
    def _on_setup(self) -> None:
        """Called once after the work blocks have been initialised."""

    def _after_spmv(self, iteration: int) -> None:
        """Called right after the batched SpMV of *iteration* (halo data just
        moved -- the block ESR redundancy exchange piggybacks here)."""

    def _handle_failures(self, iteration: int) -> bool:
        """Check for and recover from node failures.

        Returns true if a recovery took place; the lock-step iteration is
        then restarted from the top of the loop (the batched SpMV is redone
        on the recovered state), exactly mirroring
        :meth:`DistributedPCG._handle_failures`.
        """
        return False

    def _after_iteration(self, iteration: int) -> None:
        """Called at the end of every completed lock-step iteration."""

    # -- building blocks ----------------------------------------------------
    def _mvec(self, suffix: str) -> DistributedMultiVector:
        return DistributedMultiVector.zeros(
            self.cluster, self.partition, f"{self.vector_prefix}:{suffix}",
            self.n_cols,
        )

    def _apply_preconditioner(self, residual: DistributedMultiVector,
                              out: DistributedMultiVector
                              ) -> DistributedMultiVector:
        """Block-local application on full ``(n_i, k)`` blocks, charged once.

        Drives the 2-D path of :meth:`Preconditioner.apply_block`; the
        bulk-synchronous charge is the worst rank's block work scaled by the
        column count (``k`` independent applications back to back), so at
        ``k = 1`` it equals ``DistributedPCG._apply_preconditioner``'s
        charge exactly.
        """
        model = self.cluster.ledger.model
        for rank in range(self.partition.n_parts):
            block = self.preconditioner.apply_block(rank, residual.get_block(rank))
            out.set_block(rank, block)
        self.cluster.ledger.add_time(
            Phase.PRECOND_COMPUTE,
            model.precond_apply_time(
                self.preconditioner.max_block_work_nnz() * self.n_cols
            ),
        )
        return out

    def _initial_guess_block(self, x0) -> DistributedMultiVector:
        if x0 is None:
            return self._mvec("x")
        if isinstance(x0, DistributedMultiVector):
            return x0.copy(f"{self.vector_prefix}:x")
        return DistributedMultiVector.from_global(
            self.cluster, self.partition, f"{self.vector_prefix}:x",
            np.asarray(x0, dtype=np.float64),
        )

    def _spmv_p(self) -> None:
        """``AP = A P`` through the batched engine kernel (one halo exchange)."""
        distributed_spmv_block(self.matrix, self.p, self.ap, self.context,
                               overlap=self.overlap_spmv, engine=self.engine)

    @staticmethod
    def _masked_ratio(numer: np.ndarray, denom: np.ndarray,
                      mask: np.ndarray) -> np.ndarray:
        """``numer / denom`` where *mask*, exact ``0.0`` elsewhere.

        Frozen columns get coefficient zero so the lock-step block updates
        leave their (finite) iterates bit-identical; the guarded divide also
        keeps a frozen column's ``0/0`` from manufacturing NaNs that the
        block updates would then spread.
        """
        out = np.zeros_like(numer)
        np.divide(numer, denom, out=out, where=mask)
        return out

    # -- main loop -----------------------------------------------------------
    def solve(self, x0: Union[None, np.ndarray, DistributedMultiVector] = None
              ) -> BlockSolveResult:
        """Run the lock-step block PCG until every column converged, froze,
        or the iteration cap was reached."""
        k = self.n_cols
        ledger = self.cluster.ledger
        start_snapshot = ledger.snapshot()

        self.x = self._initial_guess_block(x0)
        self.r = self._mvec("r")
        self.z = self._mvec("z")
        self.p = self._mvec("p")
        self.ap = self._mvec("ap")

        # R(0) = B - A X(0)
        distributed_spmv_block(self.matrix, self.x, self.ap, self.context,
                               overlap=self.overlap_spmv, engine=self.engine)
        self.r.assign(self.rhs)
        self.r.axpy(-1.0, self.ap)
        # Z(0) = M^{-1} R(0); P(0) = Z(0)
        self._apply_preconditioner(self.r, self.z)
        self.p.assign(self.z)

        if self.fuse_reductions:
            # The setup pair R^T Z / R^T R fuses exactly like the trailing
            # pair of each iteration.
            rz0, rr0 = fused_dots([(self.r, self.z), (self.r, self.r)])
            self.rz = rz0
            r_norms = norms_from_dots(rr0)
            n_reductions = 1
        else:
            self.rz = self.r.dots(self.z)
            r_norms = self.r.norms2()
            # Batched reductions performed so far (2 at setup: rz and ||r0||).
            n_reductions = 2
        thresholds = np.maximum(self.rtol * r_norms, self.atol)
        self.residual_histories = [[float(r_norms[j])] for j in range(k)]
        self.iterations = np.zeros(k, dtype=np.int64)
        converged = r_norms <= thresholds
        breakdown = np.zeros(k, dtype=bool)
        self.active = ~converged
        self.beta_prev = np.zeros(k)
        global_iterations = 0
        self._on_setup()
        # ``n_reductions`` counts the batched collectives so far; it is
        # exposed via the result so harnesses can verify the one-collective-
        # per-reduction contract without reconstructing the loop's control
        # flow (an all-columns breakdown aborts an iteration after its first
        # reduction).

        while np.any(self.active) and global_iterations < self.max_iterations:
            if _sanitizer._ACTIVE is not None:
                _sanitizer._ACTIVE.note_iteration(global_iterations,
                                                  solver=self)
            # --- Alg. 1 line 3 first half: the batched SpMV (and, in the
            #     resilient variant, the block ESR redundancy exchange)
            self._spmv_p()
            self._after_spmv(global_iterations)
            # Node failures strike here (after the halo data of this
            # iteration has moved, as assumed by the ESR recovery).  If a
            # recovery ran, restart the lock-step iteration from the top:
            # the batched SpMV is repeated on the recovered state.
            if self._handle_failures(global_iterations):
                continue

            pap = self.p.dots(self.ap)
            n_reductions += 1

            # Breakdown columns freeze *before* the update, exactly where the
            # sequential solve stops.
            broken = self.active & (pap <= 0.0)
            if np.any(broken):
                for j in np.nonzero(broken)[0]:
                    logger.warning(
                        "p^T A p = %.3e <= 0 for column %d at iteration %d; "
                        "freezing the column", pap[j], j, global_iterations
                    )
                breakdown |= broken
                self.active &= ~broken
                if not np.any(self.active):
                    break
            alpha = self._masked_ratio(self.rz, pap, self.active)
            # --- lines 4-5: iterate and residual updates (frozen columns get
            #     alpha_j = 0, i.e. exact no-ops on their blocks)
            self.x.axpy(alpha, self.p)
            self.r.axpy(-alpha, self.ap)
            # --- line 6: preconditioned residual block
            self._apply_preconditioner(self.r, self.z)
            # --- line 7: per-column beta through one batched allreduce.
            # With fuse_reductions the convergence check's R^T R rides the
            # same collective (R is not touched again before it is needed),
            # one 2k-wide payload instead of two k-wide ones -- component-
            # wise bit-identical either way (see fused_dots).
            if self.fuse_reductions:
                rz_next, rr = fused_dots([(self.r, self.z), (self.r, self.r)])
                n_reductions += 1
            else:
                rz_next = self.r.dots(self.z)
                n_reductions += 1
            beta = self._masked_ratio(rz_next, self.rz, self.active)
            # --- line 8: new search directions P = Z + P diag(beta)
            self.p.aypx(beta, self.z)
            self.rz = rz_next
            self.beta_prev = beta
            self.iterations[self.active] += 1
            global_iterations += 1

            if self.fuse_reductions:
                r_norms = norms_from_dots(rr)
            else:
                r_norms = self.r.norms2()
                n_reductions += 1
            for j in np.nonzero(self.active)[0]:
                self.residual_histories[j].append(float(r_norms[j]))
            newly_converged = self.active & (r_norms <= thresholds)
            converged |= newly_converged
            self.active &= ~newly_converged
            self._after_iteration(global_iterations)

        return self._build_result(start_snapshot, converged, breakdown,
                                  thresholds, global_iterations, n_reductions)

    # -- result assembly -----------------------------------------------------
    def _build_result(self, start_snapshot: Dict[str, float],
                      converged: np.ndarray, breakdown: np.ndarray,
                      thresholds: np.ndarray, global_iterations: int,
                      n_reductions: int) -> BlockSolveResult:
        ledger = self.cluster.ledger
        x_global = self.x.to_global()
        b_global = self.rhs.to_global()
        a_global = self.matrix.to_global()
        true_residuals = np.linalg.norm(b_global - a_global @ x_global, axis=0)

        breakdown_phases = {
            phase: ledger.since(start_snapshot, [phase])
            for phase in sorted(ledger.times)
            if phase not in start_snapshot
            or ledger.times[phase] != start_snapshot[phase]
        }
        return BlockSolveResult(
            x=x_global,
            converged=[bool(c) for c in converged],
            iterations=[int(i) for i in self.iterations],
            residual_histories=[list(h) for h in self.residual_histories],
            final_residual_norms=[h[-1] for h in self.residual_histories],
            true_residual_norms=[float(t) for t in true_residuals],
            info={
                "thresholds": [float(t) for t in thresholds],
                "rtol": self.rtol,
                "atol": self.atol,
                "preconditioner": self.preconditioner.name,
                "n_nodes": self.partition.n_parts,
                "n_cols": self.n_cols,
                "overlap_spmv": self.overlap_spmv,
                "engine": self.engine,
                "fuse_reductions": self.fuse_reductions,
                "breakdown_columns": [int(j) for j in np.nonzero(breakdown)[0]],
                "n_reductions": int(n_reductions),
            },
            global_iterations=int(global_iterations),
            simulated_time=ledger.since(start_snapshot),
            simulated_iteration_time=ledger.since(start_snapshot,
                                                  Phase.ITERATION_PHASES),
            simulated_recovery_time=ledger.since(start_snapshot,
                                                 Phase.RECOVERY_PHASES),
            time_breakdown=breakdown_phases,
            recoveries=list(getattr(self, "recovery_reports", [])),
        )
