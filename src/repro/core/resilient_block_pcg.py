"""Resilient block PCG: multi-RHS solves that survive multiple node failures.

:class:`ResilientBlockPCG` composes the two halves this library grew
separately: the lock-step multi-RHS :class:`~repro.core.block_pcg.BlockPCG`
(batched SpMV, block BLAS-1, ``k``-wide allreduces, column freezing) and the
paper's ESR resilience (redundant search-direction copies after every SpMV,
exact state reconstruction after up to ``phi`` simultaneous or overlapping
node failures).  The ESR machinery is the *block* variant throughout:

* after every batched SpMV, each holder stores ``(rows, k)`` slices of the
  two most recent search-direction blocks, staged through the fused block
  staging that rides the batched SpMV's already-staged ``(pool, k)`` send
  pool (one memcpy on the failure-free path; see :mod:`repro.core.esr`);
* the extra redundancy traffic is charged with the block charge model --
  message count and latency terms independent of ``k``, volume scaling with
  ``k`` -- exactly mirroring how the batched halo exchange is charged;
* the per-column recurrence coefficients ``beta^(j-1)`` are replicated as one
  ``(k,)`` vector and recovered with a single message;
* recovery rebuilds all ``k`` columns of every lost ``(n_i, k)`` row block
  with one reverse scatter and **one local multi-RHS solve per failed set**
  (factorization amortized over the columns, see
  :meth:`~repro.solvers.local_solver.LocalSubsystemSolver.solve_block`).

**Equivalence contract** (pinned by ``tests/test_core_resilient_block_pcg.py``
and ``benchmarks/bench_resilient_block_pcg.py``):

* with no failure events and ``phi = 0`` the run is bit-identical to
  :class:`BlockPCG` in iterates *and* ledger charges; with ``phi > 0`` the
  iterates stay bit-identical and the charges differ only by the per-
  iteration redundancy overhead;
* at ``k = 1`` the run is charge-identical to :class:`ResilientPCG` under
  the same failure schedule (every block charge reduces exactly to its
  single-vector counterpart);
* under a failure schedule that strikes while the columns are active, each
  recovered column's iterates and residual history are bit-identical to a
  sequential :class:`ResilientPCG` solve of that column hit by the same
  schedule;
* column freezing interacts correctly with recovery: converged/broken
  columns of a failed rank are restored along with the rest of the block
  (their reconstructed values are exact up to the local-solver tolerance)
  but stay frozen -- their histories do not grow and their coefficients
  remain an exact ``0.0``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from ..cluster.failure import FailureInjector
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix
from ..distributed.dmultivector import DistributedMultiVector
from ..precond.base import Preconditioner, PreconditionerForm
from ..utils.logging import get_logger
from .block_pcg import BlockPCG
from .placement import PlacementLike
from .redundancy import BackupPlacement, RedundancySchemeBase
from .resilient_pcg import EsrResilienceMixin

logger = get_logger("core.resilient_block_pcg")


class ResilientBlockPCG(EsrResilienceMixin, BlockPCG):
    """Lock-step multi-RHS PCG protected by block ESR redundancy.

    Parameters
    ----------
    matrix, rhs, preconditioner:
        As for :class:`~repro.core.block_pcg.BlockPCG` (``rhs`` is an
        ``(n, k)`` :class:`DistributedMultiVector`); the preconditioner must
        be block-diagonal.
    phi:
        Number of redundant copies kept per search-direction row block, i.e.
        the maximum number of simultaneous or overlapping node failures the
        solver can tolerate.  Must satisfy ``0 <= phi < N``.
    scheme:
        Redundancy scheme: a registered name (``"copies"``, ``"rs_parity"``),
        a pre-built :class:`~repro.core.redundancy.RedundancySchemeBase`
        instance, or ``None`` for the default full-copy scheme.
    scheme_options:
        Extra constructor keyword arguments for the scheme (e.g.
        ``{"group_size": 4}`` for ``"rs_parity"``); only valid with a
        scheme *name*.
    placement:
        Backup-node placement strategy (Eqn. (5) by default).
    failure_injector:
        Optional schedule of failure events to strike during the solve.
    local_solver_method, local_rtol:
        Configuration of the reconstruction's local subsystem solver; the
        block reconstruction shares one factorization across all ``k``
        columns.
    reconstruction_form:
        Force a particular reconstruction variant; by default the
        preconditioner's natural form is used.

    The remaining keyword arguments (``rtol``/``atol``/``max_iterations``/
    ``context``/``overlap_spmv``/``engine``/``fuse_reductions``) are those of
    :class:`BlockPCG`.
    """

    vector_prefix = "resilient_bpcg"

    def __init__(self, matrix: DistributedMatrix,
                 rhs: DistributedMultiVector,
                 preconditioner: Optional[Preconditioner] = None, *,
                 phi: int = 1,
                 scheme: Union[str, RedundancySchemeBase, None] = None,
                 scheme_options: Optional[Dict[str, Any]] = None,
                 placement: PlacementLike = BackupPlacement.PAPER,
                 rack_size: Optional[int] = None,
                 failure_injector: Optional[FailureInjector] = None,
                 local_solver_method: str = "pcg_ilu",
                 local_rtol: float = 1e-14,
                 reconstruction_form: Optional[PreconditionerForm] = None,
                 rtol: float = 1e-8, atol: float = 0.0,
                 max_iterations: Optional[int] = None,
                 context: Optional[CommunicationContext] = None,
                 overlap_spmv: bool = False,
                 engine: bool = True,
                 fuse_reductions: bool = False):
        super().__init__(matrix, rhs, preconditioner, rtol=rtol, atol=atol,
                         max_iterations=max_iterations, context=context,
                         overlap_spmv=overlap_spmv, engine=engine,
                         fuse_reductions=fuse_reductions)
        self._init_resilience(
            phi=phi, placement=placement, failure_injector=failure_injector,
            local_solver_method=local_solver_method, local_rtol=local_rtol,
            reconstruction_form=reconstruction_form,
            n_cols=self.n_cols, rack_size=rack_size,
            scheme=scheme, scheme_options=scheme_options,
        )
    # ``solve`` comes from EsrResilienceMixin: the BlockPCG loop plus the
    # resilience metadata decoration, shared verbatim with ResilientPCG.
