"""The ESR protocol: keeping and retrieving redundant search-direction copies.

During the failure-free iterations, :class:`ESRProtocol.after_spmv` snapshots,
on every holder node, the elements of other nodes' search-direction blocks
that the holder either received naturally during the SpMV halo exchange or was
sent explicitly as a designated backup (the ``R^c_ik`` sets of Eqn. (6)).  Two
generations are retained -- ``p^(j)`` and ``p^(j-1)`` -- as required for the
exact state reconstruction (Sec. 2.2).  The *extra* traffic is charged to the
``comm.redundancy`` phase of the cost model using the latency-bandwidth
analysis of Sec. 4.2 (piggybacked extras pay no latency).

After node failures, :meth:`recover_block` re-assembles a failed node's block
of either generation from the copies on surviving nodes, charging the reverse
communication to the recovery phase; :meth:`recover_replicated_scalar` fetches
replicated scalars (``beta^(j-1)``) from any survivor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster.cluster import VirtualCluster
from ..cluster.cost_model import Phase
from ..cluster.errors import NodeFailedError, UnrecoverableStateError
from ..distributed.comm_context import CommunicationContext
from ..distributed.dvector import DistributedVector
from ..distributed.partition import BlockRowPartition
from .redundancy import BackupPlacement, RedundancyScheme

#: Node-memory key prefix for ESR ghost stores.
_ESR_KEY = "esr_store"
#: Node-memory key for replicated scalars.
_SCALAR_KEY = "esr_scalars"


@dataclass
class GenerationInfo:
    """Which solver iteration a storage generation (parity slot) holds."""

    iteration: int = -1


class ESRProtocol:
    """Maintains the redundant copies required by the ESR approach."""

    def __init__(self, cluster: VirtualCluster, context: CommunicationContext,
                 phi: int, *, placement: BackupPlacement = BackupPlacement.PAPER,
                 scheme: Optional[RedundancyScheme] = None):
        self.cluster = cluster
        self.context = context
        self.partition: BlockRowPartition = context.partition
        self.phi = int(phi)
        self.scheme = scheme if scheme is not None else RedundancyScheme(
            context, phi, placement=placement
        )
        if self.scheme.phi != self.phi:
            raise ValueError(
                f"redundancy scheme phi={self.scheme.phi} does not match "
                f"protocol phi={self.phi}"
            )
        #: (owner, holder) -> global indices the holder stores each iteration.
        self._pattern = self.scheme.held_pattern()
        #: Precomputed local (owner-block) offsets per pattern entry.
        self._pattern_local: Dict[Tuple[int, int], np.ndarray] = {}
        for (owner, holder), idx in self._pattern.items():
            start, _ = self.partition.range_of(owner)
            self._pattern_local[(owner, holder)] = idx - start
        #: Iteration number stored in each of the two generation slots.
        self._generations: Dict[int, GenerationInfo] = {
            0: GenerationInfo(), 1: GenerationInfo()
        }
        # Precompute per-iteration redundancy overhead (pattern is static).
        self._overhead_time = self.scheme.per_iteration_overhead_time(
            cluster.topology, cluster.machine
        )
        self._overhead_traffic = self.scheme.extra_traffic_per_iteration()

    # -- storage during failure-free iterations -------------------------------
    def _slot_for(self, iteration: int) -> int:
        return iteration % 2

    def after_spmv(self, p: DistributedVector, iteration: int) -> None:
        """Record redundant copies of ``p^(iteration)`` on all holder nodes.

        Must be called right after the SpMV of the given iteration (when the
        halo values have just been communicated anyway).  Charges only the
        *extra* redundancy traffic; the natural halo traffic was already
        charged by the SpMV itself.
        """
        slot = self._slot_for(iteration)
        self._generations[slot] = GenerationInfo(iteration=iteration)
        for (owner, holder), local_idx in self._pattern_local.items():
            holder_node = self.cluster.node(holder)
            if not holder_node.is_alive:
                # A failed holder simply stores nothing; the invariant still
                # guarantees enough surviving copies as long as the total
                # number of failures stays within phi.
                continue
            try:
                values = p.get_block(owner)[local_idx]
            except NodeFailedError:
                # The owner itself is failed; its block will be reconstructed
                # before the solver continues, nothing to store now.
                continue
            key = (_ESR_KEY, slot, owner)
            holder_node.memory[key] = values.copy()
        # Charge the extra redundancy communication of this iteration.
        if self.phi > 0 and self._overhead_time > 0.0:
            self.cluster.ledger.add_time(Phase.REDUNDANCY_COMM, self._overhead_time)
        messages, elements = self._overhead_traffic
        if messages or elements:
            self.cluster.ledger.add_traffic(Phase.REDUNDANCY_COMM, messages, elements)

    def store_replicated_scalars(self, iteration: int, **scalars: float) -> None:
        """Replicate solver scalars (e.g. ``beta``) on every alive node."""
        payload = dict(scalars)
        payload["iteration"] = iteration
        for rank in self.cluster.alive_ranks():
            self.cluster.node(rank).memory[_SCALAR_KEY] = dict(payload)

    # -- queries --------------------------------------------------------------------
    def generation_iteration(self, slot: int) -> int:
        """The solver iteration stored in parity *slot* (-1 if empty)."""
        return self._generations[slot].iteration

    def available_generations(self) -> List[int]:
        """Iteration numbers currently retained (at most two)."""
        return sorted(
            info.iteration for info in self._generations.values()
            if info.iteration >= 0
        )

    def holders_with_copies(self, owner: int, iteration: int) -> List[int]:
        """Surviving holder ranks that have copies of *owner*'s block."""
        slot = self._slot_for(iteration)
        holders = []
        for (own, holder) in self._pattern_local:
            if own != owner:
                continue
            node = self.cluster.node(holder)
            if not node.is_alive:
                continue
            if (_ESR_KEY, slot, owner) in node.memory:
                holders.append(holder)
        return sorted(holders)

    # -- recovery -----------------------------------------------------------------------
    def recover_block(self, owner: int, iteration: int, *, charge: bool = True,
                      destination: Optional[int] = None) -> np.ndarray:
        """Re-assemble ``p^(iteration)_{I_owner}`` from surviving copies.

        Parameters
        ----------
        owner:
            The failed rank whose block is reconstructed.
        iteration:
            Which retained generation to recover (must be one of
            :meth:`available_generations`).
        charge:
            Charge the reverse communication to the recovery phase.
        destination:
            Rank of the replacement node the copies are sent to (defaults to
            *owner*, i.e. the replacement occupying the failed slot).

        Raises
        ------
        UnrecoverableStateError
            If some element has no surviving copy (more failures than the
            configured redundancy can tolerate).
        """
        slot = self._slot_for(iteration)
        stored = self._generations[slot].iteration
        if stored != iteration:
            raise UnrecoverableStateError(
                f"no retained copies of iteration {iteration} "
                f"(slot holds iteration {stored})"
            )
        destination = owner if destination is None else destination
        start, _ = self.partition.range_of(owner)
        size = self.partition.size_of(owner)
        block = np.full(size, np.nan)
        covered = np.zeros(size, dtype=bool)
        ledger = self.cluster.ledger

        # First, the owner's own copy if the owner is somehow still alive
        # (e.g. recovery triggered for a different node); normally it is not.
        for holder in self.holders_with_copies(owner, iteration):
            node = self.cluster.node(holder)
            key = (_ESR_KEY, slot, owner)
            values = node.memory[key]
            local_idx = self._pattern_local[(owner, holder)]
            newly = ~covered[local_idx]
            if not np.any(newly):
                continue
            block[local_idx[newly]] = values[newly]
            covered[local_idx[newly]] = True
            if charge and holder != destination:
                n_sent = int(np.count_nonzero(newly))
                latency = self.cluster.topology.latency(holder, destination)
                ledger.add_time(
                    Phase.RECOVERY_COMM,
                    ledger.model.message_time(latency, n_sent),
                )
                ledger.add_traffic(Phase.RECOVERY_COMM, 1, n_sent)
            if np.all(covered):
                break

        if not np.all(covered):
            missing = int(np.count_nonzero(~covered))
            raise UnrecoverableStateError(
                f"cannot recover block of rank {owner} at iteration {iteration}: "
                f"{missing} of {size} elements have no surviving copy "
                f"(phi={self.phi} redundant copies were kept)"
            )
        return block

    def recover_replicated_scalar(self, name: str, *, charge: bool = True
                                  ) -> float:
        """Fetch a replicated scalar (e.g. ``beta``) from any surviving node."""
        for rank in self.cluster.alive_ranks():
            node = self.cluster.node(rank)
            if _SCALAR_KEY in node.memory:
                payload = node.memory[_SCALAR_KEY]
                if name in payload:
                    if charge:
                        ledger = self.cluster.ledger
                        ledger.add_time(
                            Phase.RECOVERY_COMM,
                            ledger.model.message_time(
                                self.cluster.topology.max_latency(), 1
                            ),
                        )
                        ledger.add_traffic(Phase.RECOVERY_COMM, 1, 1)
                    return float(payload[name])
        raise UnrecoverableStateError(
            f"replicated scalar {name!r} is not available on any surviving node"
        )

    # -- cost/overhead introspection ------------------------------------------------------
    @property
    def per_iteration_overhead_time(self) -> float:
        """Simulated redundancy overhead charged per iteration."""
        return self._overhead_time

    def overhead_summary(self) -> Dict[str, float]:
        """Summary used by the analysis module and the reports."""
        lower, upper = self.scheme.overhead_bounds(
            self.cluster.topology, self.cluster.machine
        )
        messages, elements = self._overhead_traffic
        return {
            "phi": float(self.phi),
            "per_iteration_time": self._overhead_time,
            "lower_bound": lower,
            "upper_bound": upper,
            "extra_messages": float(messages),
            "extra_elements": float(elements),
        }
