"""The ESR protocol: keeping and retrieving redundant search-direction copies.

During the failure-free iterations, :class:`ESRProtocol.after_spmv` snapshots,
on every holder node, the elements of other nodes' search-direction blocks
that the holder either received naturally during the SpMV halo exchange or was
sent explicitly as a designated backup (the ``R^c_ik`` sets of Eqn. (6)).  Two
generations are retained -- ``p^(j)`` and ``p^(j-1)`` -- as required for the
exact state reconstruction (Sec. 2.2).  The *extra* traffic is charged to the
``comm.redundancy`` phase of the cost model using the latency-bandwidth
analysis of Sec. 4.2 (piggybacked extras pay no latency).

**Fused staging.**  The per-iteration snapshot is executed through a
precomputed :class:`FusedStagingIndex`: the ``(owner, holder)`` held pattern
of the :class:`~repro.core.redundancy.RedundancyScheme` is translated once
into positions inside a staging buffer whose first section mirrors the SpMV
engine's send pool (layout derived from the same
:class:`CommunicationContext`) and whose tail holds the few pattern elements
the SpMV never ships (the non-piggybacked parts of ``R^c_ik``).  When the
solver's matrix holds a cached
:class:`~repro.distributed.spmv_engine.SpmvEngine`, the pool section is one
``memcpy`` of values the engine already staged for the SpMV of the same
iteration; otherwise it is re-staged with one fancy-index per owner.  Each
holder's copies then come out of a single vectorized gather and are stored as
slices -- no Python loop over the ``O(N^2)`` ``(owner, holder)`` pairs, and
the stored values are byte-identical to the former per-pair gathers.
Failures are handled exactly as before: a dead holder stores nothing, and a
failed owner's pairs are skipped for the iteration (the rare case falls back
to per-pair gathers of the surviving owners).

After node failures, :meth:`recover_block` re-assembles a failed node's block
of either generation from the copies on surviving nodes, charging the reverse
communication to the recovery phase; :meth:`recover_replicated_scalar` fetches
replicated scalars (``beta^(j-1)``) from any survivor.

**Block (multi-RHS) redundancy.**  A protocol constructed with
``n_cols=k > 1`` protects a lock-step block solve
(:class:`~repro.core.resilient_block_pcg.ResilientBlockPCG`): the stored
copies are ``(|R^c_ik|, k)`` row slices of the ``(n_i, k)`` search-direction
block, staged through the same :class:`FusedStagingIndex` tables with a
``(pool + extras, k)`` buffer whose pool section rides the batched SpMV's
``(pool, k)`` send pool (one memcpy when the engine staged it from the same
block).  The **charge model** mirrors the batched halo exchange: per round
the overhead is ``max_i (lambda_ik? + |R^c_ik| * k * mu)`` -- the extras of
all ``k`` columns travel in the *same* message as the single-vector scheme's,
so the message count (and every latency term) is independent of ``k`` and
only the volume term scales (see
:meth:`RedundancyScheme.round_overhead_times`).  At ``k = 1`` the block
charges coincide exactly with the single-vector ones.  Recovery reassembles
all ``k`` columns of a failed ``(n_i, k)`` block from the same surviving
copies (one message per holder, ``rows * k`` elements), and the replicated
recurrence scalars become replicated ``(k,)`` coefficient vectors
(:meth:`ESRProtocol.recover_replicated_vector`).

**Parity schemes.**  The storage strategy above is the default ``"copies"``
redundancy scheme; the protocol equally drives any scheme registered in
:data:`~repro.core.redundancy.REDUNDANCY_SCHEMES`.  For ``kind = "parity"``
schemes (``"rs_parity"``) the per-generation store is one owner snapshot
plus ``m = phi`` Reed--Solomon parity rows per rack-spanning stripe of ``g``
owner blocks, written to the stripe's off-stripe holder nodes; recovery
decodes the lost blocks bit-exactly from any ``g`` surviving
snapshot/parity rows (charged as ``g`` block downloads) and then re-encodes
the stripe's missing parity so the tolerance is restored before the solve
resumes.  Because the decode is bit-exact, everything downstream -- the
reconstruction, the iterates, the convergence trajectory -- is bit-identical
to the copies path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..cluster.cluster import VirtualCluster
from ..cluster.cost_model import Phase
from ..cluster.errors import NodeFailedError, UnrecoverableStateError
from ..distributed.comm_context import CommunicationContext
from ..distributed.dvector import DistributedVector
from ..distributed.partition import BlockRowPartition
from ..utils.rng import RandomState
from .placement import PlacementLike
from .redundancy import (
    BackupPlacement,
    RedundancyScheme,
    RedundancySchemeBase,
    build_redundancy_scheme,
)

#: Node-memory key prefix for ESR ghost stores.
_ESR_KEY = "esr_store"
#: Node-memory key for replicated scalars.
_SCALAR_KEY = "esr_scalars"
#: Node-memory key prefix for an owner's own generation snapshot (parity
#: schemes; tagged with the iteration so stale entries never decode).
_ESR_SELF_KEY = "esr_self"
#: Node-memory key prefix for stored parity rows (parity schemes).
_ESR_PARITY_KEY = "esr_parity"


class FusedStagingIndex:
    """Precomputed ``(owner, holder) -> staging-buffer slice`` tables.

    Built once from a :class:`RedundancyScheme` (whose held pattern and
    context are immutable): the staging buffer is ``[send pool | extras]``
    where the send-pool section replicates the SpMV engine's layout (per
    owner, the sorted locally-owned indices it sends to at least one other
    node) and the extras section holds the pattern elements no SpMV message
    carries.  Per holder, one precomputed gather index array pulls all its
    copies out of the buffer; per ``(owner, holder)`` pair the copies are a
    contiguous ``[lo, hi)`` slice of that gather.
    """

    def __init__(self, scheme: RedundancyScheme,
                 pattern_local: Dict[Tuple[int, int], np.ndarray]):
        context = scheme.context
        partition = scheme.partition
        n_parts = partition.n_parts
        self._context = context
        self._n_parts = n_parts
        #: Nothing to stage at all (no pattern entries, e.g. a single-node
        #: run): lets the per-iteration path skip staging entirely, matching
        #: the former loop-over-nothing no-op.
        self.is_empty = not pattern_local

        # -- send-pool layout: the context's canonical helper, i.e. the
        #    exact layout the SpMV engine stages its pool with.
        sent_global, pool_offsets = context.send_pool_layout()
        self._sent_local: List[np.ndarray] = [
            sent_global[owner] - partition.range_of(owner)[0]
            for owner in range(n_parts)
        ]
        self._pool_offsets = pool_offsets
        self.pool_size = int(pool_offsets[-1])

        # -- extras: pattern elements the SpMV send pool does not carry ----
        per_owner: Dict[int, List[np.ndarray]] = {}
        for (owner, _holder), local_idx in pattern_local.items():
            per_owner.setdefault(owner, []).append(local_idx)
        self._extra_local: List[np.ndarray] = []
        extra_offsets = np.zeros(n_parts + 1, dtype=np.int64)
        for owner in range(n_parts):
            chunks = per_owner.get(owner)
            needed = (np.unique(np.concatenate(chunks)) if chunks
                      else np.empty(0, dtype=np.int64))
            extra = needed[~self._in_sent(owner, needed)]
            self._extra_local.append(extra)
            extra_offsets[owner + 1] = extra_offsets[owner] + extra.size
        self._extra_offsets = extra_offsets
        self.extras_size = int(extra_offsets[-1])
        self._buffer = np.empty(self.pool_size + self.extras_size)
        #: Per column count k > 1: ``(pool + extras, k)`` block staging buffers.
        self._block_buffers: Dict[int, np.ndarray] = {}
        #: The buffer the most recent ``stage``/``stage_block`` call filled
        #: (what :meth:`distribute` reads).
        self._staged: np.ndarray = self._buffer

        # -- per-holder gather tables (deterministic pair order) -----------
        self._holder_gather: Dict[int, np.ndarray] = {}
        #: holder -> [(owner, lo, hi)] slices of the holder's gather result.
        self._holder_slices: Dict[int, List[Tuple[int, int, int]]] = {}
        grouped: Dict[int, List[np.ndarray]] = {}
        for (owner, holder), local_idx in sorted(pattern_local.items()):
            sent = self._sent_local[owner]
            in_pool = self._in_sent(owner, local_idx)
            pos = np.empty(local_idx.size, dtype=np.int64)
            pos[in_pool] = pool_offsets[owner] + np.searchsorted(
                sent, local_idx[in_pool]
            )
            pos[~in_pool] = self.pool_size + extra_offsets[owner] + \
                np.searchsorted(self._extra_local[owner],
                                local_idx[~in_pool])
            chunks = grouped.setdefault(holder, [])
            lo = int(sum(c.size for c in chunks))
            chunks.append(pos)
            self._holder_slices.setdefault(holder, []).append(
                (owner, lo, lo + int(local_idx.size))
            )
        for holder, chunks in grouped.items():
            self._holder_gather[holder] = np.concatenate(chunks)

    def _in_sent(self, owner: int, local_idx: np.ndarray) -> np.ndarray:
        """Mask over sorted *local_idx*: which entries the send pool carries."""
        sent = self._sent_local[owner]
        if sent.size == 0 or local_idx.size == 0:
            return np.zeros(local_idx.size, dtype=bool)
        ins = np.searchsorted(sent, local_idx)
        found = ins < sent.size
        found[found] = sent[ins[found]] == local_idx[found]
        return found

    # -- per-iteration execution -------------------------------------------
    def stage(self, p: DistributedVector, engine) -> Set[int]:
        """Fill the staging buffer from *p*; returns the failed owner ranks.

        When *engine* is a live SpMV engine built from the same context, its
        send pool -- staged from *p* by the SpMV that immediately precedes
        ``after_spmv`` -- is copied wholesale and only the extras are
        gathered; otherwise both sections are staged with one fancy-index
        per owner.  Every owner's block is read through the node memory
        regardless, so failed owners are detected exactly as the former
        per-pair gathers did.
        """
        buf = self._buffer
        reuse = (
            engine is not None
            and engine.context is self._context
            and engine.send_pool.size == self.pool_size
            and engine.pool_staged_from(p)
        )
        if reuse:
            buf[:self.pool_size] = engine.send_pool
        self._staged = buf
        return self._stage_rest(buf, p, reuse)

    def stage_block(self, p, engine) -> Set[int]:
        """Block counterpart of :meth:`stage` for an ``(n, k)`` multi-vector.

        The ``(pool + extras, k)`` buffer's pool section is one memcpy of the
        engine's batched ``(pool, k)`` send pool when the block SpMV of the
        same iteration staged it from *p*
        (:meth:`SpmvEngine.block_pool_staged_from`); otherwise both sections
        are staged with one 2-D fancy-index per owner.  Per column the staged
        values are bit-identical to what :meth:`stage` would stage for that
        column alone.
        """
        k = int(p.n_cols)
        buf = self._block_buffers.get(k)
        if buf is None:
            buf = np.empty((self.pool_size + self.extras_size, k))
            self._block_buffers[k] = buf
        pool = engine.block_send_pool(k) if engine is not None else None
        reuse = (
            pool is not None
            and engine.context is self._context
            and pool.shape == (self.pool_size, k)
            and engine.block_pool_staged_from(p)
        )
        if reuse:
            buf[:self.pool_size] = pool
        self._staged = buf
        return self._stage_rest(buf, p, reuse)

    def _stage_rest(self, buf: np.ndarray, p, reuse: bool) -> Set[int]:
        """Stage the non-reused sections of *buf* from *p* (shape-generic)."""
        failed: Set[int] = set()
        pool_offsets = self._pool_offsets
        extra_offsets = self._extra_offsets
        for owner in range(self._n_parts):
            try:
                block = p.get_block(owner)
            except NodeFailedError:
                # The owner itself is failed; its block will be reconstructed
                # before the solver continues, nothing to store now.
                failed.add(owner)
                continue
            if not reuse:
                sent = self._sent_local[owner]
                if sent.size:
                    buf[pool_offsets[owner]:pool_offsets[owner + 1]] = \
                        block[sent]
            extra = self._extra_local[owner]
            if extra.size:
                lo = self.pool_size + extra_offsets[owner]
                buf[lo:lo + extra.size] = block[extra]
        return failed

    def distribute(self, cluster: VirtualCluster, slot: int,
                   failed: Set[int]) -> None:
        """Store every alive holder's copies under ``(_ESR_KEY, slot, owner)``.

        The failure-free path is one vectorized gather per holder plus slice
        views; with failed owners the surviving pairs are gathered
        individually -- for block stagings this per-pair fallback still pulls
        whole ``(rows, k)`` slices out of the already-staged block buffer
        (one gather per pair, never one per column) -- and copies of failed
        owners keep whatever the slot held before, matching the former
        per-pair behaviour.
        """
        buf = self._staged
        for holder, gather in self._holder_gather.items():
            node = cluster.node(holder)
            if not node.is_alive:
                # A failed holder simply stores nothing; the invariant still
                # guarantees enough surviving copies as long as the total
                # number of failures stays within phi.
                continue
            slices = self._holder_slices[holder]
            if not failed:
                values = buf[gather]
                for owner, lo, hi in slices:
                    node.memory[(_ESR_KEY, slot, owner)] = values[lo:hi]
            else:
                for owner, lo, hi in slices:
                    if owner in failed:
                        continue
                    node.memory[(_ESR_KEY, slot, owner)] = buf[gather[lo:hi]]


@dataclass
class GenerationInfo:
    """Which solver iteration a storage generation (parity slot) holds."""

    iteration: int = -1


class ESRProtocol:
    """Maintains the redundant copies required by the ESR approach."""

    def __init__(self, cluster: VirtualCluster, context: CommunicationContext,
                 phi: int, *, placement: PlacementLike = BackupPlacement.PAPER,
                 scheme: Union[str, RedundancySchemeBase, None] = None,
                 matrix=None, n_cols: Optional[int] = None,
                 rack_size: Optional[int] = None,
                 rng: Optional[RandomState] = None,
                 scheme_options: Optional[Dict[str, object]] = None):
        self.cluster = cluster
        self.context = context
        self.partition: BlockRowPartition = context.partition
        self.phi = int(phi)
        #: ``None`` protects single search-direction vectors; ``k`` protects
        #: the ``(n_i, k)`` blocks of a lock-step block solve (copies become
        #: ``(rows, k)`` slices, charges follow the block charge model of the
        #: module docstring).
        self.n_cols = int(n_cols) if n_cols is not None else None
        if self.n_cols is not None and self.n_cols < 1:
            raise ValueError(f"n_cols must be positive, got {n_cols}")
        #: The redundancy scheme: an already-built instance passes through
        #: unchanged (the solver path); otherwise the registered name (or
        #: the default ``"copies"``) is built with *every* layout parameter
        #: forwarded -- ``rack_size`` and ``rng`` included, so rack-aware
        #: placements see the configured failure domains and the ``random``
        #: placement is seedable from here too.
        self.scheme: RedundancySchemeBase = build_redundancy_scheme(
            scheme, context, phi, placement=placement, rng=rng,
            rack_size=rack_size, options=scheme_options,
        )
        if self.scheme.phi != self.phi:
            raise ValueError(
                f"redundancy scheme phi={self.scheme.phi} does not match "
                f"protocol phi={self.phi}"
            )
        #: Optional :class:`~repro.distributed.dmatrix.DistributedMatrix`
        #: whose cached SpMV engine (for this context) staged the send pool
        #: during the SpMV that precedes each ``after_spmv`` call; when set,
        #: the fused staging reuses those pool values instead of re-gathering.
        self._matrix = matrix
        #: Non-``None`` for parity-kind schemes: storage switches from the
        #: held-pattern snapshots to owner-local snapshots + parity rows.
        self._parity = self.scheme if self.scheme.kind == "parity" else None
        #: (owner, holder) -> global indices the holder stores each iteration.
        self._pattern = ({} if self._parity is not None
                         else self.scheme.held_pattern())
        #: Precomputed local (owner-block) offsets per pattern entry.
        self._pattern_local: Dict[Tuple[int, int], np.ndarray] = {}
        for (owner, holder), idx in self._pattern.items():
            start, _ = self.partition.range_of(owner)
            self._pattern_local[(owner, holder)] = idx - start
        #: Fused per-iteration staging tables (pattern and context are
        #: static); parity schemes stage nothing through the pattern path.
        self._staging = (None if self._parity is not None
                         else FusedStagingIndex(self.scheme,
                                                self._pattern_local))
        #: Iteration number stored in each of the two generation slots.
        self._generations: Dict[int, GenerationInfo] = {
            0: GenerationInfo(), 1: GenerationInfo()
        }
        # Precompute per-iteration redundancy overhead (pattern is static).
        # For block protocols the volume terms scale with the column count
        # while latency terms and message counts stay those of the
        # single-vector scheme (at n_cols=1 the values coincide exactly).
        charged_cols = self.n_cols if self.n_cols is not None else 1
        self._overhead_time = self.scheme.per_iteration_overhead_time(
            cluster.topology, cluster.machine, n_cols=charged_cols
        )
        self._overhead_traffic = self.scheme.extra_traffic_per_iteration(
            n_cols=charged_cols
        )

    # -- storage during failure-free iterations -------------------------------
    def _slot_for(self, iteration: int) -> int:
        return iteration % 2

    def after_spmv(self, p, iteration: int) -> None:
        """Record redundant copies of ``p^(iteration)`` on all holder nodes.

        *p* is a :class:`DistributedVector` for single-vector protocols and a
        :class:`~repro.distributed.dmultivector.DistributedMultiVector` with
        ``n_cols`` columns for block protocols.  Must be called right after
        the SpMV of the given iteration (when the halo values have just been
        communicated anyway) -- the fused staging relies on this to reuse the
        SpMV engine's already-staged send pool (single-vector or batched)
        when one is cached on the protocol's matrix.  Charges only the
        *extra* redundancy traffic; the natural halo traffic was already
        charged by the SpMV itself.
        """
        if self.n_cols is not None and getattr(p, "n_cols", None) != self.n_cols:
            raise ValueError(
                f"block ESR protocol stores (rows, {self.n_cols}) copies but "
                f"got an operand with n_cols={getattr(p, 'n_cols', None)}"
            )
        slot = self._slot_for(iteration)
        self._generations[slot] = GenerationInfo(iteration=iteration)
        if self._parity is not None:
            self._store_parity(p, iteration, slot)
        elif not self._staging.is_empty:
            engine = (self._matrix.cached_spmv_engine(self.context)
                      if self._matrix is not None else None)
            if self.n_cols is not None:
                failed = self._staging.stage_block(p, engine)
            else:
                failed = self._staging.stage(p, engine)
            self._staging.distribute(self.cluster, slot, failed)
        # Charge the extra redundancy communication of this iteration.
        if self.phi > 0 and self._overhead_time > 0.0:
            self.cluster.ledger.add_time(Phase.REDUNDANCY_COMM, self._overhead_time)
        messages, elements = self._overhead_traffic
        if messages or elements:
            self.cluster.ledger.add_traffic(Phase.REDUNDANCY_COMM, messages, elements)

    def _store_parity(self, p, iteration: int, slot: int) -> None:
        """Parity-scheme storage: owner-local snapshots + per-stripe parity.

        Every alive owner keeps a node-local copy of its own block for the
        slot (no traffic -- the extra traffic charged by ``after_spmv`` is
        the parity shipping the scheme's charge model accounts for); every
        stripe whose members are all alive encodes ``m`` parity rows onto
        its alive holders.  A stripe with a failed member keeps its older
        parity untouched -- entries are tagged with the iteration, so
        recovery never mixes generations.
        """
        scheme = self._parity
        blocks: Dict[int, np.ndarray] = {}
        failed: Set[int] = set()
        for owner in range(self.partition.n_parts):
            try:
                block = p.get_block(owner)
            except NodeFailedError:
                # The owner itself is failed; its block will be
                # reconstructed before the solver continues.
                failed.add(owner)
                continue
            blocks[owner] = block
            self.cluster.node(owner).memory[(_ESR_SELF_KEY, slot)] = (
                iteration, np.array(block, dtype=np.float64, copy=True),
            )
        for gidx in range(scheme.n_groups):
            members = scheme.group_members(gidx)
            if any(rank in failed for rank in members):
                continue
            rows = scheme.encode(gidx, [blocks[rank] for rank in members])
            for j, holder in enumerate(scheme.group_holders(gidx)):
                node = self.cluster.node(holder)
                if node.is_alive:
                    node.memory[(_ESR_PARITY_KEY, slot, gidx, j)] = (
                        iteration, rows[j],
                    )

    def store_replicated_scalars(self, iteration: int, **scalars) -> None:
        """Replicate solver scalars (e.g. ``beta``) on every alive node.

        Block solvers replicate per-column coefficient *vectors* instead
        (``beta`` is a ``(k,)`` array); every node stores its own copy so a
        later in-place driver update cannot silently rewrite history.
        """
        payload = dict(scalars)
        payload["iteration"] = iteration
        for rank in self.cluster.alive_ranks():
            self.cluster.node(rank).memory[_SCALAR_KEY] = {
                key: (np.array(value, copy=True)
                      if isinstance(value, np.ndarray) else value)
                for key, value in payload.items()
            }

    # -- queries --------------------------------------------------------------------
    def generation_iteration(self, slot: int) -> int:
        """The solver iteration stored in parity *slot* (-1 if empty)."""
        return self._generations[slot].iteration

    def available_generations(self) -> List[int]:
        """Iteration numbers currently retained (at most two)."""
        return sorted(
            info.iteration for info in self._generations.values()
            if info.iteration >= 0
        )

    def holders_with_copies(self, owner: int, iteration: int) -> List[int]:
        """Surviving ranks holding state that helps recover *owner*'s block.

        For pattern (copies) schemes these are the holders with snapshots of
        the owner's elements; for parity schemes, the stripe members with a
        valid generation snapshot plus the holders with a valid parity row
        of the owner's stripe.
        """
        slot = self._slot_for(iteration)
        if self._parity is not None:
            scheme = self._parity
            gidx = scheme.group_of(owner)
            ranks = set()
            for rank in scheme.group_members(gidx):
                if self._parity_snapshot(rank, slot, iteration) is not None:
                    ranks.add(rank)
            for j, holder in enumerate(scheme.group_holders(gidx)):
                node = self.cluster.node(holder)
                key = (_ESR_PARITY_KEY, slot, gidx, j)
                if node.is_alive and key in node.memory and \
                        node.memory[key][0] == iteration:
                    ranks.add(holder)
            return sorted(ranks)
        holders = []
        for (own, holder) in self._pattern_local:
            if own != owner:
                continue
            node = self.cluster.node(holder)
            if not node.is_alive:
                continue
            if (_ESR_KEY, slot, owner) in node.memory:
                holders.append(holder)
        return sorted(holders)

    # -- recovery -----------------------------------------------------------------------
    def recover_block(self, owner: int, iteration: int, *, charge: bool = True,
                      destination: Optional[int] = None) -> np.ndarray:
        """Re-assemble ``p^(iteration)_{I_owner}`` from surviving copies.

        Parameters
        ----------
        owner:
            The failed rank whose block is reconstructed.
        iteration:
            Which retained generation to recover (must be one of
            :meth:`available_generations`).
        charge:
            Charge the reverse communication to the recovery phase.
        destination:
            Rank of the replacement node the copies are sent to (defaults to
            *owner*, i.e. the replacement occupying the failed slot).

        Raises
        ------
        UnrecoverableStateError
            If some element has no surviving copy (more failures than the
            configured redundancy can tolerate).
        """
        slot = self._slot_for(iteration)
        stored = self._generations[slot].iteration
        if stored != iteration:
            raise UnrecoverableStateError(
                f"no retained copies of iteration {iteration} "
                f"(slot holds iteration {stored})"
            )
        destination = owner if destination is None else destination
        if self._parity is not None:
            return self._recover_parity_block(owner, iteration, slot,
                                              charge, destination)
        start, _ = self.partition.range_of(owner)
        size = self.partition.size_of(owner)
        shape = (size,) if self.n_cols is None else (size, self.n_cols)
        block = np.full(shape, np.nan)
        covered = np.zeros(size, dtype=bool)
        ledger = self.cluster.ledger
        row_width = 1 if self.n_cols is None else self.n_cols

        # First, the owner's own copy if the owner is somehow still alive
        # (e.g. recovery triggered for a different node); normally it is not.
        for holder in self.holders_with_copies(owner, iteration):
            node = self.cluster.node(holder)
            key = (_ESR_KEY, slot, owner)
            values = node.memory[key]
            local_idx = self._pattern_local[(owner, holder)]
            newly = ~covered[local_idx]
            if not np.any(newly):
                continue
            block[local_idx[newly]] = values[newly]
            covered[local_idx[newly]] = True
            if charge and holder != destination:
                # One message per holder; block protocols ship all k columns
                # of the covered rows in it (rows * k elements).
                n_sent = int(np.count_nonzero(newly)) * row_width
                latency = self.cluster.topology.latency(holder, destination)
                ledger.add_time(
                    Phase.RECOVERY_COMM,
                    ledger.model.message_time(latency, n_sent),
                )
                ledger.add_traffic(Phase.RECOVERY_COMM, 1, n_sent)
            if np.all(covered):
                break

        if not np.all(covered):
            missing = int(np.count_nonzero(~covered))
            raise UnrecoverableStateError(
                f"cannot recover block of rank {owner} at iteration {iteration}: "
                f"{missing} of {size} elements have no surviving copy "
                f"(phi={self.phi} redundant copies were kept)"
            )
        return block

    def _parity_snapshot(self, rank: int, slot: int,
                         iteration: int) -> Optional[np.ndarray]:
        """*rank*'s own generation snapshot if alive and iteration-tagged."""
        node = self.cluster.node(rank)
        if not node.is_alive:
            return None
        key = (_ESR_SELF_KEY, slot)
        if key not in node.memory:
            return None
        tag, block = node.memory[key]
        return block if tag == iteration else None

    def _charge_recovery_message(self, source: int, destination: int,
                                 n_elements: int) -> None:
        """One recovery message of *n_elements* (node-local transfers free)."""
        if source == destination:
            return
        ledger = self.cluster.ledger
        latency = self.cluster.topology.latency(source, destination)
        ledger.add_time(Phase.RECOVERY_COMM,
                        ledger.model.message_time(latency, n_elements))
        ledger.add_traffic(Phase.RECOVERY_COMM, 1, n_elements)

    def _recover_parity_block(self, owner: int, iteration: int, slot: int,
                              charge: bool, destination: int) -> np.ndarray:
        """Parity-scheme recovery: solve the stripe's parity system.

        CR-SIM's ``repair`` cost model: the destination downloads the ``g``
        stripe units -- the surviving member snapshots plus as many parity
        rows as members are missing -- decodes the missing blocks, and
        heals the stripe (writes the decoded snapshots back onto the
        replaced members and re-encodes lost parity rows), so co-failed
        members recover node-locally and the next failure sees a fully
        redundant stripe again.
        """
        scheme = self._parity
        row_width = 1 if self.n_cols is None else self.n_cols
        own = self._parity_snapshot(owner, slot, iteration)
        if own is not None:
            # The owner's snapshot survived (e.g. a previous recovery of a
            # co-failed stripe member healed it); node-local, no charge.
            return np.array(own, copy=True)
        gidx = scheme.group_of(owner)
        members = scheme.group_members(gidx)
        have: Dict[int, np.ndarray] = {}
        for rank in members:
            snap = self._parity_snapshot(rank, slot, iteration)
            if snap is not None:
                have[rank] = snap
        missing = [rank for rank in members if rank not in have]
        rows: Dict[int, Tuple[int, np.ndarray]] = {}
        for j, holder in enumerate(scheme.group_holders(gidx)):
            node = self.cluster.node(holder)
            key = (_ESR_PARITY_KEY, slot, gidx, j)
            if node.is_alive and key in node.memory:
                tag, row = node.memory[key]
                if tag == iteration:
                    rows[j] = (holder, row)
        if len(rows) < len(missing):
            raise UnrecoverableStateError(
                f"cannot recover block of rank {owner} at iteration "
                f"{iteration}: stripe {gidx} lost {len(missing)} of "
                f"{len(members)} members but only {len(rows)} parity rows "
                f"survive (m={scheme.m})"
            )
        use = sorted(rows)[:len(missing)]
        decoded = scheme.decode(gidx, have,
                                {j: rows[j][1] for j in use},
                                n_cols=self.n_cols)
        if charge:
            # Download the g stripe units to the destination.
            for rank in sorted(have):
                self._charge_recovery_message(
                    rank, destination,
                    self.partition.size_of(rank) * row_width)
            padded = scheme.padded_rows(gidx) * row_width
            for j in use:
                self._charge_recovery_message(rows[j][0], destination, padded)
        self._heal_parity_group(gidx, slot, iteration, have, decoded,
                                charge, destination)
        return np.array(decoded[owner], copy=True)

    def _heal_parity_group(self, gidx: int, slot: int, iteration: int,
                           have: Dict[int, np.ndarray],
                           decoded: Dict[int, np.ndarray],
                           charge: bool, destination: int) -> None:
        """Write decoded snapshots onto replaced members, restore parity.

        Each upload (a member snapshot or a re-encoded parity row) is one
        recovery message from the decoding destination; writes onto the
        destination itself are node-local and free.
        """
        scheme = self._parity
        row_width = 1 if self.n_cols is None else self.n_cols
        members = scheme.group_members(gidx)
        for rank in sorted(decoded):
            node = self.cluster.node(rank)
            if not node.is_alive:
                continue
            node.memory[(_ESR_SELF_KEY, slot)] = (
                iteration, np.array(decoded[rank], dtype=np.float64,
                                    copy=True),
            )
            if charge:
                self._charge_recovery_message(
                    destination, rank,
                    self.partition.size_of(rank) * row_width)
        blocks = {}
        blocks.update(have)
        blocks.update(decoded)
        parity_rows = scheme.encode(
            gidx, [blocks[rank] for rank in members])
        padded = scheme.padded_rows(gidx) * row_width
        for j, holder in enumerate(scheme.group_holders(gidx)):
            node = self.cluster.node(holder)
            if not node.is_alive:
                continue
            key = (_ESR_PARITY_KEY, slot, gidx, j)
            if key in node.memory and node.memory[key][0] == iteration:
                continue
            node.memory[key] = (iteration, parity_rows[j])
            if charge:
                self._charge_recovery_message(destination, holder, padded)

    def _recover_replicated(self, name: str, charge: bool, n_elements_of):
        """Scan survivors for replicated payload *name*; charge one message.

        *n_elements_of* maps the raw payload value to the element count the
        single recovery message ships (1 for scalars, ``k`` for coefficient
        vectors) -- the only difference between the two public variants.
        """
        for rank in self.cluster.alive_ranks():
            node = self.cluster.node(rank)
            if _SCALAR_KEY in node.memory:
                payload = node.memory[_SCALAR_KEY]
                if name in payload:
                    value = payload[name]
                    if charge:
                        ledger = self.cluster.ledger
                        n_elements = int(n_elements_of(value))
                        ledger.add_time(
                            Phase.RECOVERY_COMM,
                            ledger.model.message_time(
                                self.cluster.topology.max_latency(),
                                n_elements,
                            ),
                        )
                        ledger.add_traffic(Phase.RECOVERY_COMM, 1, n_elements)
                    return value
        raise UnrecoverableStateError(
            f"replicated scalar {name!r} is not available on any surviving node"
        )

    def recover_replicated_scalar(self, name: str, *, charge: bool = True
                                  ) -> float:
        """Fetch a replicated scalar (e.g. ``beta``) from any surviving node."""
        return float(self._recover_replicated(name, charge, lambda _: 1))

    def recover_replicated_vector(self, name: str, *, charge: bool = True
                                  ) -> np.ndarray:
        """Fetch a replicated ``(k,)`` coefficient vector from any survivor.

        The block counterpart of :meth:`recover_replicated_scalar`: one
        message of ``k`` elements (at ``k = 1`` the charge equals the scalar
        one exactly).
        """
        value = self._recover_replicated(
            name, charge,
            lambda v: np.atleast_1d(np.asarray(v)).size,
        )
        return np.atleast_1d(np.asarray(value, dtype=np.float64)).copy()

    # -- cost/overhead introspection ------------------------------------------------------
    @property
    def per_iteration_overhead_time(self) -> float:
        """Simulated redundancy overhead charged per iteration."""
        return self._overhead_time

    def overhead_summary(self) -> Dict[str, float]:
        """Summary used by the analysis module and the reports."""
        lower, upper = self.scheme.overhead_bounds(
            self.cluster.topology, self.cluster.machine,
            n_cols=self.n_cols if self.n_cols is not None else 1,
        )
        messages, elements = self._overhead_traffic
        return {
            "phi": float(self.phi),
            "n_cols": float(self.n_cols if self.n_cols is not None else 1),
            "per_iteration_time": self._overhead_time,
            "lower_bound": lower,
            "upper_bound": upper,
            "extra_messages": float(messages),
            "extra_elements": float(elements),
        }
