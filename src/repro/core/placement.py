"""Backup-node placement strategies behind a decorator registry.

The paper selects the ``phi`` backup nodes ``d_i1 .. d_iphi`` of owner ``i``
with the alternating-neighbour heuristic of Eqn. (5) and explicitly leaves
the optimal placement for general settings as future work.  This module
turns the placement choice into a registry (mirroring
:data:`repro.core.registry.SOLVERS` and the preconditioner factory): each
strategy is a function registered under a short name via
``@register_placement("name")``, and :class:`~repro.core.redundancy.
RedundancyScheme` resolves whatever a :class:`~repro.core.spec.
ResilienceSpec` carries -- a :class:`BackupPlacement` enum member, a
registered name, or a :class:`PlacementStrategy` -- through
:func:`resolve_placement`.

Besides the three historical options (``"paper"``, ``"next_ranks"``,
``"random"``), two failure-domain-aware strategies are provided for the
reliability campaigns of :mod:`repro.harness.campaign`:

``"rack_aware"``
    Spread the backups over ranks in *other* racks (failure domains), so a
    correlated burst that takes out the owner's whole rack never takes the
    designated backups with it.
``"copyset"``
    Copyset-style placement: the ranks are grouped into a small number of
    fixed copysets of ``phi + 1`` members each (built rack-striding, so a
    set spans as many racks as possible) and an owner's backups all come
    from its own copyset.  This minimises the number of distinct
    ``phi + 1``-subsets whose simultaneous loss is fatal.

Racks are modelled by :class:`RackLayout`: ``rack_size`` contiguous ranks
per rack, matching how the correlated bursts of
:mod:`repro.failures.traces` strike.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..utils.rng import RandomState, as_rng


class BackupPlacement(enum.Enum):
    """Strategy for choosing the backup nodes ``d_ik`` (legacy enum).

    The enum predates the placement registry and is kept as the stable
    spelling of the three original strategies; every member's ``value`` is
    also a registered strategy name, and anywhere a placement is accepted a
    registered name string works as well (``"copyset"``, ``"rack_aware"``).
    """

    #: Eqn. (5): alternate +-1, +-2, ... ranks around the owner.
    PAPER = "paper"
    #: The next ``phi`` ranks ``i+1, ..., i+phi`` (mod N).
    NEXT_RANKS = "next_ranks"
    #: ``phi`` distinct ranks chosen uniformly at random (per owner).
    RANDOM = "random"


#: Rack size used when a rack-aware strategy runs without an explicit layout.
DEFAULT_RACK_SIZE = 4


@dataclass(frozen=True)
class RackLayout:
    """Contiguous-rank rack model: rack ``j`` holds ranks ``[j*s, (j+1)*s)``.

    This is the failure-domain model shared by the placement strategies and
    the correlated-burst trace generator
    (:class:`repro.failures.traces.TraceSpec`): a "rack" is ``rack_size``
    contiguous ranks (the last rack may be smaller).
    """

    n_nodes: int
    rack_size: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.rack_size < 1:
            raise ValueError(
                f"rack_size must be positive, got {self.rack_size}")

    @classmethod
    def default(cls, n_nodes: int,
                rack_size: Optional[int] = None) -> "RackLayout":
        """Layout for *n_nodes*, clamping the rack size to keep >= 2 racks.

        With fewer than two racks every rack-aware strategy would degenerate
        (there is no "other" failure domain), so the default rack size is
        ``min(DEFAULT_RACK_SIZE, ceil(n_nodes / 2))``.  An explicit
        *rack_size* is taken as-is.
        """
        if rack_size is not None:
            return cls(n_nodes, int(rack_size))
        return cls(n_nodes, min(DEFAULT_RACK_SIZE, max(1, (n_nodes + 1) // 2)))

    @property
    def n_racks(self) -> int:
        return -(-self.n_nodes // self.rack_size)

    def rack_of(self, rank: int) -> int:
        if not 0 <= rank < self.n_nodes:
            raise ValueError(
                f"rank {rank} out of range for {self.n_nodes} nodes")
        return rank // self.rack_size

    def position_in_rack(self, rank: int) -> int:
        """Offset of *rank* inside its rack (0-based)."""
        return rank - self.rack_of(rank) * self.rack_size

    def ranks_in(self, rack: int) -> List[int]:
        if not 0 <= rack < self.n_racks:
            raise ValueError(
                f"rack {rack} out of range for {self.n_racks} racks")
        start = rack * self.rack_size
        return list(range(start, min(start + self.rack_size, self.n_nodes)))

    def racks(self) -> List[List[int]]:
        return [self.ranks_in(j) for j in range(self.n_racks)]


#: A placement function: ``(owner, phi, n_nodes, *, racks, rng) -> targets``.
PlacementFn = Callable[..., List[int]]


@dataclass(frozen=True)
class PlacementStrategy:
    """A registered placement policy (name + target-selection function)."""

    name: str
    fn: PlacementFn
    description: str = ""

    @property
    def value(self) -> str:
        """The registered name (``BackupPlacement``-compatible spelling)."""
        return self.name

    def targets(self, owner: int, phi: int, n_nodes: int, *,
                racks: Optional[RackLayout] = None,
                rng: Optional[RandomState] = None) -> List[int]:
        return self.fn(owner, phi, n_nodes, racks=racks, rng=rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PlacementStrategy({self.name!r})"


class PlacementRegistry:
    """Name -> :class:`PlacementStrategy` mapping with a decorator API."""

    def __init__(self) -> None:
        self._strategies: Dict[str, PlacementStrategy] = {}

    def register(self, name: str, description: str = ""
                 ) -> Callable[[PlacementFn], PlacementFn]:
        """Decorator registering a placement function under *name*."""
        key = str(name).lower()

        def decorator(fn: PlacementFn) -> PlacementFn:
            self._strategies[key] = PlacementStrategy(key, fn, description)
            return fn

        return decorator

    def names(self) -> Tuple[str, ...]:
        """The registered strategy names, sorted."""
        return tuple(sorted(self._strategies))

    def get(self, name: str) -> PlacementStrategy:
        """The strategy registered under *name* (case-insensitive).

        Raises ``ValueError`` listing every registered name when *name* is
        unknown (mirroring :class:`repro.core.registry.SolverRegistry`).
        """
        key = str(name).lower()
        try:
            return self._strategies[key]
        except KeyError:
            raise ValueError(
                f"unknown placement {name!r}; available: {self.names()}"
            ) from None


#: The default registry consulted by :func:`resolve_placement`.
PLACEMENTS = PlacementRegistry()

#: Register a placement strategy in the default registry (decorator).
register_placement = PLACEMENTS.register

#: Anything the configuration surface accepts as a placement.
PlacementLike = Union[BackupPlacement, str, PlacementStrategy]


def resolve_placement(placement: PlacementLike) -> PlacementStrategy:
    """Resolve an enum member / registered name / strategy to the strategy."""
    if isinstance(placement, PlacementStrategy):
        return placement
    if isinstance(placement, BackupPlacement):
        return PLACEMENTS.get(placement.value)
    return PLACEMENTS.get(placement)


def normalize_placement(placement: PlacementLike
                        ) -> Union[BackupPlacement, str]:
    """Canonical spec-level spelling of *placement*.

    The three historical strategies normalise to their
    :class:`BackupPlacement` member (so existing ``spec.placement is
    BackupPlacement.X`` identity checks keep working); every other
    registered strategy normalises to its lower-case name.  Unknown names
    raise ``ValueError`` listing the registered strategies.
    """
    strategy = resolve_placement(placement)
    try:
        return BackupPlacement(strategy.name)
    except ValueError:
        return strategy.name


def placement_name(placement: PlacementLike) -> str:
    """The registered-name string of *placement* (for reports and JSON)."""
    return resolve_placement(placement).name


def paper_backup_target(owner: int, k: int, n_nodes: int) -> int:
    """``d_ik`` of Eqn. (5) (1-based round index ``k``)."""
    if k < 1:
        raise ValueError(f"round index k must be >= 1, got {k}")
    if k % 2 == 1:
        return (owner + math.ceil(k / 2)) % n_nodes
    return (owner - k // 2) % n_nodes


@register_placement("paper", "Eqn. (5): alternating +-1, +-2, ... neighbours")
def _paper_placement(owner: int, phi: int, n_nodes: int, *,
                     racks: Optional[RackLayout] = None,
                     rng: Optional[RandomState] = None) -> List[int]:
    return [paper_backup_target(owner, k, n_nodes) for k in range(1, phi + 1)]


@register_placement("next_ranks", "the next phi ranks i+1 .. i+phi (mod N)")
def _next_ranks_placement(owner: int, phi: int, n_nodes: int, *,
                          racks: Optional[RackLayout] = None,
                          rng: Optional[RandomState] = None) -> List[int]:
    return [(owner + k) % n_nodes for k in range(1, phi + 1)]


@register_placement("random", "phi distinct ranks chosen uniformly per owner")
def _random_placement(owner: int, phi: int, n_nodes: int, *,
                      racks: Optional[RackLayout] = None,
                      rng: Optional[RandomState] = None) -> List[int]:
    # Per-owner seeding by default: reproducible without any configuration,
    # and bit-identical to the pre-registry implementation.
    rng = as_rng(rng if rng is not None else owner)
    candidates = [r for r in range(n_nodes) if r != owner]
    idx = rng.choice(len(candidates), size=phi, replace=False)
    return [candidates[int(t)] for t in idx]


@register_placement("rack_aware",
                    "spread the backups over ranks in other racks")
def _rack_aware_placement(owner: int, phi: int, n_nodes: int, *,
                          racks: Optional[RackLayout] = None,
                          rng: Optional[RandomState] = None) -> List[int]:
    layout = racks if racks is not None else RackLayout.default(n_nodes)
    owner_rack = layout.rack_of(owner)
    targets: List[int] = []
    chosen = {owner}
    used_racks = {owner_rack}
    # Pass 1: walk away from the owner, taking at most one rank per rack and
    # skipping the owner's own rack entirely -- each backup lands in a fresh
    # failure domain.
    for off in range(1, n_nodes):
        if len(targets) == phi:
            break
        rank = (owner + off) % n_nodes
        rack = layout.rack_of(rank)
        if rack not in used_racks:
            targets.append(rank)
            chosen.add(rank)
            used_racks.add(rack)
    # Pass 2 (fewer racks than phi + 1): any off-rack rank.
    for off in range(1, n_nodes):
        if len(targets) == phi:
            break
        rank = (owner + off) % n_nodes
        if rank not in chosen and layout.rack_of(rank) != owner_rack:
            targets.append(rank)
            chosen.add(rank)
    # Pass 3 (phi too large for the off-rack population): anything distinct.
    for off in range(1, n_nodes):
        if len(targets) == phi:
            break
        rank = (owner + off) % n_nodes
        if rank not in chosen:
            targets.append(rank)
            chosen.add(rank)
    return targets


@register_placement("copyset",
                    "fixed rack-striding copysets of phi + 1 ranks")
def _copyset_placement(owner: int, phi: int, n_nodes: int, *,
                       racks: Optional[RackLayout] = None,
                       rng: Optional[RandomState] = None) -> List[int]:
    if phi == 0:
        return []
    layout = racks if racks is not None else RackLayout.default(n_nodes)
    # Rack-striding permutation: first one rank per rack, then the second
    # rank of every rack, ... -- consecutive entries live in distinct racks,
    # so a contiguous group of phi + 1 entries spans as many racks as exist.
    order = sorted(range(n_nodes),
                   key=lambda r: (layout.position_in_rack(r),
                                  layout.rack_of(r)))
    group_size = phi + 1
    n_groups = max(n_nodes // group_size, 1)
    pos = order.index(owner)
    group = min(pos // group_size, n_groups - 1)
    start = group * group_size
    # The last group absorbs the remainder so every group has >= phi + 1
    # members.
    stop = start + group_size if group < n_groups - 1 else n_nodes
    members = order[start:stop]
    at = members.index(owner)
    ring = members[at + 1:] + members[:at]
    # Off-rack members first (stable within each class): the round-1 backup
    # -- which receives the largest extra sets -- never shares the owner's
    # failure domain when the copyset spans more than one rack.
    owner_rack = layout.rack_of(owner)
    ring.sort(key=lambda r: layout.rack_of(r) == owner_rack)
    return ring[:phi]
