"""Declarative solver configuration (`SolveSpec` and friends).

The high-level API is driven by frozen configuration dataclasses instead of
per-helper keyword soup (PETSc-options style): a :class:`SolveSpec` carries
everything every solver understands (tolerances, iteration cap, SpMV
execution knobs, the preconditioner), and two optional extensions carry the
solver-specific pieces -- :class:`ResilienceSpec` for the ESR-protected
solver (redundancy level, backup placement, failure schedule, local-solver
options) and :class:`BlockSpec` for multi-RHS block solves (expected column
count, reduction fusing).

Every spec validates its fields on construction, round-trips through
``to_dict``/``from_dict`` (plain JSON-serializable dictionaries, so
benchmark sweeps and the experiment harness can be driven from config
files), and documents its defaults in the field comments below.  The one
entry point that consumes them is :func:`repro.core.api.solve`; the mapping
from ``SolveSpec.solver`` names to solver classes lives in
:mod:`repro.core.registry`.

Defaults at a glance
--------------------
``SolveSpec()`` alone means: auto-selected solver (plain PCG for one
right-hand side, block PCG for a multi-RHS block, resilient PCG as soon as
a :class:`ResilienceSpec` is attached), ``rtol=1e-8``, ``atol=0``, the
solver's own iteration cap (``10 n``), serialized SpMV through the
local-view engine, and a block-Jacobi preconditioner -- exactly the paper's
reference configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..cluster.failure import FailureEvent
from ..precond.base import Preconditioner, PreconditionerForm
from .placement import normalize_placement, placement_name
from .redundancy import REDUNDANCY_SCHEMES, BackupPlacement

#: Spec fields routed to :class:`ResilienceSpec` by ``SolveSpec.with_overrides``.
_RESILIENCE_FIELDS = ("phi", "scheme", "scheme_options", "placement",
                      "rack_size", "failures",
                      "local_solver_method", "local_rtol",
                      "reconstruction_form")
#: Spec fields routed to :class:`BlockSpec` by ``SolveSpec.with_overrides``.
_BLOCK_FIELDS = ("n_cols", "fuse_reductions")


def build_failure_events(failures: Iterable[Union[FailureEvent, Tuple]]
                         ) -> List[FailureEvent]:
    """Normalise ``(iteration, ranks)`` tuples into :class:`FailureEvent` objects."""
    events: List[FailureEvent] = []
    for item in failures:
        if isinstance(item, FailureEvent):
            events.append(item)
        else:
            iteration, ranks = item[0], item[1]
            if np.isscalar(ranks):
                ranks = [int(ranks)]
            events.append(FailureEvent(int(iteration), tuple(int(r) for r in ranks)))
    return events


def _check_unknown_keys(data: Mapping[str, Any], known: Iterable[str],
                        what: str) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ValueError(f"unknown {what} keys {unknown}; "
                         f"known keys: {sorted(known)}")


def _event_to_dict(event: FailureEvent) -> Dict[str, Any]:
    return {
        "iteration": int(event.iteration),
        "ranks": [int(r) for r in event.ranks],
        "during_recovery_of": event.during_recovery_of,
        "label": event.label,
    }


def _event_from_dict(data: Mapping[str, Any]) -> FailureEvent:
    _check_unknown_keys(data, ("iteration", "ranks", "during_recovery_of",
                               "label"), "failure-event")
    return FailureEvent(
        iteration=int(data["iteration"]),
        ranks=tuple(int(r) for r in data["ranks"]),
        during_recovery_of=data.get("during_recovery_of"),
        label=data.get("label", ""),
    )


@dataclass(frozen=True)
class ResilienceSpec:
    """Configuration of the ESR-protected solver (``solver="resilient_pcg"``).

    Attaching one of these to a :class:`SolveSpec` is what requests
    resilience; all fields default to the paper's settings.
    """

    #: Redundant copies kept per search-direction block (max. simultaneous
    #: failures survived); ``0 <= phi < N``.
    phi: int = 1
    #: Redundancy scheme: any name registered in
    #: :data:`repro.core.redundancy.REDUNDANCY_SCHEMES` (``"copies"`` --
    #: the paper's phi full off-node copies -- or ``"rs_parity"``:
    #: Reed-Solomon parity stripes tolerating the same ``phi`` in-group
    #: failures at ``phi/g`` storage overhead).
    scheme: str = "copies"
    #: Keyword arguments for the scheme constructor (e.g. ``group_size``
    #: for ``"rs_parity"``); mirrors ``SolveSpec.preconditioner_options``.
    scheme_options: Dict[str, Any] = field(default_factory=dict)
    #: Backup-node placement strategy (Eqn. (5) of the paper by default):
    #: a :class:`BackupPlacement` member or any name registered in
    #: :data:`repro.core.placement.PLACEMENTS` (e.g. ``"copyset"``,
    #: ``"rack_aware"``).  The three historical names normalise to their
    #: enum member, registry-only names to their lower-case string.
    placement: Union[BackupPlacement, str] = BackupPlacement.PAPER
    #: Rack (failure-domain) size used by the rack-aware placement
    #: strategies; ``None`` = the default layout of
    #: :meth:`repro.core.placement.RackLayout.default`.
    rack_size: Optional[int] = None
    #: Failure schedule: :class:`FailureEvent` objects or ``(iteration,
    #: ranks)`` tuples (normalised on construction).  Empty = undisturbed.
    failures: Tuple[FailureEvent, ...] = ()
    #: Local subsystem solver of the reconstruction (``"pcg_ilu"`` with
    #: ``1e-14`` in the paper).
    local_solver_method: str = "pcg_ilu"
    local_rtol: float = 1e-14
    #: Force a reconstruction variant; ``None`` = the preconditioner's
    #: natural form.
    reconstruction_form: Optional[PreconditionerForm] = None

    def __post_init__(self) -> None:
        if int(self.phi) < 0:
            raise ValueError(f"phi must be non-negative, got {self.phi}")
        object.__setattr__(self, "phi", int(self.phi))
        # Registered-name validation + canonical lower-case spelling;
        # ``get`` raises a ValueError listing the registered schemes.
        scheme_cls = REDUNDANCY_SCHEMES.get(str(self.scheme))
        object.__setattr__(self, "scheme", scheme_cls.scheme_name)
        object.__setattr__(self, "scheme_options", dict(self.scheme_options))
        if not isinstance(self.placement, BackupPlacement):
            # Registered-name validation + canonical spelling (enum member
            # for the three historical strategies, lower-case name string
            # for registry-only strategies like "copyset" / "rack_aware").
            object.__setattr__(self, "placement",
                               normalize_placement(self.placement))
        if self.rack_size is not None:
            if int(self.rack_size) < 1:
                raise ValueError(
                    f"rack_size must be positive, got {self.rack_size}")
            object.__setattr__(self, "rack_size", int(self.rack_size))
        object.__setattr__(self, "failures",
                           tuple(build_failure_events(self.failures)))
        if self.reconstruction_form is not None and \
                not isinstance(self.reconstruction_form, PreconditionerForm):
            object.__setattr__(self, "reconstruction_form",
                               PreconditionerForm(self.reconstruction_form))
        if float(self.local_rtol) <= 0.0:
            raise ValueError(
                f"local_rtol must be positive, got {self.local_rtol}")

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable dictionary (see :meth:`from_dict`)."""
        return {
            "phi": self.phi,
            "scheme": self.scheme,
            "scheme_options": dict(self.scheme_options),
            "placement": placement_name(self.placement),
            "rack_size": self.rack_size,
            "failures": [_event_to_dict(e) for e in self.failures],
            "local_solver_method": self.local_solver_method,
            "local_rtol": self.local_rtol,
            "reconstruction_form": (self.reconstruction_form.value
                                    if self.reconstruction_form is not None
                                    else None),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResilienceSpec":
        _check_unknown_keys(data, [f.name for f in fields(cls)], "ResilienceSpec")
        kwargs = dict(data)
        if "failures" in kwargs:
            kwargs["failures"] = tuple(
                _event_from_dict(e) if isinstance(e, Mapping) else e
                for e in kwargs["failures"]
            )
        return cls(**kwargs)


@dataclass(frozen=True)
class BlockSpec:
    """Configuration of multi-RHS block solves (``solver="block_pcg"``)."""

    #: Expected number of right-hand sides; ``None`` accepts whatever the
    #: RHS block carries (a mismatch raises at dispatch time).
    n_cols: Optional[int] = None
    #: Ship the trailing ``R^T Z`` and ``R^T R`` reductions of an iteration
    #: as **one** ``2k``-wide allreduce (3 -> 2 reductions per iteration).
    #: Off by default: fusing keeps the iterates bit-identical but gives up
    #: the exact ``k = 1`` ledger-charge equality with ``DistributedPCG``.
    fuse_reductions: bool = False

    def __post_init__(self) -> None:
        if self.n_cols is not None:
            if int(self.n_cols) < 1:
                raise ValueError(f"n_cols must be positive, got {self.n_cols}")
            object.__setattr__(self, "n_cols", int(self.n_cols))
        object.__setattr__(self, "fuse_reductions", bool(self.fuse_reductions))

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable dictionary (see :meth:`from_dict`)."""
        return {"n_cols": self.n_cols, "fuse_reductions": self.fuse_reductions}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BlockSpec":
        _check_unknown_keys(data, [f.name for f in fields(cls)], "BlockSpec")
        return cls(**data)


@dataclass(frozen=True)
class SolveSpec:
    """Everything one :func:`repro.solve` call needs, in one frozen object.

    The common solver knobs live here; solver-specific extensions are
    attached through :attr:`resilience` / :attr:`block`.  Construct directly,
    from a JSON dictionary (:meth:`from_dict`), or derive a variant from an
    existing spec with :meth:`with_overrides` (which also routes extension
    fields like ``phi`` or ``fuse_reductions`` to the right sub-spec).
    """

    #: Registered solver name (``"pcg"``, ``"resilient_pcg"``,
    #: ``"block_pcg"``, ``"resilient_block_pcg"``, or any name added via
    #: ``register_solver``).  ``None`` auto-selects: resilient block PCG for
    #: a multi-RHS block with a :class:`ResilienceSpec` attached, block PCG
    #: for a plain multi-RHS block, resilient PCG when only a
    #: :class:`ResilienceSpec` is attached, plain PCG otherwise.
    solver: Optional[str] = None
    #: Relative/absolute convergence tolerances on the recurrence residual.
    rtol: float = 1e-8
    atol: float = 0.0
    #: Iteration cap; ``None`` = the solver default (``10 n``).
    max_iterations: Optional[int] = None
    #: Execute SpMVs split-phase (halo exchange overlapped with the diagonal
    #: block product) and charge the overlap-aware cost.
    overlap_spmv: bool = False
    #: Execute SpMVs through the cached local-view engine (default); ``False``
    #: forces the dense-gather reference path (bit-identical results/charges).
    engine: bool = True
    #: Preconditioner: a registered name (see ``repro.precond.PRECONDITIONERS``),
    #: ``None`` for the default block Jacobi, or an already-built
    #: :class:`~repro.precond.base.Preconditioner` instance (not serializable).
    preconditioner: Union[None, str, Preconditioner] = "block_jacobi"
    #: Keyword arguments for the preconditioner factory (e.g. ``omega`` for
    #: SSOR); ignored when an instance is passed.
    preconditioner_options: Dict[str, Any] = field(default_factory=dict)
    #: ESR-resilience extension; attaching one selects ``resilient_pcg``
    #: unless ``solver`` says otherwise.
    resilience: Optional[ResilienceSpec] = None
    #: Multi-RHS extension; attaching one selects ``block_pcg`` unless
    #: ``solver`` says otherwise.
    block: Optional[BlockSpec] = None

    def __post_init__(self) -> None:
        if float(self.rtol) < 0.0:
            raise ValueError(f"rtol must be non-negative, got {self.rtol}")
        if float(self.atol) < 0.0:
            raise ValueError(f"atol must be non-negative, got {self.atol}")
        if self.max_iterations is not None:
            if int(self.max_iterations) < 1:
                raise ValueError(
                    f"max_iterations must be positive, got {self.max_iterations}")
            object.__setattr__(self, "max_iterations", int(self.max_iterations))
        if isinstance(self.resilience, Mapping):
            object.__setattr__(self, "resilience",
                               ResilienceSpec.from_dict(self.resilience))
        if isinstance(self.block, Mapping):
            object.__setattr__(self, "block", BlockSpec.from_dict(self.block))
        object.__setattr__(self, "overlap_spmv", bool(self.overlap_spmv))
        object.__setattr__(self, "engine", bool(self.engine))
        object.__setattr__(self, "preconditioner_options",
                           dict(self.preconditioner_options))

    # -- derivation -----------------------------------------------------------
    def with_overrides(self, **overrides: Any) -> "SolveSpec":
        """A new spec with *overrides* applied.

        Top-level :class:`SolveSpec` field names override directly;
        :class:`ResilienceSpec` / :class:`BlockSpec` field names (``phi``,
        ``scheme``, ``scheme_options``, ``placement``, ``failures``,
        ``local_solver_method``, ``local_rtol``,
        ``reconstruction_form`` / ``n_cols``, ``fuse_reductions``) are routed
        into the corresponding extension, creating it with defaults if absent.
        Unknown names raise ``ValueError``.
        """
        own = {f.name for f in fields(self)}
        top = {k: v for k, v in overrides.items() if k in own}
        res = {k: v for k, v in overrides.items() if k in _RESILIENCE_FIELDS}
        blk = {k: v for k, v in overrides.items() if k in _BLOCK_FIELDS}
        unknown = sorted(set(overrides) - own
                         - set(_RESILIENCE_FIELDS) - set(_BLOCK_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown SolveSpec override(s) {unknown}; top-level fields: "
                f"{sorted(own)}, resilience fields: "
                f"{sorted(_RESILIENCE_FIELDS)}, block fields: "
                f"{sorted(_BLOCK_FIELDS)}"
            )
        spec = replace(self, **top) if top else self
        if res:
            base = spec.resilience if spec.resilience is not None \
                else ResilienceSpec()
            spec = replace(spec, resilience=replace(base, **res))
        if blk:
            base = spec.block if spec.block is not None else BlockSpec()
            spec = replace(spec, block=replace(base, **blk))
        return spec

    def resolved_solver(self, *, multi_rhs: bool = False) -> str:
        """The registry name this spec dispatches to.

        Explicit :attr:`solver` wins; otherwise a multi-RHS right-hand side
        (or an attached :class:`BlockSpec`) selects ``"block_pcg"`` -- or
        ``"resilient_block_pcg"`` when a :class:`ResilienceSpec` is attached
        as well (the two extensions compose) -- an attached
        :class:`ResilienceSpec` alone selects ``"resilient_pcg"``, and the
        plain ``"pcg"`` is the fallback.
        """
        if self.solver is not None:
            return str(self.solver)
        block_like = multi_rhs or self.block is not None
        if block_like and self.resilience is not None:
            return "resilient_block_pcg"
        if block_like:
            return "block_pcg"
        if self.resilience is not None:
            return "resilient_pcg"
        return "pcg"

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serializable dictionary; ``from_dict`` round-trips it.

        Raises ``ValueError`` when :attr:`preconditioner` holds a built
        instance (name-based specs are the serializable configuration
        surface).
        """
        if isinstance(self.preconditioner, Preconditioner):
            raise ValueError(
                "a SolveSpec holding a Preconditioner instance is not "
                "serializable; use a registered preconditioner name instead"
            )
        return {
            "solver": self.solver,
            "rtol": self.rtol,
            "atol": self.atol,
            "max_iterations": self.max_iterations,
            "overlap_spmv": self.overlap_spmv,
            "engine": self.engine,
            "preconditioner": self.preconditioner,
            "preconditioner_options": dict(self.preconditioner_options),
            "resilience": (self.resilience.to_dict()
                           if self.resilience is not None else None),
            "block": self.block.to_dict() if self.block is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SolveSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        _check_unknown_keys(data, [f.name for f in fields(cls)], "SolveSpec")
        kwargs = dict(data)
        if kwargs.get("resilience") is not None:
            kwargs["resilience"] = ResilienceSpec.from_dict(kwargs["resilience"])
        if kwargs.get("block") is not None:
            kwargs["block"] = BlockSpec.from_dict(kwargs["block"])
        return cls(**kwargs)
