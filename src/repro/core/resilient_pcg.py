"""The resilient PCG solver: PCG + ESR redundancy + multi-failure recovery.

:class:`ResilientPCG` extends the distributed PCG solver with

* the ESR protocol of Sec. 4.1 -- after every SpMV, ``phi`` redundant copies
  of each block of the two most recent search directions are kept on the
  backup nodes selected by Eqn. (5), shipping only the minimal extra sets of
  Eqn. (6);
* failure handling -- when the failure injector strikes (possibly several
  nodes simultaneously, possibly again during a running recovery), the ULFM
  runtime provides replacement nodes and the ESR reconstruction restores the
  exact solver state before iterating on.

A failure-free run of this class (with ``phi >= 1``) measures the
"relative overhead undisturbed" column of Table 2; runs with injected
failures measure the reconstruction time and the "overhead with failures"
columns.

The ESR driving logic -- protocol/reconstructor construction, the
``_after_spmv`` redundancy exchange, and the ``_handle_failures`` recovery
orchestration with overlapping-failure restarts -- is shared with the
multi-RHS variant (:class:`~repro.core.resilient_block_pcg.
ResilientBlockPCG`) through :class:`EsrResilienceMixin`: the single-vector
and the block solver drive byte-for-byte the same failure path, only the
operand types (vectors vs. ``(n_i, k)`` blocks) and the replicated
recurrence coefficient (scalar vs. ``(k,)`` vector) differ.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from .. import sanitizer as _sanitizer
from ..cluster.errors import UnrecoverableStateError
from ..cluster.failure import FailureInjector
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix
from ..distributed.dvector import DistributedVector
from ..precond.base import Preconditioner, PreconditionerForm
from ..utils.logging import get_logger
from .esr import ESRProtocol
from .pcg import DistributedPCG
from .placement import PlacementLike, resolve_placement
from .reconstruction import ESRReconstructor, RecoveryReport
from .redundancy import (
    BackupPlacement,
    RedundancySchemeBase,
    build_redundancy_scheme,
)

logger = get_logger("core.resilient_pcg")


class EsrResilienceMixin:
    """ESR-resilience plumbing shared by the resilient solvers.

    Expects the host class to provide the solver substrate (``cluster``,
    ``context``, ``matrix``, ``rhs``, ``preconditioner``, and the live state
    operands ``x``/``r``/``z``/``p`` plus ``beta_prev``); adds the redundancy
    scheme, the ESR protocol, the reconstructor, and the failure-handling
    driver the solver hooks call.  ``n_cols=None`` selects single-vector
    protection, ``n_cols=k`` block protection (the only difference between
    :class:`ResilientPCG` and :class:`~repro.core.resilient_block_pcg.
    ResilientBlockPCG`'s failure paths).
    """

    def _init_resilience(self, *, phi: int, placement: PlacementLike,
                         failure_injector: Optional[FailureInjector],
                         local_solver_method: str, local_rtol: float,
                         reconstruction_form: Optional[PreconditionerForm],
                         n_cols: Optional[int] = None,
                         rack_size: Optional[int] = None,
                         scheme: Union[str, RedundancySchemeBase,
                                       None] = None,
                         scheme_options: Optional[Dict[str, Any]] = None
                         ) -> None:
        if phi < 0:
            raise ValueError(f"phi must be non-negative, got {phi}")
        if failure_injector is not None:
            worst = failure_injector.max_simultaneous_failures()
            if worst > phi:
                logger.warning(
                    "failure schedule contains %d simultaneous failures but "
                    "phi=%d redundant copies are kept; recovery may fail",
                    worst, phi,
                )
        self.phi = int(phi)
        self.placement = resolve_placement(placement)
        self.scheme = build_redundancy_scheme(scheme, self.context, self.phi,
                                              placement=self.placement,
                                              rack_size=rack_size,
                                              options=scheme_options)
        # Handing the matrix to the protocol lets the fused redundancy
        # staging reuse the SpMV engine's already-staged send pool (single-
        # vector or batched) each iteration instead of re-gathering the
        # natural halo values.
        self.esr = ESRProtocol(self.cluster, self.context, self.phi,
                               placement=self.placement, scheme=self.scheme,
                               matrix=self.matrix, n_cols=n_cols)
        self.reconstructor = ESRReconstructor(
            self.cluster, self.matrix, self.rhs, self.preconditioner,
            self.context, self.esr,
            local_solver_method=local_solver_method,
            local_rtol=local_rtol,
            reconstruction_form=reconstruction_form,
        )
        self.failure_injector = failure_injector
        self.recovery_reports: List[RecoveryReport] = []

    # -- hooks ------------------------------------------------------------------
    def _after_spmv(self, iteration: int) -> None:
        """Keep the redundant copies and replicate the recurrence scalar(s)."""
        super()._after_spmv(iteration)
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_resilience_hook(self, "after_spmv")
        self.esr.after_spmv(self.p, iteration)
        self.esr.store_replicated_scalars(iteration, beta=self.beta_prev)

    def _handle_failures(self, iteration: int) -> bool:
        """Trigger due failure events and run the ESR reconstruction."""
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_resilience_hook(self, "handle_failures")
        if self.failure_injector is None:
            return super()._handle_failures(iteration)
        due = self.failure_injector.events_due(iteration, overlapping=False)
        if not due:
            return super()._handle_failures(iteration)
        failed_ranks: List[int] = []
        for idx, event in due:
            self.failure_injector.trigger(idx, self.cluster.nodes)
            failed_ranks.extend(event.ranks)
            logger.info("iteration %d: node failure of ranks %s%s",
                        iteration, list(event.ranks),
                        f" ({event.label})" if event.label else "")
        newly_detected = self.cluster.ulfm.detect_failures()
        failed_ranks = sorted(set(failed_ranks) | set(newly_detected))
        self.cluster.comm.drop_messages_to_failed()

        try:
            report = self.reconstructor.reconstruct(
                failed_ranks,
                iteration=iteration,
                x=self.x, r=self.r, z=self.z, p=self.p,
                beta_fallback=self.beta_prev,
                overlap_provider=self._make_overlap_provider(iteration),
            )
        except UnrecoverableStateError as exc:
            # Tag the loss point so campaign-style consumers can report a
            # time-to-unrecoverable-loss distribution from the typed error.
            exc.iteration = iteration
            raise
        self.recovery_reports.append(report)
        record = self.cluster.ulfm.begin_recovery(iteration, report.failed_ranks)
        record.restarts = report.restarts
        record.simulated_time = report.simulated_time
        record.wallclock_time = report.wallclock_time
        return True

    def _make_overlap_provider(self, iteration: int):
        """Closure handing overlapping-failure events to the reconstructor."""

        def provider() -> List[int]:
            if self.failure_injector is None:
                return []
            due = self.failure_injector.events_due(iteration, overlapping=True)
            ranks: List[int] = []
            for idx, event in due:
                self.failure_injector.trigger(idx, self.cluster.nodes)
                ranks.extend(event.ranks)
            if ranks:
                self.cluster.ulfm.detect_failures()
                self.cluster.comm.drop_messages_to_failed()
            return sorted(set(ranks))

        return provider

    # -- result assembly ------------------------------------------------------------
    def solve(self, x0=None):
        """Run the host solver's loop, then decorate the result with the
        resilience metadata (the host's ``_build_result`` already collected
        the recovery reports)."""
        result = super().solve(x0)
        result.info["phi"] = self.phi
        result.info["placement"] = self.placement.value
        result.info["scheme"] = self.scheme.scheme_name
        result.info["redundancy"] = self.esr.overhead_summary()
        return result


class ResilientPCG(EsrResilienceMixin, DistributedPCG):
    """PCG protected against up to ``phi`` simultaneous/overlapping node failures.

    Parameters
    ----------
    matrix, rhs, preconditioner:
        As for :class:`~repro.core.pcg.DistributedPCG`; the preconditioner
        must be block-diagonal (the paper uses block Jacobi).
    phi:
        Number of redundant copies kept per search-direction block, i.e. the
        maximum number of simultaneous or overlapping node failures the
        solver can tolerate.  Must satisfy ``0 <= phi < N``.
    scheme:
        Redundancy scheme: a registered name (``"copies"``, ``"rs_parity"``),
        a pre-built :class:`~repro.core.redundancy.RedundancySchemeBase`
        instance, or ``None`` for the default full-copy scheme.
    scheme_options:
        Extra constructor keyword arguments for the scheme (e.g.
        ``{"group_size": 4}`` for ``"rs_parity"``); only valid with a
        scheme *name*.
    placement:
        Backup-node placement strategy (Eqn. (5) by default).
    failure_injector:
        Optional schedule of failure events to strike during the solve.
    local_solver_method, local_rtol:
        Configuration of the reconstruction's local subsystem solver
        (``"pcg_ilu"`` with ``1e-14`` in the paper).
    reconstruction_form:
        Force a particular reconstruction variant (``P`` given / ``M`` given /
        split); by default the preconditioner's natural form is used.
    """

    vector_prefix = "resilient_pcg"

    def __init__(self, matrix: DistributedMatrix, rhs: DistributedVector,
                 preconditioner: Optional[Preconditioner] = None, *,
                 phi: int = 1,
                 scheme: Union[str, RedundancySchemeBase, None] = None,
                 scheme_options: Optional[Dict[str, Any]] = None,
                 placement: PlacementLike = BackupPlacement.PAPER,
                 rack_size: Optional[int] = None,
                 failure_injector: Optional[FailureInjector] = None,
                 local_solver_method: str = "pcg_ilu",
                 local_rtol: float = 1e-14,
                 reconstruction_form: Optional[PreconditionerForm] = None,
                 rtol: float = 1e-8, atol: float = 0.0,
                 max_iterations: Optional[int] = None,
                 context: Optional[CommunicationContext] = None,
                 overlap_spmv: bool = False,
                 engine: bool = True):
        super().__init__(matrix, rhs, preconditioner, rtol=rtol, atol=atol,
                         max_iterations=max_iterations, context=context,
                         overlap_spmv=overlap_spmv, engine=engine)
        self._init_resilience(
            phi=phi, placement=placement, failure_injector=failure_injector,
            local_solver_method=local_solver_method, local_rtol=local_rtol,
            reconstruction_form=reconstruction_form, rack_size=rack_size,
            scheme=scheme, scheme_options=scheme_options,
        )
