"""Accuracy and convergence metrics.

The paper quantifies the numerical effect of the reconstruction with the
*relative residual difference* of Eqn. (7): after convergence, the solver's
internal residual ``r`` and the explicitly recomputed residual ``b - A x``
differ slightly due to loss of orthogonality in finite precision, and the
reconstruction (which solves its local systems only to a tight tolerance)
can enlarge that gap.  Table 3 compares the worst case of this metric over
all failure experiments against the reference PCG value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..solvers.result import SolveResult


def relative_residual_difference(solver_residual_norm: float,
                                 true_residual_norm: float) -> float:
    """Eqn. (7): ``(||r|| - ||b - A x||) / ||b - A x||``."""
    if true_residual_norm == 0.0:
        return float("nan")
    return (solver_residual_norm - true_residual_norm) / true_residual_norm


def residual_difference_of(result: SolveResult) -> float:
    """Evaluate Eqn. (7) for a finished solve."""
    return relative_residual_difference(
        result.final_residual_norm, result.true_residual_norm
    )


def max_residual_difference(results: Iterable[SolveResult]) -> float:
    """``max Delta_ESR`` over a collection of runs (first column of Table 3).

    The maximum is taken over the *magnitude-signed* values as in the paper:
    the value whose absolute deviation is largest is reported with its sign.
    """
    values = [residual_difference_of(r) for r in results]
    values = [v for v in values if np.isfinite(v)]
    if not values:
        return float("nan")
    return max(values, key=abs)


@dataclass
class ConvergenceComparison:
    """Side-by-side comparison of a resilient run against the reference run."""

    reference_iterations: int
    resilient_iterations: int
    reference_residual: float
    resilient_residual: float
    reference_deviation: float
    resilient_deviation: float
    solution_difference_norm: float
    solution_relative_difference: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "reference_iterations": self.reference_iterations,
            "resilient_iterations": self.resilient_iterations,
            "reference_residual": self.reference_residual,
            "resilient_residual": self.resilient_residual,
            "reference_deviation": self.reference_deviation,
            "resilient_deviation": self.resilient_deviation,
            "solution_difference_norm": self.solution_difference_norm,
            "solution_relative_difference": self.solution_relative_difference,
        }


def compare_runs(reference: SolveResult, resilient: SolveResult
                 ) -> ConvergenceComparison:
    """Compare a resilient run against the corresponding reference PCG run."""
    diff = float(np.linalg.norm(resilient.x - reference.x))
    ref_norm = float(np.linalg.norm(reference.x))
    return ConvergenceComparison(
        reference_iterations=reference.iterations,
        resilient_iterations=resilient.iterations,
        reference_residual=reference.final_residual_norm,
        resilient_residual=resilient.final_residual_norm,
        reference_deviation=residual_difference_of(reference),
        resilient_deviation=residual_difference_of(resilient),
        solution_difference_norm=diff,
        solution_relative_difference=diff / ref_norm if ref_norm > 0 else diff,
    )


def convergence_rate_estimate(residual_norms: Sequence[float]) -> float:
    """Geometric-mean per-iteration residual reduction factor."""
    norms = [n for n in residual_norms if n > 0]
    if len(norms) < 2:
        return float("nan")
    return float((norms[-1] / norms[0]) ** (1.0 / (len(norms) - 1)))


def iterations_to_tolerance(residual_norms: Sequence[float], rtol: float
                            ) -> Optional[int]:
    """First iteration index at which the relative residual drops below *rtol*."""
    if not residual_norms:
        return None
    r0 = residual_norms[0]
    if r0 == 0:
        return 0
    for j, norm in enumerate(residual_norms):
        if norm <= rtol * r0:
            return j
    return None


def state_difference(state_a: Dict[str, np.ndarray],
                     state_b: Dict[str, np.ndarray]) -> Dict[str, float]:
    """Relative 2-norm differences between two solver states, per vector.

    Used by the reconstruction-exactness tests: the state after recovery is
    compared against a snapshot taken right before the failure.
    """
    out: Dict[str, float] = {}
    for key in sorted(set(state_a) & set(state_b)):
        a, b = np.asarray(state_a[key]), np.asarray(state_b[key])
        denom = float(np.linalg.norm(a))
        diff = float(np.linalg.norm(a - b))
        out[key] = diff / denom if denom > 0 else diff
    return out
