"""Redundant-copy placement for the ESR approach (Secs. 3 and 4.1).

During every SpMV ``u = A p``, node ``i`` sends the subset ``S_ik`` of its
block ``p_{I_i}`` to node ``k`` (determined by the sparsity pattern of ``A``).
Every receiver keeps what it received, so after the SpMV each element ``s`` of
``p_{I_i}`` already has ``m_i(s)`` copies on other nodes (Eqn. (3)).

*Chen's single-failure scheme* (Sec. 3) additionally ships the never-sent
elements ``R^c_i = {s : m_i(s) = 0}`` to the next rank ``d_i = (i+1) mod N``
-- enough for one failure, but two adjacent simultaneous failures lose data.

*The paper's multi-failure scheme* (Sec. 4.1) designates ``phi`` backup nodes
``d_i1, ..., d_iphi`` per owner (Eqn. (5): alternating +1, -1, +2, -2, ...
neighbours) and ships to backup ``d_ik`` the minimal extra set ``R^c_ik`` of
Eqn. (6), which guarantees that every element ends up on at least ``phi``
distinct nodes other than its owner.

:class:`RedundancyScheme` computes these sets from a
:class:`~repro.distributed.comm_context.CommunicationContext`, provides the
held-element pattern the ESR protocol stores each iteration, and knows the
per-round communication overhead of Sec. 4.2.  Alternative placements (naive
next-ranks, random, and the failure-domain-aware strategies of
:mod:`repro.core.placement`) are included for the placement ablation the
paper lists as future work; the strategy registry itself lives in
:mod:`repro.core.placement` and this module re-exports the historical
names (``BackupPlacement``, ``paper_backup_target``).

**The scheme registry.**  Keeping ``phi`` *full* copies is only one point
on the overhead-vs-tolerance frontier; erasure-coded alternatives (e.g. the
Reed-Solomon parity stripes of :mod:`repro.core.rs_parity`) tolerate the
same number of failures at a fraction of the stored volume.  The redundancy
layer is therefore pluggable: scheme classes register under short names via
``@register_redundancy_scheme("name")`` (mirroring the solver /
preconditioner / placement / batching-policy registries), a
:class:`~repro.core.spec.ResilienceSpec` selects one by name through its
``scheme`` field, and :func:`build_redundancy_scheme` constructs the chosen
class.  ``"copies"`` -- this module's :class:`RedundancyScheme`, unchanged
-- is the default and reproduces the paper's behaviour bit for bit.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type, Union

import numpy as np

from ..cluster.network import Topology
from ..distributed.comm_context import CommunicationContext
from ..distributed.partition import BlockRowPartition
from ..utils.rng import RandomState
from .placement import (  # re-exported for backwards compatibility
    BackupPlacement,
    PlacementLike,
    RackLayout,
    paper_backup_target,
    resolve_placement,
)

__all__ = [
    "BackupPlacement",
    "OwnerRedundancy",
    "REDUNDANCY_SCHEMES",
    "RedundancyScheme",
    "RedundancySchemeBase",
    "RedundancySchemeRegistry",
    "backup_targets",
    "build_redundancy_scheme",
    "paper_backup_target",
    "register_redundancy_scheme",
]


def backup_targets(owner: int, phi: int, n_nodes: int,
                   placement: PlacementLike = BackupPlacement.PAPER,
                   rng: Optional[RandomState] = None,
                   racks: Optional[RackLayout] = None) -> List[int]:
    """The ``phi`` backup nodes of *owner* under the chosen placement.

    *placement* may be a :class:`BackupPlacement` member, a name registered
    in :data:`repro.core.placement.PLACEMENTS`, or a strategy object;
    *racks* feeds the rack-aware strategies (``None`` = the default layout
    of :meth:`RackLayout.default`).  The targets are guaranteed to be
    distinct and different from the owner; this requires ``phi < n_nodes``.
    """
    if not 0 <= owner < n_nodes:
        raise ValueError(f"owner {owner} out of range for {n_nodes} nodes")
    if phi < 0:
        raise ValueError(f"phi must be non-negative, got {phi}")
    if phi >= n_nodes:
        raise ValueError(
            f"phi must be smaller than the number of nodes ({phi} >= {n_nodes}): "
            "fewer than phi+1 distinct nodes cannot hold phi+1 copies"
        )
    strategy = resolve_placement(placement)
    targets = strategy.targets(owner, phi, n_nodes, racks=racks, rng=rng)
    if len(targets) != phi or len(set(targets)) != len(targets) \
            or owner in targets:
        # A real error, not an assert: a broken *registered* strategy must
        # fail loudly (and identifiably) even under ``python -O``.
        raise ValueError(
            f"placement strategy {strategy.name!r} returned invalid backup "
            f"targets {targets} for owner {owner} (phi={phi}, N={n_nodes}): "
            "targets must be phi distinct ranks different from the owner"
        )
    return [int(t) for t in targets]


@dataclass(frozen=True)
class OwnerRedundancy:
    """Redundancy bookkeeping for one owner node ``i``."""

    owner: int
    #: Backup ranks ``d_i1 .. d_iphi`` in round order.
    targets: Tuple[int, ...]
    #: Per round ``k`` (0-based list index): global indices of ``R^c_ik``.
    extra_indices: Tuple[np.ndarray, ...]
    #: ``m_i(s)`` per local element.
    multiplicity: np.ndarray
    #: ``g_i(s)`` per local element (copies landing on designated backups anyway).
    natural_backup_count: np.ndarray

    @property
    def extra_counts(self) -> List[int]:
        """``|R^c_ik|`` per round."""
        return [int(idx.size) for idx in self.extra_indices]

    @property
    def total_extra(self) -> int:
        return int(sum(self.extra_counts))


class RedundancySchemeBase:
    """Interface every registered redundancy scheme implements.

    A scheme decides *what* redundant state the ESR protocol keeps per
    generation and what it costs; the protocol (:class:`repro.core.esr.
    ESRProtocol`) owns the node-memory I/O.  Concrete schemes come in two
    kinds, advertised through :attr:`kind`:

    ``"pattern"``
        Full-copy schemes: :meth:`held_pattern` maps ``(owner, holder)``
        pairs to the global element indices the holder snapshots each
        iteration, and recovery re-assembles a block from surviving copies.

    ``"parity"``
        Erasure-coded schemes: owners are grouped into stripes and only
        small parity blocks travel; recovery solves the per-group parity
        system (see :mod:`repro.core.rs_parity`).

    Every scheme owes the **charge-model contract** of Sec. 4.2: the
    per-round times, the per-iteration traffic, and bounds satisfying
    ``lower <= per_iteration_overhead_time <= upper`` for every topology /
    ``n_cols`` / placement combination (pinned by the property tests for
    all registered schemes).
    """

    #: Registered name; set by :meth:`RedundancySchemeRegistry.register`.
    scheme_name: str = "?"
    #: ``"pattern"`` (full copies) or ``"parity"`` (erasure-coded).
    kind: str = "pattern"

    # Set by concrete ``__init__``s:
    context: CommunicationContext
    partition: BlockRowPartition
    phi: int
    racks: RackLayout

    # -- charge model (Sec. 4.2) ------------------------------------------------
    def round_overhead_times(self, topology: Topology, model: Any,
                             n_cols: int = 1) -> List[float]:
        """Per-round redundancy overhead times (one entry per round)."""
        raise NotImplementedError

    def per_iteration_overhead_time(self, topology: Topology, model: Any,
                                    n_cols: int = 1) -> float:
        """Total redundancy overhead per iteration (sum of the round maxima)."""
        return float(sum(self.round_overhead_times(topology, model,
                                                   n_cols=n_cols)))

    def overhead_bounds(self, topology: Topology, model: Any,
                        n_cols: int = 1) -> Tuple[float, float]:
        """``(lower, upper)`` sandwich around the per-iteration overhead."""
        raise NotImplementedError

    def extra_traffic_per_iteration(self, n_cols: int = 1) -> Tuple[int, int]:
        """``(messages, elements)`` of extra redundancy traffic per iteration."""
        raise NotImplementedError

    # -- storage accounting ------------------------------------------------------
    def redundant_elements_per_generation(self, n_cols: int = 1) -> int:
        """Redundant elements stored cluster-wide per retained generation.

        The storage-overhead axis of the scheme frontier
        (``bench_redundancy_schemes.py``): full copies store the whole held
        pattern, parity schemes a local snapshot plus ``m`` parity blocks
        per group.
        """
        raise NotImplementedError

    def describe(self) -> str:
        return f"{type(self).__name__}(phi={self.phi})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()


@dataclass(frozen=True)
class RegisteredScheme:
    """A registry entry: the scheme class plus its one-line description."""

    name: str
    cls: Type[RedundancySchemeBase]
    description: str = ""


class RedundancySchemeRegistry:
    """Name -> scheme-class mapping with a decorator-based registration API."""

    def __init__(self) -> None:
        self._schemes: Dict[str, RegisteredScheme] = {}

    def register(self, name: str, description: str = ""
                 ) -> Callable[[Type[RedundancySchemeBase]],
                               Type[RedundancySchemeBase]]:
        """Decorator registering a scheme class under *name* (case-insensitive)."""
        key = str(name).lower()

        def decorator(cls: Type[RedundancySchemeBase]
                      ) -> Type[RedundancySchemeBase]:
            cls.scheme_name = key
            self._schemes[key] = RegisteredScheme(key, cls, description)
            return cls

        return decorator

    def names(self) -> Tuple[str, ...]:
        """The registered scheme names, sorted."""
        _load_builtin_schemes()
        return tuple(sorted(self._schemes))

    def get(self, name: str) -> Type[RedundancySchemeBase]:
        """The scheme class registered under *name* (case-insensitive).

        Raises ``ValueError`` listing every registered name when *name* is
        unknown (mirroring :class:`repro.core.registry.SolverRegistry`).
        """
        _load_builtin_schemes()
        key = str(name).lower()
        try:
            return self._schemes[key].cls
        except KeyError:
            raise ValueError(
                f"unknown redundancy scheme {name!r}; available: "
                f"{self.names()}"
            ) from None


#: The default registry consulted by :func:`build_redundancy_scheme`.
REDUNDANCY_SCHEMES = RedundancySchemeRegistry()

#: Register a redundancy scheme in the default registry (decorator).
register_redundancy_scheme = REDUNDANCY_SCHEMES.register


def _load_builtin_schemes() -> None:
    """Import the built-in scheme modules that live outside this file.

    ``rs_parity`` imports *from* this module (the base class and the
    registration decorator), so the import happens lazily on first registry
    access instead of at the bottom of this module.
    """
    importlib.import_module(".rs_parity", __package__)


#: Anything the configuration surface accepts as a redundancy scheme.
RedundancySchemeLike = Union[str, RedundancySchemeBase, None]


def build_redundancy_scheme(scheme: RedundancySchemeLike,
                            context: CommunicationContext, phi: int, *,
                            placement: PlacementLike = BackupPlacement.PAPER,
                            rng: Optional[RandomState] = None,
                            rack_size: Optional[int] = None,
                            options: Optional[Mapping[str, Any]] = None
                            ) -> RedundancySchemeBase:
    """Resolve *scheme* (name / instance / ``None``) to a built scheme.

    ``None`` selects the default ``"copies"`` scheme; a registered name is
    built as ``cls(context, phi, placement=..., rng=..., rack_size=...,
    **options)``; an already-built instance passes through unchanged
    (*options* must then be empty).  Scheme-specific *options* (e.g.
    ``group_size`` for ``"rs_parity"``) the chosen class does not accept
    raise ``ValueError`` naming the scheme.
    """
    options = dict(options) if options else {}
    if isinstance(scheme, RedundancySchemeBase):
        if options:
            raise ValueError(
                "scheme_options cannot be combined with an already-built "
                f"redundancy scheme instance (got options {sorted(options)})"
            )
        return scheme
    cls = REDUNDANCY_SCHEMES.get("copies" if scheme is None else scheme)
    try:
        return cls(context, phi, placement=placement, rng=rng,
                   rack_size=rack_size, **options)
    except TypeError as exc:
        raise ValueError(
            f"invalid options for redundancy scheme {cls.scheme_name!r}: "
            f"{exc}"
        ) from None


@register_redundancy_scheme(
    "copies",
    "phi full off-node copies per block (the paper's Sec. 4.1 scheme)")
class RedundancyScheme(RedundancySchemeBase):
    """Computes and stores the multi-failure redundancy sets of Sec. 4.1."""

    def __init__(self, context: CommunicationContext, phi: int, *,
                 placement: PlacementLike = BackupPlacement.PAPER,
                 rng: Optional[RandomState] = None,
                 rack_size: Optional[int] = None):
        if phi < 0:
            raise ValueError(f"phi must be non-negative, got {phi}")
        self.context = context
        self.partition: BlockRowPartition = context.partition
        self.phi = int(phi)
        #: The resolved strategy; ``.value`` is the registered name, so the
        #: pre-registry ``scheme.placement.value`` spelling keeps working.
        self.placement = resolve_placement(placement)
        n_nodes = self.partition.n_parts
        if phi >= n_nodes:
            raise ValueError(
                f"phi={phi} requires at least phi+1={phi + 1} nodes, "
                f"but the cluster has {n_nodes}"
            )
        #: Failure-domain layout fed to the rack-aware strategies.
        self.racks = RackLayout.default(n_nodes, rack_size)
        self._rng = rng
        self._owners: Dict[int, OwnerRedundancy] = {}
        for owner in range(n_nodes):
            self._owners[owner] = self._compute_owner(owner)
        # The held pattern and the per-owner copy counts are immutable after
        # construction; memoize them so per-iteration consumers (the ESR
        # protocol) and the property-test invariant check pay O(pattern)
        # once instead of O(N * pattern) per query.
        self._held_pattern = self._compute_held_pattern()
        self._copy_counts: Dict[int, np.ndarray] = {
            owner: np.zeros(self.partition.size_of(owner), dtype=np.int64)
            for owner in self._owners
        }
        for (owner, _holder), idx in self._held_pattern.items():
            if idx.size:
                start, _ = self.partition.range_of(owner)
                self._copy_counts[owner][idx - start] += 1

    # -- per-owner computation -------------------------------------------------
    def _compute_owner(self, owner: int) -> OwnerRedundancy:
        partition = self.partition
        n_nodes = partition.n_parts
        start, _stop = partition.range_of(owner)
        size = partition.size_of(owner)
        multiplicity = self.context.multiplicity(owner).copy()

        targets = backup_targets(owner, self.phi, n_nodes, self.placement,
                                 rng=self._rng, racks=self.racks)

        # Membership masks: does backup d_ik naturally receive element s?
        member = np.zeros((self.phi, size), dtype=bool)
        for k0, target in enumerate(targets):
            idx = self.context.send_indices(owner, target)
            if idx.size:
                member[k0, idx - start] = True
        natural_backup_count = member.sum(axis=0).astype(np.int64)

        extras: List[np.ndarray] = []
        for k0 in range(self.phi):
            k = k0 + 1  # Eqn. (6) uses 1-based round indices
            need_mask = (~member[k0]) & (
                multiplicity - natural_backup_count <= self.phi - k
            )
            extras.append(np.nonzero(need_mask)[0].astype(np.int64) + start)
        return OwnerRedundancy(
            owner=owner,
            targets=tuple(targets),
            extra_indices=tuple(extras),
            multiplicity=multiplicity,
            natural_backup_count=natural_backup_count,
        )

    # -- queries ------------------------------------------------------------------
    def owner(self, rank: int) -> OwnerRedundancy:
        return self._owners[rank]

    def targets_of(self, owner: int) -> Tuple[int, ...]:
        """Backup ranks of *owner* in round order."""
        return self._owners[owner].targets

    def extra_indices(self, owner: int, round_k: int) -> np.ndarray:
        """``R^c_ik`` (global indices) for 1-based round ``round_k``."""
        if not 1 <= round_k <= self.phi:
            raise ValueError(f"round_k must be in [1, {self.phi}], got {round_k}")
        return self._owners[owner].extra_indices[round_k - 1]

    def extra_count(self, owner: int, round_k: int) -> int:
        return int(self.extra_indices(owner, round_k).size)

    def max_extra_per_round(self) -> List[int]:
        """``max_i |R^c_ik|`` per round (Sec. 4.2)."""
        return [
            max((self.extra_count(owner, k) for owner in self._owners), default=0)
            for k in range(1, self.phi + 1)
        ]

    def total_extra_elements(self) -> int:
        """Total extra elements shipped per iteration across all nodes/rounds."""
        return sum(o.total_extra for o in self._owners.values())

    def chen_single_failure_sets(self) -> Dict[int, np.ndarray]:
        """Chen's original scheme: ``R^c_i = {s : m_i(s) = 0}`` sent to rank i+1."""
        return {
            owner: self.context.unsent_indices(owner)
            for owner in self._owners
        }

    # -- held-element pattern (what each node stores after the exchange) ----------------
    def held_pattern(self) -> Dict[Tuple[int, int], np.ndarray]:
        """Map ``(owner, holder) -> global indices`` the holder keeps per iteration.

        The holder keeps the union of what it receives naturally for the SpMV
        (``S_ik``) and the extras it receives as a designated backup
        (``R^c_ik``).  The ESR protocol snapshots exactly these values for the
        two most recent search directions.

        The pattern is immutable after ``__init__`` and memoized; callers get
        a fresh dict whose index arrays are shared and must not be mutated.
        """
        return dict(self._held_pattern)

    def _compute_held_pattern(self) -> Dict[Tuple[int, int], np.ndarray]:
        pattern: Dict[Tuple[int, int], np.ndarray] = {}
        for owner, info in self._owners.items():
            # natural receivers
            for holder in self.context.receivers_of(owner):
                pattern[(owner, holder)] = self.context.send_indices(owner, holder)
            # designated backups (merge extras into whatever they already get)
            for k0, holder in enumerate(info.targets):
                extra = info.extra_indices[k0]
                if extra.size == 0:
                    continue
                existing = pattern.get((owner, holder))
                if existing is None:
                    pattern[(owner, holder)] = extra
                else:
                    pattern[(owner, holder)] = np.union1d(existing, extra)
        return pattern

    def copy_count(self, owner: int) -> np.ndarray:
        """Number of distinct non-owner nodes holding each element of *owner*.

        This is the quantity the redundancy invariant bounds from below by
        ``phi``; it is exercised directly by the property tests.  The counts
        are precomputed in one pass over the (immutable) held pattern, so
        each call is ``O(n_owner)`` instead of ``O(N * pattern)``.
        """
        return self._copy_counts[owner].copy()

    def verify_invariant(self) -> bool:
        """True if every element has at least ``phi`` off-node copies."""
        if self.phi == 0:
            return True
        return all(
            bool(np.all(self.copy_count(owner) >= self.phi))
            for owner in self._owners
        )

    # -- communication overhead (Sec. 4.2) ---------------------------------------------
    def round_overhead_times(self, topology: Topology, model,
                             n_cols: int = 1) -> List[float]:
        """Per-round redundancy overhead ``max_i (lambda_ik? + |R^c_ik| n_cols mu)``.

        The latency term is only paid when the extras cannot piggyback on an
        SpMV message that goes to the same backup anyway (``S_{i,d_ik}``
        empty), exactly as analysed in Sec. 4.2.  For block (multi-RHS)
        solves with ``n_cols > 1`` every extra set ships all ``n_cols``
        columns of its elements in the same message -- the latency term is
        unchanged and only the volume term scales, mirroring how the halo
        exchange charge scales with the column count.
        """
        mu = model.element_transfer_time
        times: List[float] = []
        for k in range(1, self.phi + 1):
            worst = 0.0
            for owner, info in self._owners.items():
                target = info.targets[k - 1]
                extra = self.extra_count(owner, k)
                if extra == 0:
                    continue
                piggyback = self.context.send_count(owner, target) > 0
                latency = 0.0 if piggyback else topology.latency(owner, target)
                cost = latency + extra * n_cols * mu
                worst = max(worst, cost)
            times.append(worst)
        return times

    def per_iteration_overhead_time(self, topology: Topology, model,
                                    n_cols: int = 1) -> float:
        """Total redundancy overhead per iteration (sum of the round maxima).

        ``n_cols`` scales the volume term only (see
        :meth:`round_overhead_times`); at ``n_cols=1`` this is exactly the
        single-vector charge.
        """
        return float(sum(self.round_overhead_times(topology, model,
                                                   n_cols=n_cols)))

    def overhead_bounds(self, topology: Topology, model,
                        n_cols: int = 1) -> Tuple[float, float]:
        """Lower/upper bounds of Sec. 4.2: ``[max_i sum_k |R^c_ik| mu, phi (lambda_max + ceil(n/N) mu)]``.

        For block solves (``n_cols > 1``) the volume terms of both bounds
        scale with the column count, matching :meth:`round_overhead_times`.
        """
        mu = model.element_transfer_time * n_cols
        lower = max(
            (sum(info.extra_counts) for info in self._owners.values()), default=0
        ) * mu
        upper = self.phi * (
            topology.max_latency() + self.partition.max_block_size() * mu
        )
        return float(lower), float(upper)

    def extra_traffic_per_iteration(self, n_cols: int = 1) -> Tuple[int, int]:
        """``(messages, elements)`` of extra redundancy traffic per iteration.

        With ``n_cols > 1`` (block solves) each extra set ships all columns
        in one message: the message count is independent of the column count
        and the element volume scales with it.
        """
        messages = 0
        elements = 0
        for owner, info in self._owners.items():
            for k0, target in enumerate(info.targets):
                extra = info.extra_counts[k0]
                if extra == 0:
                    continue
                elements += extra * n_cols
                if self.context.send_count(owner, target) == 0:
                    messages += 1
        return messages, elements

    def redundant_elements_per_generation(self, n_cols: int = 1) -> int:
        """Elements snapshotted cluster-wide per generation (the held pattern).

        Every ``(owner, holder)`` pattern entry is stored in full on the
        holder; block protocols store all ``n_cols`` columns of each entry.
        """
        per_entry = sum(int(idx.size) for idx in self._held_pattern.values())
        return per_entry * int(n_cols)

    def describe(self) -> str:
        total = self.total_extra_elements()
        return (
            f"RedundancyScheme(phi={self.phi}, placement={self.placement.value}, "
            f"extra_elements_per_iteration={total})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()
