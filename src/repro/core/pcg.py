"""Distributed preconditioned conjugate gradient solver (Alg. 1).

:class:`DistributedPCG` runs the PCG method on the virtual cluster with
block-row distributed data: the SpMV is performed with the halo-exchange
communication context, dot products go through allreduce, and the
(block-diagonal) preconditioner is applied block-locally -- every operation is
charged to the latency-bandwidth cost model, so the accumulated simulated time
of a run is the ``t0`` (reference time) of the paper's Table 2.

The class exposes protected hooks (``_after_spmv``, ``_handle_failures``,
``_after_iteration``) that the resilient variant overrides to add the ESR
redundancy exchange and the failure-recovery logic without duplicating the
iteration loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from .. import sanitizer as _sanitizer
from ..cluster.cluster import VirtualCluster
from ..cluster.cost_model import Phase
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix
from ..distributed.dvector import DistributedVector
from ..distributed.partition import BlockRowPartition
from ..distributed.spmv import distributed_spmv
from ..precond.base import Preconditioner
from ..precond.identity import IdentityPreconditioner
from ..solvers.result import SolveResult
from ..utils.logging import get_logger

logger = get_logger("core.pcg")


@dataclass
class DistributedSolveResult(SolveResult):
    """Solve result of a distributed run, including simulated-time accounting."""

    #: Total simulated time of the run (seconds in the cost model).
    simulated_time: float = 0.0
    #: Simulated time spent in failure-free iteration phases.
    simulated_iteration_time: float = 0.0
    #: Simulated time spent recovering from failures.
    simulated_recovery_time: float = 0.0
    #: Per-phase simulated time breakdown.
    time_breakdown: Dict[str, float] = field(default_factory=dict)
    #: One entry per recovery episode (empty for failure-free runs).
    recoveries: List[object] = field(default_factory=list)

    @property
    def n_failures_recovered(self) -> int:
        return int(sum(len(getattr(r, "failed_ranks", [])) for r in self.recoveries))

    def to_dict(self, *, include_solution: bool = False,
                include_history: bool = True) -> Dict[str, object]:
        """Extend :meth:`SolveResult.to_dict` with simulated-time accounting."""
        from ..solvers.result import jsonify

        data = super().to_dict(include_solution=include_solution,
                               include_history=include_history)
        data["simulated_time"] = float(self.simulated_time)
        data["simulated_iteration_time"] = float(self.simulated_iteration_time)
        data["simulated_recovery_time"] = float(self.simulated_recovery_time)
        data["time_breakdown"] = {k: float(self.time_breakdown[k])
                                  for k in sorted(self.time_breakdown)}
        data["n_failures_recovered"] = self.n_failures_recovered
        data["recoveries"] = [jsonify(r) for r in self.recoveries]
        return data


class DistributedPCG:
    """Block-row distributed PCG on a :class:`VirtualCluster`."""

    #: Prefix for the names of the solver's distributed work vectors.
    vector_prefix = "pcg"

    def __init__(self, matrix: DistributedMatrix, rhs: DistributedVector,
                 preconditioner: Optional[Preconditioner] = None, *,
                 rtol: float = 1e-8, atol: float = 0.0,
                 max_iterations: Optional[int] = None,
                 context: Optional[CommunicationContext] = None,
                 overlap_spmv: bool = False,
                 engine: bool = True):
        self.matrix = matrix
        self.rhs = rhs
        #: Execute SpMVs split-phase (halo exchange overlapped with the
        #: diagonal-block product) and charge the overlap-aware cost.  Off by
        #: default: the serialized path is bit-identical to the dense-gather
        #: reference, while split execution rounds like PETSc's overlapped
        #: MatMult (last-bits differences; see repro.distributed.spmv_engine).
        self.overlap_spmv = bool(overlap_spmv)
        #: Execute SpMVs through the cached local-view engine (default);
        #: ``False`` runs the dense-gather reference path instead
        #: (bit-identical results and charges, kept as the oracle).
        self.engine = bool(engine)
        self.cluster: VirtualCluster = matrix.cluster
        self.partition: BlockRowPartition = matrix.partition
        if not self.partition.is_compatible_with(rhs.partition):
            raise ValueError("matrix and right-hand side have incompatible partitions")
        self.preconditioner = (
            preconditioner if preconditioner is not None else IdentityPreconditioner()
        )
        if not self.preconditioner.is_block_diagonal:
            raise ValueError(
                "the distributed PCG solver requires a block-diagonal "
                f"preconditioner; {self.preconditioner.name} is not"
            )
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.max_iterations = (
            int(max_iterations) if max_iterations is not None else 10 * self.partition.n
        )
        self.context = context if context is not None else \
            CommunicationContext.from_matrix(matrix)
        if not self.preconditioner.is_set_up:
            self.preconditioner.setup(matrix.to_global(), self.partition)

        # Work vectors (created lazily in solve()).
        self.x: Optional[DistributedVector] = None
        self.r: Optional[DistributedVector] = None
        self.z: Optional[DistributedVector] = None
        self.p: Optional[DistributedVector] = None
        self.ap: Optional[DistributedVector] = None
        self.beta_prev: float = 0.0
        #: Current value of r^T z (kept as an attribute so recovery strategies
        #: that roll the state back, e.g. checkpoint/restart, can reset it).
        self.rz: float = 0.0
        self.iteration: int = 0
        self.residual_history: List[float] = []

    # -- hooks overridden by the resilient solver --------------------------------
    def _on_setup(self) -> None:
        """Called once after the work vectors have been initialised."""

    def _after_spmv(self, iteration: int) -> None:
        """Called right after the SpMV of *iteration* (halo data just moved)."""

    def _handle_failures(self, iteration: int) -> bool:
        """Check for and recover from node failures.

        Returns true if a recovery took place; the iteration is then restarted
        from the top of the loop (the SpMV is redone on the recovered -- and,
        for roll-back strategies, possibly rewound -- state).
        """
        return False

    def _after_iteration(self, iteration: int) -> None:
        """Called at the end of every completed iteration."""

    # -- building blocks --------------------------------------------------------------
    def _vec(self, suffix: str) -> DistributedVector:
        return DistributedVector.zeros(
            self.cluster, self.partition, f"{self.vector_prefix}:{suffix}"
        )

    def _apply_preconditioner(self, residual: DistributedVector,
                              out: DistributedVector) -> DistributedVector:
        """Block-local application of the preconditioner, charged to the ledger.

        The bulk-synchronous charge is set by the worst rank's block work,
        which is static across iterations -- it comes from the cached
        :meth:`Preconditioner.max_block_work_nnz` instead of a per-rank
        Python ``max`` loop on every application.
        """
        model = self.cluster.ledger.model
        for rank in range(self.partition.n_parts):
            block = self.preconditioner.apply_block(rank, residual.get_block(rank))
            out.set_block(rank, block)
        self.cluster.ledger.add_time(
            Phase.PRECOND_COMPUTE,
            model.precond_apply_time(self.preconditioner.max_block_work_nnz()),
        )
        return out

    def _initial_guess_vector(self, x0) -> DistributedVector:
        if x0 is None:
            return self._vec("x")
        if isinstance(x0, DistributedVector):
            return x0.copy(f"{self.vector_prefix}:x")
        return DistributedVector.from_global(
            self.cluster, self.partition, f"{self.vector_prefix}:x",
            np.asarray(x0, dtype=np.float64),
        )

    def _spmv_p(self) -> None:
        """(Re)compute ``ap = A p`` -- split out so recovery can repeat it.

        Executes through the local-view SpMV engine cached on the matrix for
        the solver's prebuilt context (``O(nnz + ghosts)`` per call); the
        cache is invalidated automatically when recovery restores matrix
        blocks on replacement nodes.  With ``overlap_spmv`` the execution is
        split-phase and the overlap-aware cost is charged.
        """
        distributed_spmv(self.matrix, self.p, self.ap, self.context,
                         overlap=self.overlap_spmv, engine=self.engine)

    # -- main loop ----------------------------------------------------------------------
    def solve(self, x0: Union[None, np.ndarray, DistributedVector] = None
              ) -> DistributedSolveResult:
        """Run PCG until convergence, the iteration cap, or an unrecoverable failure."""
        ledger = self.cluster.ledger
        start_snapshot = ledger.snapshot()

        self.x = self._initial_guess_vector(x0)
        self.r = self._vec("r")
        self.z = self._vec("z")
        self.p = self._vec("p")
        self.ap = self._vec("ap")

        # r(0) = b - A x(0)
        distributed_spmv(self.matrix, self.x, self.ap, self.context,
                         overlap=self.overlap_spmv, engine=self.engine)
        self.r.assign(self.rhs)
        self.r.axpy(-1.0, self.ap)
        # z(0) = M^{-1} r(0); p(0) = z(0)
        self._apply_preconditioner(self.r, self.z)
        self.p.assign(self.z)

        self.rz = self.r.dot(self.z)
        r_norm = self.r.norm2()
        r0_norm = r_norm
        threshold = max(self.rtol * r0_norm, self.atol)
        self.residual_history = [r_norm]
        self.beta_prev = 0.0
        self.iteration = 0
        converged = r_norm <= threshold
        self._on_setup()

        while not converged and self.iteration < self.max_iterations:
            j = self.iteration
            if _sanitizer._ACTIVE is not None:
                _sanitizer._ACTIVE.note_iteration(j, solver=self)
            # --- line 3 first half: the SpMV (and the ESR redundancy exchange)
            self._spmv_p()
            self._after_spmv(j)
            # Node failures strike here (after the halo data of iteration j
            # has moved, as assumed by the ESR recovery).  If a recovery ran,
            # restart the iteration from the top: the SpMV is repeated on the
            # recovered (or, for roll-back strategies, rewound) state.
            if self._handle_failures(j):
                continue

            pap = self.p.dot(self.ap)
            if pap <= 0.0:
                logger.warning(
                    "p^T A p = %.3e <= 0 at iteration %d; stopping", pap, j
                )
                break
            alpha = self.rz / pap
            # --- lines 4-5: iterate and residual updates
            self.x.axpy(alpha, self.p)
            self.r.axpy(-alpha, self.ap)
            # --- line 6: preconditioned residual
            self._apply_preconditioner(self.r, self.z)
            # --- line 7: beta
            rz_next = self.r.dot(self.z)
            beta = rz_next / self.rz
            # --- line 8: new search direction p = z + beta p
            self.p.aypx(beta, self.z)
            self.rz = rz_next
            self.beta_prev = beta
            self.iteration = j + 1

            r_norm = self.r.norm2()
            self.residual_history.append(r_norm)
            converged = r_norm <= threshold
            self._after_iteration(self.iteration)

        return self._build_result(start_snapshot, converged, threshold)

    # -- result assembly ------------------------------------------------------------------
    def _build_result(self, start_snapshot: Dict[str, float], converged: bool,
                      threshold: float) -> DistributedSolveResult:
        ledger = self.cluster.ledger
        x_global = self.x.to_global()
        r_global = self.r.to_global()
        b_global = self.rhs.to_global()
        a_global = self.matrix.to_global()
        true_residual = float(np.linalg.norm(b_global - a_global @ x_global))

        total = ledger.since(start_snapshot)
        iteration_time = ledger.since(start_snapshot, Phase.ITERATION_PHASES)
        recovery_time = ledger.since(start_snapshot, Phase.RECOVERY_PHASES)
        # Only phases actually charged during THIS solve: a second solve on
        # the same cluster must not report stale zero-delta phases left on
        # the ledger by an earlier run.
        breakdown = {
            phase: ledger.since(start_snapshot, [phase])
            for phase in sorted(ledger.times)
            if phase not in start_snapshot
            or ledger.times[phase] != start_snapshot[phase]
        }
        result = DistributedSolveResult(
            x=x_global,
            converged=converged,
            iterations=self.iteration,
            residual_norms=list(self.residual_history),
            final_residual_norm=self.residual_history[-1],
            true_residual_norm=true_residual,
            solver_residual=r_global,
            info={
                "threshold": threshold,
                "rtol": self.rtol,
                "preconditioner": self.preconditioner.name,
                "n_nodes": self.partition.n_parts,
                "overlap_spmv": self.overlap_spmv,
                "engine": self.engine,
            },
            simulated_time=total,
            simulated_iteration_time=iteration_time,
            simulated_recovery_time=recovery_time,
            time_breakdown=breakdown,
            recoveries=list(getattr(self, "recovery_reports", [])),
        )
        return result
