"""Solver registry: from ``SolveSpec.solver`` names to configured solvers.

Mirrors :mod:`repro.precond.factory`: solvers are registered under short
string names and built from a declarative configuration.  The façade
(:func:`repro.core.api.solve`) resolves the name with
:meth:`SolveSpec.resolved_solver` and calls :meth:`SolverRegistry.build`;
new scenarios (coupled block-CG, ...) plug in as a
``@register_solver("name")`` builder plus whatever :class:`SolveSpec`
extension they need -- no new top-level helper required.  The resilient
block solver composes the two existing extensions: a ``SolveSpec`` carrying
*both* a ``ResilienceSpec`` and a multi-RHS block dispatches to
``"resilient_block_pcg"``.

A builder receives ``(problem, rhs, preconditioner, spec)`` -- the
distributed problem, the already-normalised right-hand side
(:class:`~repro.distributed.dvector.DistributedVector` or
:class:`~repro.distributed.dmultivector.DistributedMultiVector`), the
resolved (set-up) preconditioner, and the full :class:`SolveSpec` -- and
returns a solver object exposing ``solve()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Tuple, Union

from ..cluster.failure import FailureInjector
from ..precond.base import Preconditioner
from ..distributed.dmultivector import DistributedMultiVector
from ..distributed.dvector import DistributedVector
from .block_pcg import BlockPCG
from .pcg import DistributedPCG
from .resilient_block_pcg import ResilientBlockPCG
from .resilient_pcg import ResilientPCG
from .spec import BlockSpec, ResilienceSpec, SolveSpec

if TYPE_CHECKING:  # circular at runtime: api.py imports this module
    from .api import DistributedProblem

#: A solver builder: ``(problem, rhs, preconditioner, spec) -> solver``.
SolverBuilder = Callable[..., object]


class SolverRegistry:
    """Name -> builder mapping with a decorator-based registration API."""

    def __init__(self) -> None:
        self._builders: Dict[str, SolverBuilder] = {}

    def register(self, name: str) -> Callable[[SolverBuilder], SolverBuilder]:
        """Decorator registering *builder* under *name* (case-insensitive)."""
        key = str(name).lower()

        def decorator(builder: SolverBuilder) -> SolverBuilder:
            self._builders[key] = builder
            return builder

        return decorator

    def names(self) -> Tuple[str, ...]:
        """The registered solver names, sorted."""
        return tuple(sorted(self._builders))

    def get(self, name: str) -> SolverBuilder:
        """The builder registered under *name*.

        Raises ``ValueError`` listing every registered name when *name* is
        unknown (mirroring :func:`repro.precond.factory.make_preconditioner`).
        """
        key = str(name).lower()
        try:
            return self._builders[key]
        except KeyError:
            raise ValueError(
                f"unknown solver {name!r}; available: {self.names()}"
            ) from None

    def build(self, name: str, problem: "DistributedProblem",
              rhs: Union[DistributedVector, DistributedMultiVector],
              preconditioner: Preconditioner,
              spec: SolveSpec) -> object:
        """Build the configured solver *name* for one solve."""
        return self.get(name)(problem, rhs, preconditioner, spec)


#: The default registry behind :func:`repro.solve`.
SOLVERS = SolverRegistry()

#: Register a solver builder in the default registry (decorator).
register_solver = SOLVERS.register


def _require_single_rhs(
        rhs: Union[DistributedVector, DistributedMultiVector],
        solver: str) -> DistributedVector:
    if isinstance(rhs, DistributedMultiVector):
        raise ValueError(
            f"solver {solver!r} takes a single right-hand side; pass a "
            "1-D rhs or select solver='block_pcg' for (n, k) blocks"
        )
    return rhs


def _require_no_block(spec: SolveSpec, solver: str) -> None:
    if spec.block is not None:
        raise ValueError(
            f"solver {solver!r} does not understand a BlockSpec; use "
            "solver='block_pcg' for multi-RHS solves"
        )


def _require_no_resilience(spec: SolveSpec, solver: str) -> None:
    if spec.resilience is not None:
        suggestion = "resilient_block_pcg" if solver == "block_pcg" \
            else "resilient_pcg"
        raise ValueError(
            f"solver {solver!r} does not understand a ResilienceSpec; use "
            f"solver={suggestion!r} for ESR-protected solves"
        )


@register_solver("pcg")
def build_pcg(problem: "DistributedProblem",
              rhs: Union[DistributedVector, DistributedMultiVector],
              preconditioner: Preconditioner,
              spec: SolveSpec) -> DistributedPCG:
    """The plain distributed PCG (the paper's reference solver)."""
    _require_no_resilience(spec, "pcg")
    _require_no_block(spec, "pcg")
    return DistributedPCG(
        problem.matrix, _require_single_rhs(rhs, "pcg"), preconditioner,
        rtol=spec.rtol, atol=spec.atol, max_iterations=spec.max_iterations,
        context=problem.context, overlap_spmv=spec.overlap_spmv,
        engine=spec.engine,
    )


@register_solver("resilient_pcg")
def build_resilient_pcg(problem: "DistributedProblem",
                        rhs: Union[DistributedVector, DistributedMultiVector],
                        preconditioner: Preconditioner,
                        spec: SolveSpec) -> ResilientPCG:
    """The ESR-protected PCG (the paper's contribution)."""
    _require_no_block(spec, "resilient_pcg")
    res = spec.resilience if spec.resilience is not None else ResilienceSpec()
    injector = FailureInjector(list(res.failures)) if res.failures else None
    return ResilientPCG(
        problem.matrix, _require_single_rhs(rhs, "resilient_pcg"),
        preconditioner,
        phi=res.phi, scheme=res.scheme,
        scheme_options=dict(res.scheme_options),
        placement=res.placement, rack_size=res.rack_size,
        failure_injector=injector,
        local_solver_method=res.local_solver_method,
        local_rtol=res.local_rtol,
        reconstruction_form=res.reconstruction_form,
        rtol=spec.rtol, atol=spec.atol, max_iterations=spec.max_iterations,
        context=problem.context, overlap_spmv=spec.overlap_spmv,
        engine=spec.engine,
    )


def _normalize_block_rhs(problem: "DistributedProblem",
                         rhs: Union[DistributedVector, DistributedMultiVector],
                         spec: SolveSpec) -> DistributedMultiVector:
    """Promote a single-vector rhs to a ``k = 1`` block and validate ``n_cols``."""
    block = spec.block if spec.block is not None else BlockSpec()
    if isinstance(rhs, DistributedVector):
        # Single-vector input solved through the block path as a k = 1 block.
        rhs = DistributedMultiVector.from_columns(
            problem.cluster, problem.partition, f"{rhs.name}:as_block", [rhs]
        )
    if block.n_cols is not None and rhs.n_cols != block.n_cols:
        raise ValueError(
            f"BlockSpec expects n_cols={block.n_cols} right-hand sides but "
            f"the RHS block carries {rhs.n_cols}"
        )
    return rhs


@register_solver("block_pcg")
def build_block_pcg(problem: "DistributedProblem",
                    rhs: Union[DistributedVector, DistributedMultiVector],
                    preconditioner: Preconditioner,
                    spec: SolveSpec) -> BlockPCG:
    """The lock-step multi-RHS block PCG (no failure handling)."""
    _require_no_resilience(spec, "block_pcg")
    block = spec.block if spec.block is not None else BlockSpec()
    rhs = _normalize_block_rhs(problem, rhs, spec)
    return BlockPCG(
        problem.matrix, rhs, preconditioner,
        rtol=spec.rtol, atol=spec.atol, max_iterations=spec.max_iterations,
        context=problem.context, overlap_spmv=spec.overlap_spmv,
        engine=spec.engine, fuse_reductions=block.fuse_reductions,
    )


@register_solver("resilient_block_pcg")
def build_resilient_block_pcg(problem: "DistributedProblem",
                              rhs: Union[DistributedVector,
                                         DistributedMultiVector],
                              preconditioner: Preconditioner,
                              spec: SolveSpec) -> ResilientBlockPCG:
    """The ESR-protected multi-RHS block PCG (ResilienceSpec + BlockSpec)."""
    res = spec.resilience if spec.resilience is not None else ResilienceSpec()
    block = spec.block if spec.block is not None else BlockSpec()
    rhs = _normalize_block_rhs(problem, rhs, spec)
    injector = FailureInjector(list(res.failures)) if res.failures else None
    return ResilientBlockPCG(
        problem.matrix, rhs, preconditioner,
        phi=res.phi, scheme=res.scheme,
        scheme_options=dict(res.scheme_options),
        placement=res.placement, rack_size=res.rack_size,
        failure_injector=injector,
        local_solver_method=res.local_solver_method,
        local_rtol=res.local_rtol,
        reconstruction_form=res.reconstruction_form,
        rtol=spec.rtol, atol=spec.atol, max_iterations=spec.max_iterations,
        context=problem.context, overlap_spmv=spec.overlap_spmv,
        engine=spec.engine, fuse_reductions=block.fuse_reductions,
    )
