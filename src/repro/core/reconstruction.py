"""Exact state reconstruction after node failures (Alg. 2, generalised).

Given ``psi <= phi`` failed nodes, the reconstruction restores the full PCG
state ``(x^(j), r^(j), z^(j), p^(j))`` on the replacement nodes:

1. retrieve the static data (``A_{I_f,I}``, preconditioner rows, ``b_{I_f}``)
   from reliable storage,
2. recover the replicated scalar ``beta^(j-1)`` from any survivor,
3. recover ``p^(j)_{I_f}`` and ``p^(j-1)_{I_f}`` from whatever redundancy the
   protocol's scheme keeps on surviving nodes -- full off-node copies for the
   default ``"copies"`` scheme, or Reed--Solomon parity decoding for
   ``"rs_parity"``; either way the recovered block is bit-identical to the
   lost one, so the reconstruction below is scheme-agnostic,
4. compute ``z^(j)_{I_f} = p^(j)_{I_f} - beta^(j-1) p^(j-1)_{I_f}``,
5. reconstruct ``r^(j)_{I_f}`` -- depending on which preconditioner
   representation is available (``P = M^{-1}``: solve ``P_{I_f,I_f} r = z -
   P_{I_f,I\\I_f} r``; ``M`` or ``M = L L^T``: multiply ``r_{I_f} = M_{I_f,I}
   z``; identity: ``r = z``),
6. compute ``w = b_{I_f} - r^(j)_{I_f} - A_{I_f,I\\I_f} x^(j)`` and solve
   ``A_{I_f,I_f} x^(j)_{I_f} = w`` with a tightly-converged local solver.

Overlapping failures (new nodes dying while the reconstruction runs,
Sec. 4.1) are handled by restarting the procedure with the enlarged failed
set, exactly as the paper prescribes.

**Block (multi-RHS) reconstruction.**  When the reconstructor is built for a
block protocol (``ESRProtocol(n_cols=k)``) and ``(n, k)`` multi-vector
operands, the same steps run on whole ``(|I_f|, k)`` row blocks: the
replicated recurrence coefficient becomes a ``(k,)`` vector, the recovered
search-direction generations are ``(n_i, k)`` blocks, every sparse product
is one CSR x dense-block kernel (per-column bit-identical to the
single-vector matvec), and the two local subsystem solves run through
:meth:`LocalSubsystemSolver.solve_block` -- **one factorization per failed
set, amortized over all k columns**, with each column's solution
bit-identical to a standalone single-vector solve.  Column ``j`` of the
reconstructed state is therefore bit-identical to what the single-vector
reconstruction would produce for column ``j`` alone, and the charges reduce
exactly to the single-vector ones at ``k = 1``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..cluster.cluster import VirtualCluster
from ..cluster.cost_model import Phase
from ..cluster.errors import UnrecoverableStateError
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix
from ..distributed.dvector import DistributedVector
from ..distributed.partition import BlockRowPartition
from ..precond.base import Preconditioner, PreconditionerForm
from ..solvers.local_solver import LocalSolveStats, LocalSubsystemSolver
from ..utils.logging import get_logger
from .esr import ESRProtocol

logger = get_logger("core.reconstruction")

#: Maximum number of reconstruction restarts caused by overlapping failures
#: before giving up (prevents infinite loops on pathological schedules).
MAX_RECONSTRUCTION_RESTARTS = 64


@dataclass
class RecoveryReport:
    """Outcome and cost of one recovery episode."""

    iteration: int
    failed_ranks: List[int]
    restarts: int = 0
    simulated_time: float = 0.0
    wallclock_time: float = 0.0
    reconstruction_form: str = ""
    local_solve_stats: List[LocalSolveStats] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def n_failures(self) -> int:
        return len(self.failed_ranks)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable dictionary of the episode (for service
        responses and campaign outputs; wallclock is reported as-is and is
        the only non-deterministic field)."""
        return {
            "iteration": int(self.iteration),
            "failed_ranks": [int(r) for r in self.failed_ranks],
            "n_failures": self.n_failures,
            "restarts": int(self.restarts),
            "simulated_time": float(self.simulated_time),
            "wallclock_time": float(self.wallclock_time),
            "reconstruction_form": self.reconstruction_form,
            "local_solve_stats": [s.to_dict() for s in self.local_solve_stats],
            "notes": list(self.notes),
        }


class ESRReconstructor:
    """Implements the (multi-node) ESR reconstruction phase."""

    def __init__(self, cluster: VirtualCluster, matrix: DistributedMatrix,
                 rhs: DistributedVector, preconditioner: Preconditioner,
                 context: CommunicationContext, esr: ESRProtocol, *,
                 local_solver_method: str = "pcg_ilu",
                 local_rtol: float = 1e-14,
                 reconstruction_form: Optional[PreconditionerForm] = None):
        self.cluster = cluster
        self.matrix = matrix
        self.rhs = rhs
        self.preconditioner = preconditioner
        self.context = context
        self.esr = esr
        self.partition: BlockRowPartition = matrix.partition
        self.local_solver_method = local_solver_method
        self.local_rtol = local_rtol
        self._requested_form = reconstruction_form
        #: ``None`` for single-vector reconstruction; the column count ``k``
        #: for block reconstruction (derived from the ESR protocol, which is
        #: the component that stores the copies being recovered).
        self.n_cols = esr.n_cols
        rhs_cols = getattr(rhs, "n_cols", None)
        if rhs_cols != self.n_cols:
            raise ValueError(
                f"right-hand side has n_cols={rhs_cols} but the ESR protocol "
                f"protects n_cols={self.n_cols} operands"
            )
        # The right-hand side is static data: make sure it is in reliable storage.
        self.ensure_static_data_stored()

    # -- static data handling --------------------------------------------------
    def _rhs_storage_name(self) -> str:
        return f"rhs:{self.rhs.name}"

    def ensure_static_data_stored(self) -> None:
        """Deposit the right-hand-side blocks in reliable storage (setup phase)."""
        for rank in range(self.partition.n_parts):
            key = (self._rhs_storage_name(), rank)
            if key not in self.cluster.storage:
                self.cluster.storage.put(key, self.rhs.get_block(rank).copy())

    # -- form selection -------------------------------------------------------------
    def reconstruction_form(self) -> PreconditionerForm:
        """Which reconstruction variant will be used for the preconditioner.

        An explicitly requested form is honoured as-is.  Otherwise the
        preconditioner's natural form is used, except that SPLIT (only a
        factor ``L`` with ``M = L L^T`` is available) reduces to the FORWARD
        variant: the reconstruction multiplies by ``M = L L^T`` row-wise.
        """
        if self._requested_form is not None:
            return self._requested_form
        form = self.preconditioner.form
        if form is PreconditionerForm.SPLIT:
            # The split variant reduces to the forward variant via M = L L^T.
            return PreconditionerForm.FORWARD
        return form

    # -- main entry point ----------------------------------------------------------------
    def reconstruct(self, failed_ranks: Iterable[int], *, iteration: int,
                    x: DistributedVector, r: DistributedVector,
                    z: DistributedVector, p: DistributedVector,
                    beta_fallback: float = 0.0,
                    overlap_provider: Optional[Callable[[], List[int]]] = None
                    ) -> RecoveryReport:
        """Recover the solver state after the failure of *failed_ranks*.

        Parameters
        ----------
        failed_ranks:
            Ranks that have failed (their nodes must currently be failed).
        iteration:
            The iteration ``j`` whose state is being restored (the SpMV of
            iteration ``j`` has already distributed copies of ``p^(j)``).
        x, r, z, p:
            The solver's distributed state vectors -- or, for a block
            reconstructor (``ESRProtocol(n_cols=k)``), its ``(n, k)``
            multi-vectors; blocks of the failed ranks are rewritten in place
            on the replacement nodes.
        beta_fallback:
            Value of ``beta^(j-1)`` -- a ``(k,)`` coefficient vector for
            block reconstruction -- to use if no replicated copy can be
            found (only relevant in artificial test setups).
        overlap_provider:
            Callable returning ranks that failed *while this reconstruction
            was running*; when it returns a non-empty list the reconstruction
            is restarted with the enlarged failed set.
        """
        ledger = self.cluster.ledger
        start_snapshot = ledger.snapshot()
        wall_start = time.perf_counter()

        pending = sorted(set(int(f) for f in failed_ranks))
        report = RecoveryReport(iteration=iteration, failed_ranks=list(pending))
        report.reconstruction_form = self.reconstruction_form().value

        restarts = 0
        while True:
            self._reconstruct_once(pending, iteration, x, r, z, p,
                                    beta_fallback, report)
            new_failures = list(overlap_provider()) if overlap_provider else []
            if not new_failures:
                break
            restarts += 1
            if restarts > MAX_RECONSTRUCTION_RESTARTS:
                raise UnrecoverableStateError(
                    "reconstruction restarted too many times due to "
                    f"overlapping failures (> {MAX_RECONSTRUCTION_RESTARTS})"
                )
            pending = sorted(set(pending) | set(int(f) for f in new_failures))
            report.notes.append(
                f"overlapping failure of ranks {sorted(new_failures)}; "
                f"reconstruction restarted with failed set {pending}"
            )
            logger.info("overlapping failure during recovery: restarting with %s",
                        pending)

        report.failed_ranks = list(pending)
        report.restarts = restarts
        report.simulated_time = ledger.since(start_snapshot, Phase.RECOVERY_PHASES)
        report.wallclock_time = time.perf_counter() - wall_start
        return report

    # -- single reconstruction pass -----------------------------------------------------------
    def _reconstruct_once(self, failed_ranks: Sequence[int], iteration: int,
                          x: DistributedVector, r: DistributedVector,
                          z: DistributedVector, p: DistributedVector,
                          beta_fallback: float, report: RecoveryReport) -> None:
        cluster = self.cluster
        ledger = cluster.ledger
        partition = self.partition

        # Step 0: install replacement nodes for every rank that is still failed.
        still_failed = [f for f in failed_ranks if cluster.node(f).is_failed]
        if still_failed:
            cluster.ulfm.detect_failures()
            cluster.ulfm.notify_survivors(still_failed)
            cluster.replace_nodes(still_failed)

        failed = sorted(set(int(f) for f in failed_ranks))
        failed_indices = partition.indices_of_set(failed)

        # Step 1: static data from reliable storage (charged to recovery.storage).
        a_rows = self.matrix.recovery_rows(failed, charge=True)
        for rank in failed:
            self.matrix.restore_block_to_node(rank, charge=False)
            rhs_block = cluster.storage.retrieve(
                (self._rhs_storage_name(), rank), charge=True
            )
            self.rhs.restore_block(rank, rhs_block)

        # Step 2/3: replicated scalar(s) and the two most recent search
        # directions.  Block reconstruction recovers the per-column ``(k,)``
        # coefficient vector and ``(n_i, k)`` generation blocks instead; the
        # recurrence below broadcasts per column, so column ``j`` is computed
        # exactly as the single-vector reconstruction would compute it.
        try:
            if self.n_cols is None:
                beta_prev = self.esr.recover_replicated_scalar("beta")
            else:
                beta_prev = self.esr.recover_replicated_vector("beta")
        except UnrecoverableStateError:
            if self.n_cols is None:
                beta_prev = float(beta_fallback)
            else:
                beta_prev = np.broadcast_to(
                    np.asarray(beta_fallback, dtype=np.float64),
                    (self.n_cols,)
                ).astype(np.float64)
            report.notes.append("beta recovered from driver fallback")

        p_cur_blocks: Dict[int, np.ndarray] = {}
        p_prev_blocks: Dict[int, np.ndarray] = {}
        for rank in failed:
            p_cur_blocks[rank] = self.esr.recover_block(rank, iteration)
            if iteration > 0:
                p_prev_blocks[rank] = self.esr.recover_block(rank, iteration - 1)
            else:
                size = partition.size_of(rank)
                p_prev_blocks[rank] = (
                    np.zeros(size) if self.n_cols is None
                    else np.zeros((size, self.n_cols))
                )

        # Step 4: z_{I_f} = p^(j)_{I_f} - beta^(j-1) p^(j-1)_{I_f}
        z_blocks = {
            rank: p_cur_blocks[rank] - beta_prev * p_prev_blocks[rank]
            for rank in failed
        }
        ledger.add_time(
            Phase.RECOVERY_COMPUTE,
            ledger.model.vector_op_time(
                int(failed_indices.size) * self._width(), 2.0
            ),
        )

        # Steps 5-6: reconstruct the residual r_{I_f}.
        r_blocks, local_stats_r = self._reconstruct_residual(
            failed, failed_indices, z_blocks, r, z
        )
        if local_stats_r is not None:
            report.local_solve_stats.append(local_stats_r)

        # Steps 7-8: reconstruct the iterate x_{I_f}.
        x_blocks, local_stats_x = self._reconstruct_iterate(
            failed, failed_indices, a_rows, r_blocks, x
        )
        if local_stats_x is not None:
            report.local_solve_stats.append(local_stats_x)

        # Write everything back onto the replacement nodes (the shared
        # restore path of the distributed containers: defensive copies, same
        # code for single-vector and (n_i, k) multi-vector state).
        for rank in failed:
            p.restore_block(rank, p_cur_blocks[rank])
            z.restore_block(rank, z_blocks[rank])
            r.restore_block(rank, r_blocks[rank])
            x.restore_block(rank, x_blocks[rank])
        # Replicate the recovered scalar on the replacement nodes as well.
        self.esr.store_replicated_scalars(iteration, beta=beta_prev)

    # -- residual reconstruction (preconditioner-form dependent) --------------------------------
    def _reconstruct_residual(self, failed: List[int], failed_indices: np.ndarray,
                              z_blocks: Dict[int, np.ndarray],
                              r: DistributedVector, z: DistributedVector):
        form = self.reconstruction_form()
        partition = self.partition
        z_failed = np.concatenate([z_blocks[rank] for rank in failed]) if failed \
            else self._empty()

        if form is PreconditionerForm.IDENTITY:
            r_failed = z_failed.copy()
            return self._split_to_blocks(failed, r_failed), None

        if form is PreconditionerForm.INVERSE:
            # v = z_{I_f} - P_{I_f, I\I_f} r_{I\I_f};  P_{I_f,I_f} r_{I_f} = v
            p_rows = self.preconditioner.inverse_rows(failed_indices)
            surv_cols = _referenced_columns(p_rows, failed_indices,
                                            survivors_only=True)
            off_diag = p_rows[:, surv_cols].tocsr()
            off_diag.eliminate_zeros()
            r_values = self._gather_survivor_values(r, failed, surv_cols,
                                                    purpose="r")
            v = z_failed - off_diag @ r_values
            p_sub = p_rows[:, failed_indices]
            solver = LocalSubsystemSolver(self.local_solver_method,
                                          rtol=self.local_rtol)
            r_failed = self._local_solve(solver, p_sub, v)
            self._charge_local_solve(solver)
            return self._split_to_blocks(failed, r_failed), solver.last_stats

        # FORWARD (and SPLIT, which reduces to it): r_{I_f} = M_{I_f, I} z.
        # One compressed matvec over all referenced columns: survivor values
        # are gathered through the index maps, the failed part comes from the
        # freshly reconstructed z_{I_f}.  For block reconstruction the
        # operand is a (cols, k) slab and the product one CSR x dense-block
        # kernel (per-column bit-identical to the single-vector matvec).
        m_rows = self.preconditioner.forward_rows(failed_indices)
        cols = _referenced_columns(m_rows, failed_indices)
        is_failed_col = np.isin(cols, failed_indices)
        z_values = np.zeros((cols.size,) if self.n_cols is None
                            else (cols.size, self.n_cols))
        z_values[~is_failed_col] = self._gather_survivor_values(
            z, failed, cols[~is_failed_col], purpose="z"
        )
        z_values[is_failed_col] = z_failed[
            np.searchsorted(failed_indices, cols[is_failed_col])
        ]
        r_failed = m_rows[:, cols].tocsr() @ z_values
        self.cluster.ledger.add_time(
            Phase.RECOVERY_COMPUTE,
            self.cluster.ledger.model.spmv_time(
                int(m_rows.nnz) * self._width()
            ),
        )
        return self._split_to_blocks(failed, r_failed), None

    # -- iterate reconstruction -------------------------------------------------------------------
    def _reconstruct_iterate(self, failed: List[int], failed_indices: np.ndarray,
                             a_rows: sp.csr_matrix,
                             r_blocks: Dict[int, np.ndarray],
                             x: DistributedVector):
        partition = self.partition
        b_failed = np.concatenate([
            self.rhs.get_block(rank) for rank in failed
        ]) if failed else self._empty()
        r_failed = np.concatenate([r_blocks[rank] for rank in failed]) if failed \
            else self._empty()

        surv_cols = _referenced_columns(a_rows, failed_indices,
                                        survivors_only=True)
        off_diag = a_rows[:, surv_cols].tocsr()
        off_diag.eliminate_zeros()
        x_values = self._gather_survivor_values(x, failed, surv_cols,
                                                purpose="x")
        w = b_failed - r_failed - off_diag @ x_values
        self.cluster.ledger.add_time(
            Phase.RECOVERY_COMPUTE,
            self.cluster.ledger.model.spmv_time(
                int(off_diag.nnz) * self._width()
            ),
        )

        a_sub = a_rows[:, failed_indices]
        solver = LocalSubsystemSolver(self.local_solver_method,
                                      rtol=self.local_rtol)
        x_failed = self._local_solve(solver, a_sub, w)
        self._charge_local_solve(solver)
        return self._split_to_blocks(failed, x_failed), solver.last_stats

    # -- helpers ----------------------------------------------------------------------------------------
    def _width(self) -> int:
        """Column count entering the block charge model (1 for vectors)."""
        return 1 if self.n_cols is None else self.n_cols

    def _empty(self) -> np.ndarray:
        """An empty operand of the reconstructor's shape family."""
        return np.zeros(0) if self.n_cols is None \
            else np.zeros((0, self.n_cols))

    def _local_solve(self, solver: LocalSubsystemSolver, matrix,
                     rhs: np.ndarray) -> np.ndarray:
        """Single- or multi-RHS local solve, dispatched on the operand shape.

        The block path shares one factorization across the columns
        (:meth:`LocalSubsystemSolver.solve_block`) while keeping each
        column's solution bit-identical to a standalone solve.
        """
        if rhs.ndim == 2:
            return solver.solve_block(matrix, rhs)
        return solver.solve(matrix, rhs)

    def _split_to_blocks(self, failed: List[int], concatenated: np.ndarray
                         ) -> Dict[int, np.ndarray]:
        """Split a vector over ``I_f`` (sorted rank order) into per-rank blocks."""
        blocks: Dict[int, np.ndarray] = {}
        offset = 0
        for rank in failed:
            size = self.partition.size_of(rank)
            blocks[rank] = np.array(concatenated[offset:offset + size], copy=True)
            offset += size
        return blocks

    def _gather_survivor_values(self, vector: DistributedVector,
                                failed: List[int], columns: np.ndarray,
                                purpose: str) -> np.ndarray:
        """Survivor-owned entries of *vector* at the global indices *columns*.

        This is the vectorized reverse scatter: instead of assembling a dense
        global zero vector per recovery, only the entries the reconstruction
        actually references (*columns*, sorted and survivor-owned) are
        gathered block-by-block through the same compressed index maps the
        SpMV engine uses.  The communication of the surviving entries to the
        replacement nodes is charged per (survivor -> replacement) message,
        with message sizes given by the SpMV scatter pattern (exactly as in
        the paper's reverse-scatter implementation, Sec. 6).
        """
        partition = self.partition
        ledger = self.cluster.ledger
        width = self._width()
        out = np.empty((columns.size,) if self.n_cols is None
                       else (columns.size, self.n_cols))
        if columns.size:
            owners = partition.owner_of(columns)
            uniq, starts = np.unique(owners, return_index=True)
            bounds = np.append(starts, columns.size)
            for j, rank in enumerate(uniq):
                rank = int(rank)
                lo, hi = int(bounds[j]), int(bounds[j + 1])
                start, _ = partition.range_of(rank)
                out[lo:hi] = vector.get_block(rank)[columns[lo:hi] - start]
        # Charge the gather: each surviving sender ships the elements the failed
        # rows reference (the reverse of the SpMV scatter towards the failed
        # rank); block gathers ship all k columns in the same message.
        for dst in failed:
            for src in self.context.senders_to(dst):
                if src in failed:
                    continue
                count = self.context.send_count(src, dst)
                if count == 0:
                    continue
                latency = self.cluster.topology.latency(src, dst)
                ledger.add_time(Phase.RECOVERY_COMM,
                                ledger.model.message_time(latency,
                                                          count * width))
                ledger.add_traffic(Phase.RECOVERY_COMM, 1, count * width)
        return out

    def _charge_local_solve(self, solver: LocalSubsystemSolver) -> None:
        ledger = self.cluster.ledger
        ledger.add_time(
            Phase.RECOVERY_COMPUTE,
            solver.work_flops() / ledger.model.spmv_flop_rate,
        )


def _referenced_columns(rows: sp.csr_matrix, failed_indices: np.ndarray,
                        *, survivors_only: bool = False) -> np.ndarray:
    """Sorted global column indices with stored entries in *rows*.

    With ``survivors_only`` the (sorted) ``failed_indices`` are excluded, so
    the result is exactly the compressed index set a reverse scatter has to
    gather from surviving nodes.
    """
    cols = np.unique(rows.indices.astype(np.int64))
    if not survivors_only or failed_indices.size == 0 or cols.size == 0:
        return cols
    return cols[~np.isin(cols, failed_indices)]
