"""Reed-Solomon parity redundancy: ``m`` failures at ``m/g`` storage overhead.

The ``"copies"`` scheme of :mod:`repro.core.redundancy` keeps ``phi`` full
off-node copies of every search-direction block -- a 1x storage and traffic
overhead per tolerated failure.  Erasure coding buys the same tolerance far
cheaper: group ``g`` owner blocks into a stripe, add ``m = phi`` parity
blocks held on nodes *outside* the stripe, and any ``m`` simultaneous
in-group losses are decodable from the ``g`` surviving units (CR-SIM's
``RS.repair``: ``g`` blocks downloaded per repair).  The stored redundancy
drops from ``phi * n`` to roughly ``n + (m/g) * n`` elements and the
per-iteration redundancy traffic to ``m`` parity blocks per group.

**Stripes.**  The owners are laid out in the rack-striding order also used
by the ``"copyset"`` placement (first one rank per rack, then the second
rank of every rack, ...) and chopped into consecutive groups of
``group_size`` data blocks -- consecutive entries live in distinct racks,
so one correlated rack burst hits each stripe at most ``ceil(g/racks)``
times.  The ``m`` parity holders of a stripe are chosen by the configured
placement strategy (seeded ``rng`` supported) from the ranks outside the
stripe.

**Coding.**  Parity is computed over the *bytes* of the staged float64
blocks in GF(2^8) (primitive polynomial ``0x11d``) with a Cauchy
coefficient matrix ``C[j][i] = 1 / (x_j XOR y_i)`` -- data unit ``i`` of a
stripe gets the field identifier ``y_i = i``, parity unit ``j`` gets
``x_j = g + j``, deterministically, so encode/decode are bit-exact and
reproducible across runs.  Every square submatrix of a Cauchy matrix is
invertible, hence *any* ``f <= m`` missing data blocks are recoverable from
any ``f`` parity rows.  Byte-level XOR arithmetic makes the recovered
float64 blocks **bit-identical** to the originals -- the property the exact
state reconstruction needs.

**Charge model** (the Sec. 4.2 contract, ``m/g``-scaled): per iteration the
scheme ships one parity block per stripe per round (``m`` rounds), charged
``latency(lead, holder_j) + padded_g * n_cols * mu`` per group and round --
the XOR-combine of the ``g`` member contributions is modelled as a
pipelined in-group reduction whose final hop (one parity block of
``padded_g`` rows) dominates, i.e. ``m/g`` of the stripe volume per data
block.  Repair downloads ``g`` units (CR-SIM's ``repair`` cost) and is
charged by the protocol's recovery path.  The owners' own generation
snapshots are node-local (no traffic).  The bounds sandwich
``lower <= per-iteration time <= upper`` holds for every topology and
column count (pinned by the property tests).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..cluster.network import Topology
from ..distributed.comm_context import CommunicationContext
from ..distributed.partition import BlockRowPartition
from ..utils.rng import RandomState
from .placement import BackupPlacement, PlacementLike, RackLayout, resolve_placement
from .redundancy import (
    RedundancySchemeBase,
    backup_targets,
    register_redundancy_scheme,
)

__all__ = ["RSParityScheme", "gf256_mul"]

#: Default number of data blocks per parity stripe.
DEFAULT_GROUP_SIZE = 4

_PRIMITIVE_POLY = 0x11D


def _build_gf_tables() -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """EXP/LOG/INV/MUL tables of GF(2^8) with primitive polynomial 0x11d."""
    exp = np.zeros(512, dtype=np.int64)
    log = np.zeros(256, dtype=np.int64)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    exp[255:510] = exp[:255]
    inv = np.zeros(256, dtype=np.uint8)
    inv[1:] = exp[255 - log[np.arange(1, 256)]]
    a = np.arange(256)
    mul = np.zeros((256, 256), dtype=np.uint8)
    nz = a[1:]
    mul[1:, 1:] = exp[(log[nz][:, None] + log[nz][None, :]) % 255]
    return exp.astype(np.uint8), log.astype(np.uint8), inv, mul

_GF_EXP, _GF_LOG, _GF_INV, _GF_MUL = _build_gf_tables()


def gf256_mul(a: int, b: int) -> int:
    """Scalar GF(2^8) product (table lookup); exposed for the tests."""
    return int(_GF_MUL[a & 0xFF, b & 0xFF])


def _to_padded_bytes(block: np.ndarray, n_bytes: int) -> np.ndarray:
    """The float64 bytes of *block*, zero-padded to *n_bytes*."""
    raw = np.frombuffer(
        np.ascontiguousarray(block, dtype=np.float64).tobytes(),
        dtype=np.uint8,
    )
    if raw.size > n_bytes:
        raise ValueError(
            f"block of {raw.size} bytes exceeds the stripe's padded "
            f"length {n_bytes}"
        )
    padded = np.zeros(n_bytes, dtype=np.uint8)
    padded[:raw.size] = raw
    return padded


@register_redundancy_scheme(
    "rs_parity",
    "Reed-Solomon parity stripes: any m = phi in-group failures at m/g "
    "storage overhead")
class RSParityScheme(RedundancySchemeBase):
    """Erasure-coded redundancy: rack-spanning RS(g + m, g) parity stripes.

    Parameters
    ----------
    context, phi:
        As for :class:`~repro.core.redundancy.RedundancyScheme`; ``phi`` is
        the number of parity blocks ``m`` per stripe, i.e. the number of
        simultaneous in-group failures survived.
    placement:
        Strategy choosing each stripe's parity holders (from the ranks
        outside the stripe); the paper placement by default.
    rng:
        Seeds the ``"random"`` placement's holder choice.
    rack_size:
        Failure-domain layout fed to the rack-striding stripe order and the
        rack-aware placements.
    group_size:
        Data blocks per stripe (default 4), clamped to ``n_nodes - phi`` so
        every stripe keeps ``m`` off-stripe holder candidates.
    """

    kind = "parity"

    def __init__(self, context: CommunicationContext, phi: int, *,
                 placement: PlacementLike = BackupPlacement.PAPER,
                 rng: Optional[RandomState] = None,
                 rack_size: Optional[int] = None,
                 group_size: int = DEFAULT_GROUP_SIZE):
        if phi < 0:
            raise ValueError(f"phi must be non-negative, got {phi}")
        self.context = context
        self.partition: BlockRowPartition = context.partition
        self.phi = int(phi)
        self.m = self.phi
        self.placement = resolve_placement(placement)
        n_nodes = self.partition.n_parts
        if phi >= n_nodes:
            raise ValueError(
                f"phi={phi} requires at least phi+1={phi + 1} nodes, "
                f"but the cluster has {n_nodes}"
            )
        if int(group_size) < 1:
            raise ValueError(f"group_size must be positive, got {group_size}")
        self.racks = RackLayout.default(n_nodes, rack_size)
        self._rng = rng
        #: Stripe width, clamped so every stripe has >= m off-stripe ranks.
        self.group_size = min(int(group_size), max(1, n_nodes - self.m))
        if self.group_size + self.m > 256:
            raise ValueError(
                f"GF(2^8) coding supports at most 256 units per stripe, got "
                f"g={self.group_size} data + m={self.m} parity"
            )
        # Rack-striding owner order (the "copyset" order): consecutive
        # entries live in distinct racks, so each stripe spans racks.
        order = sorted(
            range(n_nodes),
            key=lambda r: (self.racks.position_in_rack(r),
                           self.racks.rack_of(r)),
        )
        self._groups: List[Tuple[int, ...]] = [
            tuple(order[lo:lo + self.group_size])
            for lo in range(0, n_nodes, self.group_size)
        ]
        self._group_of: Dict[int, int] = {}
        for gidx, members in enumerate(self._groups):
            for rank in members:
                self._group_of[rank] = gidx
        self._holders: List[Tuple[int, ...]] = [
            self._choose_holders(members) for members in self._groups
        ]
        #: Per stripe: the padded row count every coded unit is sized to.
        self._padded_rows: List[int] = [
            max(self.partition.size_of(rank) for rank in members)
            for members in self._groups
        ]

    def _choose_holders(self, members: Tuple[int, ...]) -> Tuple[int, ...]:
        """The stripe's ``m`` parity holders: placement-preferred, off-stripe."""
        if self.m == 0:
            return ()
        n_nodes = self.partition.n_parts
        lead = members[0]
        preference = backup_targets(lead, n_nodes - 1, n_nodes,
                                    self.placement, rng=self._rng,
                                    racks=self.racks)
        member_set = set(members)
        holders = [rank for rank in preference if rank not in member_set]
        if len(holders) < self.m:
            raise ValueError(
                f"stripe {sorted(members)} has only {len(holders)} off-stripe "
                f"holder candidates for m={self.m} parity blocks "
                f"(N={n_nodes})"
            )
        return tuple(holders[:self.m])

    # -- stripe layout queries ---------------------------------------------------
    @property
    def n_groups(self) -> int:
        return len(self._groups)

    def group_of(self, rank: int) -> int:
        """Stripe index of *rank*."""
        return self._group_of[rank]

    def group_members(self, gidx: int) -> Tuple[int, ...]:
        """Data-block owner ranks of stripe *gidx* (coding-unit order)."""
        return self._groups[gidx]

    def group_holders(self, gidx: int) -> Tuple[int, ...]:
        """Parity-holder ranks of stripe *gidx* (one per parity unit)."""
        return self._holders[gidx]

    def padded_rows(self, gidx: int) -> int:
        """Rows every coded unit of stripe *gidx* is zero-padded to."""
        return self._padded_rows[gidx]

    def verify_invariant(self) -> bool:
        """True if every stripe has ``m`` distinct off-stripe parity holders."""
        for gidx, members in enumerate(self._groups):
            holders = self._holders[gidx]
            if len(holders) != self.m or len(set(holders)) != len(holders):
                return False
            if set(holders) & set(members):
                return False
        return True

    # -- coding -------------------------------------------------------------------
    def _coeff(self, gidx: int, parity_j: int, pos: int) -> int:
        """Cauchy coefficient of data unit *pos* in parity row *parity_j*."""
        g_len = len(self._groups[gidx])
        return int(_GF_INV[(g_len + parity_j) ^ pos])

    def _padded_nbytes(self, gidx: int, row_width: int) -> int:
        return self._padded_rows[gidx] * 8 * int(row_width)

    def encode(self, gidx: int, blocks: List[np.ndarray]) -> List[np.ndarray]:
        """The ``m`` parity byte-rows of stripe *gidx* over *blocks*.

        *blocks* are the members' float64 blocks in :meth:`group_members`
        order (``(rows,)`` vectors or ``(rows, k)`` multi-vector blocks);
        each parity row is a ``padded_rows * 8 * k`` byte array.
        """
        members = self._groups[gidx]
        if len(blocks) != len(members):
            raise ValueError(
                f"stripe {gidx} has {len(members)} members but got "
                f"{len(blocks)} blocks"
            )
        if self.m == 0:
            return []
        row_width = 1 if blocks[0].ndim == 1 else int(blocks[0].shape[1])
        n_bytes = self._padded_nbytes(gidx, row_width)
        data = [_to_padded_bytes(block, n_bytes) for block in blocks]
        rows: List[np.ndarray] = []
        for j in range(self.m):
            acc = np.zeros(n_bytes, dtype=np.uint8)
            for pos, unit in enumerate(data):
                acc ^= _GF_MUL[self._coeff(gidx, j, pos)][unit]
            rows.append(acc)
        return rows

    def decode(self, gidx: int, have: Mapping[int, np.ndarray],
               parity_rows: Mapping[int, np.ndarray],
               n_cols: Optional[int] = None) -> Dict[int, np.ndarray]:
        """Recover the missing member blocks of stripe *gidx*.

        *have* maps surviving member ranks to their blocks, *parity_rows*
        maps parity-unit indices to surviving parity byte-rows; any
        ``f = len(missing)`` parity rows suffice (Cauchy submatrices are
        invertible).  Returns ``{rank: block}`` for the missing members,
        bit-identical to the encoded originals.
        """
        members = self._groups[gidx]
        missing = [rank for rank in members if rank not in have]
        if not missing:
            return {}
        rows_avail = sorted(parity_rows)
        if len(rows_avail) < len(missing):
            raise ValueError(
                f"stripe {gidx}: {len(missing)} members missing but only "
                f"{len(rows_avail)} parity rows survive"
            )
        use = rows_avail[:len(missing)]
        row_width = 1 if n_cols is None else int(n_cols)
        n_bytes = self._padded_nbytes(gidx, row_width)

        # rhs_j = parity_j XOR (contributions of the surviving members)
        rhs: List[np.ndarray] = []
        for j in use:
            acc = np.array(parity_rows[j], dtype=np.uint8, copy=True)
            if acc.size != n_bytes:
                raise ValueError(
                    f"stripe {gidx}: parity row {j} has {acc.size} bytes, "
                    f"expected {n_bytes}"
                )
            for pos, rank in enumerate(members):
                if rank in have:
                    unit = _to_padded_bytes(have[rank], n_bytes)
                    acc ^= _GF_MUL[self._coeff(gidx, j, pos)][unit]
            rhs.append(acc)

        # Solve the f x f Cauchy subsystem by Gaussian elimination over
        # GF(2^8), applied to the byte vectors.
        pos_of = {rank: members.index(rank) for rank in missing}
        matrix = [
            [self._coeff(gidx, j, pos_of[rank]) for rank in missing]
            for j in use
        ]
        f = len(missing)
        for col in range(f):
            piv = next(r for r in range(col, f) if matrix[r][col])
            matrix[col], matrix[piv] = matrix[piv], matrix[col]
            rhs[col], rhs[piv] = rhs[piv], rhs[col]
            inv = int(_GF_INV[matrix[col][col]])
            matrix[col] = [gf256_mul(inv, a) for a in matrix[col]]
            rhs[col] = _GF_MUL[inv][rhs[col]]
            for r in range(f):
                if r != col and matrix[r][col]:
                    c = matrix[r][col]
                    matrix[r] = [a ^ gf256_mul(c, b)
                                 for a, b in zip(matrix[r], matrix[col])]
                    rhs[r] = rhs[r] ^ _GF_MUL[c][rhs[col]]

        decoded: Dict[int, np.ndarray] = {}
        for rank, byte_vec in zip(missing, rhs):
            size = self.partition.size_of(rank)
            used = size * 8 * row_width
            values = np.frombuffer(byte_vec[:used].tobytes(),
                                   dtype=np.float64).copy()
            decoded[rank] = (values if n_cols is None
                             else values.reshape(size, int(n_cols)))
        return decoded

    # -- charge model (Sec. 4.2, m/g-scaled) --------------------------------------
    def round_overhead_times(self, topology: Topology, model: Any,
                             n_cols: int = 1) -> List[float]:
        """Per-round overhead ``max_g (lambda(lead_g, holder_gj) + padded_g k mu)``.

        Round ``j`` ships stripe ``g``'s parity block ``j`` (the final hop
        of the in-group XOR combine) to its holder; parity never piggybacks
        on an SpMV message, so the latency is always paid.  Volume scales
        with the column count exactly as the copies scheme's extras do.
        """
        mu = model.element_transfer_time
        times: List[float] = []
        for j in range(self.m):
            worst = 0.0
            for gidx, members in enumerate(self._groups):
                holder = self._holders[gidx][j]
                latency = topology.latency(members[0], holder)
                cost = latency + self._padded_rows[gidx] * n_cols * mu
                worst = max(worst, cost)
            times.append(worst)
        return times

    def overhead_bounds(self, topology: Topology, model: Any,
                        n_cols: int = 1) -> Tuple[float, float]:
        """``[max_g m padded_g mu k, phi (lambda_max + ceil(n/N) mu k)]``.

        The lower bound is the latency-free volume of the widest stripe's
        parity, the upper bound is the copies scheme's (padded stripe rows
        never exceed the largest block), so the sandwich
        ``lower <= per-iteration time <= upper`` holds structurally.
        """
        mu = model.element_transfer_time * n_cols
        lower = max(
            (self.m * rows for rows in self._padded_rows), default=0
        ) * mu
        upper = self.phi * (
            topology.max_latency() + self.partition.max_block_size() * mu
        )
        return float(lower), float(upper)

    def extra_traffic_per_iteration(self, n_cols: int = 1) -> Tuple[int, int]:
        """``m`` parity messages per stripe, ``padded_g * k`` elements each."""
        messages = self.m * self.n_groups
        elements = self.m * sum(self._padded_rows) * int(n_cols)
        return messages, elements

    def redundant_elements_per_generation(self, n_cols: int = 1) -> int:
        """Owner-local snapshots (``n``) plus ``m`` padded parity rows per stripe.

        Parity rows are byte-coded but sized in float64-element equivalents
        (``padded_rows * k``), so the number is directly comparable to the
        copies scheme's held-pattern elements.
        """
        snapshots = self.partition.n
        parity = self.m * sum(self._padded_rows)
        return (snapshots + parity) * int(n_cols)

    def describe(self) -> str:
        return (
            f"RSParityScheme(m={self.m}, group_size={self.group_size}, "
            f"n_groups={self.n_groups}, placement={self.placement.value})"
        )
