"""The paper's core contribution: ESR-resilient PCG for multiple node failures."""

from .api import (
    DistributedProblem,
    build_failure_events,
    distribute_problem,
    reference_solve,
    resilient_solve,
    solve,
    solve_with_failures,
)
from .registry import SOLVERS, SolverRegistry, register_solver
from .spec import BlockSpec, ResilienceSpec, SolveSpec
from .block_pcg import BlockPCG, BlockSolveResult
from .esr import ESRProtocol
from .metrics import (
    ConvergenceComparison,
    compare_runs,
    convergence_rate_estimate,
    iterations_to_tolerance,
    max_residual_difference,
    relative_residual_difference,
    residual_difference_of,
    state_difference,
)
from .pcg import DistributedPCG, DistributedSolveResult
from .placement import (
    PLACEMENTS,
    PlacementRegistry,
    PlacementStrategy,
    RackLayout,
    register_placement,
    resolve_placement,
)
from .reconstruction import ESRReconstructor, RecoveryReport
from .redundancy import (
    REDUNDANCY_SCHEMES,
    BackupPlacement,
    OwnerRedundancy,
    RedundancyScheme,
    RedundancySchemeBase,
    RedundancySchemeRegistry,
    backup_targets,
    build_redundancy_scheme,
    paper_backup_target,
    register_redundancy_scheme,
)
from .rs_parity import RSParityScheme
from .resilient_block_pcg import ResilientBlockPCG
from .resilient_pcg import ResilientPCG

__all__ = [
    "BlockPCG",
    "BlockSolveResult",
    "DistributedPCG",
    "DistributedSolveResult",
    "ResilientPCG",
    "ResilientBlockPCG",
    "ESRProtocol",
    "ESRReconstructor",
    "RecoveryReport",
    "RedundancyScheme",
    "RedundancySchemeBase",
    "RedundancySchemeRegistry",
    "REDUNDANCY_SCHEMES",
    "RSParityScheme",
    "register_redundancy_scheme",
    "build_redundancy_scheme",
    "OwnerRedundancy",
    "BackupPlacement",
    "backup_targets",
    "paper_backup_target",
    "PLACEMENTS",
    "PlacementRegistry",
    "PlacementStrategy",
    "RackLayout",
    "register_placement",
    "resolve_placement",
    "DistributedProblem",
    "distribute_problem",
    "solve",
    "SolveSpec",
    "ResilienceSpec",
    "BlockSpec",
    "SOLVERS",
    "SolverRegistry",
    "register_solver",
    "reference_solve",
    "resilient_solve",
    "solve_with_failures",
    "build_failure_events",
    "relative_residual_difference",
    "residual_difference_of",
    "max_residual_difference",
    "compare_runs",
    "ConvergenceComparison",
    "convergence_rate_estimate",
    "iterations_to_tolerance",
    "state_difference",
]
