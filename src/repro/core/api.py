"""High-level API: one ``repro.solve()`` entry point behind a solver registry.

The substrates are wired together declaratively: a
:class:`~repro.core.spec.SolveSpec` (plus optional
:class:`~repro.core.spec.ResilienceSpec` / :class:`~repro.core.spec.BlockSpec`
extensions) describes the solve, the :mod:`~repro.core.registry` maps its
solver name to a solver class, and :func:`solve` normalises the input --
a raw SciPy matrix is distributed over a fresh virtual cluster, an ``(n, k)``
right-hand-side block becomes a
:class:`~repro.distributed.dmultivector.DistributedMultiVector` dispatched to
the block solver -- resolves the preconditioner once per problem (cached on
the :class:`DistributedProblem`, invalidated via the matrix's
``structure_version``), and runs the solver.

>>> import repro
>>> a = repro.matrices.poisson_2d(32)
>>> problem = repro.distribute_problem(a, n_nodes=8)
>>> result = repro.solve(problem, spec=repro.SolveSpec(
...     resilience=repro.ResilienceSpec(phi=3, failures=[(20, [2, 3, 4])]),
... ))
>>> result.converged
True

The extensions compose: the same ``ResilienceSpec`` next to an ``(n, k)``
right-hand-side block (or an explicit ``BlockSpec``) dispatches to the
resilient multi-RHS block solver
(:class:`~repro.core.resilient_block_pcg.ResilientBlockPCG`), so every
solver reachable through this façade survives node failures.

Keyword overrides are routed into the spec (``repro.solve(problem, phi=3,
failures=[(20, [2])])`` is the short form of the above), so quick scripts
never have to spell the dataclasses out.

The pre-registry helpers ``reference_solve`` / ``resilient_solve`` /
``solve_with_failures`` survive as deprecated shims that delegate to
:func:`solve` with bit-identical results and ledger charges.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..cluster.cluster import VirtualCluster
from ..cluster.cost_model import MachineModel
from ..cluster.failure import FailureEvent
from ..cluster.network import Topology
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix
from ..distributed.dmultivector import DistributedMultiVector
from ..distributed.dvector import DistributedVector
from ..distributed.partition import BlockRowPartition
from ..precond.base import Preconditioner
from ..precond.factory import make_preconditioner
from .block_pcg import BlockSolveResult
from .pcg import DistributedSolveResult
from .redundancy import BackupPlacement
from .registry import SOLVERS, SolverRegistry, register_solver
from .spec import BlockSpec, ResilienceSpec, SolveSpec, build_failure_events

__all__ = [
    "DistributedProblem",
    "distribute_problem",
    "solve",
    "SolveSpec",
    "ResilienceSpec",
    "BlockSpec",
    "SOLVERS",
    "SolverRegistry",
    "register_solver",
    "build_failure_events",
    "reference_solve",
    "resilient_solve",
    "solve_with_failures",
]

#: ``solve`` keyword arguments consumed by problem construction (only legal
#: when a raw matrix is passed), not by the :class:`SolveSpec`.
_CLUSTER_KEYS = ("n_nodes", "machine", "topology", "seed", "cluster")


@dataclass
class DistributedProblem:
    """A linear system distributed over a virtual cluster.

    Besides the distributed operands the problem caches two derived objects
    keyed by the matrix's ``structure_version`` (bumped on every row-block
    write, e.g. when recovery restores blocks):

    * :meth:`global_operator` -- the assembled global CSR matrix, so repeated
      solves stop paying an ``O(nnz)`` gather per call;
    * :meth:`resolve_preconditioner` -- set-up preconditioner instances per
      ``(name, options)``, so one problem re-uses one block-Jacobi
      factorization across its solves.
    """

    cluster: VirtualCluster
    partition: BlockRowPartition
    matrix: DistributedMatrix
    rhs: DistributedVector
    context: CommunicationContext

    #: Cached ``matrix.to_global()`` (+ the structure version it was built at).
    _operator_cache: Optional[sp.csr_matrix] = field(
        default=None, init=False, repr=False, compare=False)
    _operator_version: int = field(default=-1, init=False, repr=False,
                                   compare=False)
    #: ``(name, options) -> set-up preconditioner`` for the cached version.
    _precond_cache: Dict[tuple, Preconditioner] = field(
        default_factory=dict, init=False, repr=False, compare=False)
    _precond_version: int = field(default=-1, init=False, repr=False,
                                  compare=False)

    @property
    def n(self) -> int:
        return self.partition.n

    @property
    def n_nodes(self) -> int:
        return self.partition.n_parts

    # -- cached derived objects ------------------------------------------------
    def global_operator(self) -> sp.csr_matrix:
        """The assembled global matrix, cached until a row block is rewritten."""
        version = self.matrix.structure_version
        if self._operator_cache is None or self._operator_version != version:
            self._operator_cache = self.matrix.to_global()
            self._operator_version = version
        return self._operator_cache

    def resolve_preconditioner(
            self, preconditioner: Union[None, str, Preconditioner] = None,
            **options: Any) -> Preconditioner:
        """A set-up preconditioner for this problem.

        Instances are set up (against the cached :meth:`global_operator`) and
        returned as-is; names are built via
        :func:`~repro.precond.factory.make_preconditioner` once per
        ``(name, options)`` and cached until the matrix structure changes.
        """
        if isinstance(preconditioner, Preconditioner):
            if not preconditioner.is_set_up:
                preconditioner.setup(self.global_operator(), self.partition)
            return preconditioner
        name = "block_jacobi" if preconditioner is None else str(preconditioner)
        version = self.matrix.structure_version
        if self._precond_version != version:
            self._precond_cache.clear()
            self._precond_version = version
        key = (name.lower(), tuple(sorted(options.items())))
        cached = self._precond_cache.get(key)
        if cached is None:
            cached = make_preconditioner(name, **options)
            cached.setup(self.global_operator(), self.partition)
            self._precond_cache[key] = cached
        return cached


def distribute_problem(matrix: Any, rhs: Optional[np.ndarray] = None, *,
                       n_nodes: int = 8,
                       machine: Optional[MachineModel] = None,
                       topology: Optional[Topology] = None,
                       seed: Optional[int] = None,
                       cluster: Optional[VirtualCluster] = None
                       ) -> DistributedProblem:
    """Distribute ``A x = b`` over a (new or existing) virtual cluster.

    Parameters
    ----------
    matrix:
        Global SPD matrix (any SciPy sparse format or dense array).
    rhs:
        Right-hand side; defaults to ``A @ ones`` so the exact solution is the
        all-ones vector (handy for verification).
    n_nodes:
        Number of virtual compute nodes (ignored if *cluster* is given).
    machine, topology, seed:
        Forwarded to :class:`~repro.cluster.cluster.VirtualCluster`.
    cluster:
        Reuse an existing cluster instead of creating one.
    """
    a = sp.csr_matrix(matrix)
    n = a.shape[0]
    if rhs is None:
        rhs = a @ np.ones(n)
    rhs = np.asarray(rhs, dtype=np.float64)
    if cluster is None:
        cluster = VirtualCluster(n_nodes, machine=machine, topology=topology,
                                 seed=seed)
    partition = BlockRowPartition(n, cluster.n_nodes)
    a_dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    b_dist = DistributedVector.from_global(cluster, partition, "b", rhs)
    context = CommunicationContext.from_matrix(a_dist)
    return DistributedProblem(cluster, partition, a_dist, b_dist, context)


def _normalize_rhs(problem: DistributedProblem, rhs: Any
                   ) -> Union[DistributedVector, DistributedMultiVector]:
    """Turn *rhs* into a distributed (multi-)vector on *problem*'s cluster."""
    if rhs is None:
        return problem.rhs
    if isinstance(rhs, (DistributedVector, DistributedMultiVector)):
        if rhs.cluster is not problem.cluster:
            raise ValueError("rhs lives on a different cluster than the problem")
        if not problem.partition.is_compatible_with(rhs.partition):
            raise ValueError("rhs has a partition incompatible with the problem")
        return rhs
    values = np.asarray(rhs, dtype=np.float64)
    if values.ndim == 1:
        return DistributedVector.from_global(
            problem.cluster, problem.partition, "solve:b", values)
    if values.ndim == 2:
        return DistributedMultiVector.from_global(
            problem.cluster, problem.partition, "solve:B", values)
    raise ValueError(f"rhs must be 1-D or (n, k) 2-D, got shape {values.shape}")


def solve(problem: Any, rhs: Any = None, spec: Optional[SolveSpec] = None,
          **overrides: Any
          ) -> Union[DistributedSolveResult, BlockSolveResult]:
    """Solve ``A x = b`` (or ``A X = B``) as described by a :class:`SolveSpec`.

    Parameters
    ----------
    problem:
        A :class:`DistributedProblem`, or a raw global matrix (any SciPy
        sparse format / dense array) that is distributed first.  With a raw
        matrix the cluster options ``n_nodes``, ``machine``, ``topology``,
        ``seed`` and ``cluster`` may be passed as keyword arguments (they are
        forwarded to :func:`distribute_problem`).
    rhs:
        Right-hand side(s): ``None`` (the problem's stored rhs, or ``A @
        ones`` for a raw matrix), a global 1-D array, a global ``(n, k)``
        array (dispatched to the block solver), or an already-distributed
        (multi-)vector on the problem's cluster.
    spec:
        The declarative configuration; defaults to ``SolveSpec()`` (plain
        PCG, block Jacobi, ``rtol=1e-8``).
    **overrides:
        Spec-field overrides applied via :meth:`SolveSpec.with_overrides` --
        including extension fields such as ``phi``, ``failures`` or
        ``fuse_reductions`` -- plus the cluster options above.

    Returns
    -------
    :class:`~repro.core.pcg.DistributedSolveResult` for single-RHS solvers,
    :class:`~repro.core.block_pcg.BlockSolveResult` for the block solver.
    """
    cluster_kwargs = {k: overrides.pop(k) for k in _CLUSTER_KEYS
                      if k in overrides}
    spec = spec if spec is not None else SolveSpec()
    if overrides:
        spec = spec.with_overrides(**overrides)

    if isinstance(problem, DistributedProblem):
        if cluster_kwargs:
            raise ValueError(
                f"cluster options {sorted(cluster_kwargs)} only apply when a "
                "raw matrix is passed; the problem's cluster is reused"
            )
        rhs_obj = _normalize_rhs(problem, rhs)
    else:
        values = None if rhs is None else np.asarray(rhs, dtype=np.float64)
        if values is not None and values.ndim == 2:
            # The problem's single-rhs slot is unused on the block path;
            # zeros skip the default ``A @ ones`` SpMV.
            problem = distribute_problem(
                problem, np.zeros(values.shape[0]), **cluster_kwargs)
            rhs_obj = DistributedMultiVector.from_global(
                problem.cluster, problem.partition, "solve:B", values)
        else:
            problem = distribute_problem(problem, values, **cluster_kwargs)
            rhs_obj = problem.rhs

    solver_name = spec.resolved_solver(
        multi_rhs=isinstance(rhs_obj, DistributedMultiVector))
    preconditioner = problem.resolve_preconditioner(
        spec.preconditioner, **spec.preconditioner_options)
    solver = SOLVERS.build(solver_name, problem, rhs_obj, preconditioner, spec)
    return solver.solve()


# ---------------------------------------------------------------------------
# deprecated pre-registry helpers (thin shims over ``solve``)
# ---------------------------------------------------------------------------

def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.{old}() is deprecated; use {new} instead",
        DeprecationWarning, stacklevel=3,
    )


def reference_solve(problem: DistributedProblem, *,
                    preconditioner: Union[None, str, Preconditioner] = None,
                    rtol: float = 1e-8,
                    max_iterations: Optional[int] = None
                    ) -> DistributedSolveResult:
    """Deprecated: use ``repro.solve(problem, spec=SolveSpec(solver='pcg'))``."""
    _warn_deprecated("reference_solve", "repro.solve(problem, ...)")
    return solve(problem, spec=SolveSpec(
        solver="pcg", rtol=rtol, max_iterations=max_iterations,
        preconditioner=preconditioner))


def resilient_solve(problem: DistributedProblem, *, phi: int = 1,
                    preconditioner: Union[None, str, Preconditioner] = None,
                    failures: Iterable[Union[FailureEvent, Tuple]] = (),
                    placement: BackupPlacement = BackupPlacement.PAPER,
                    rtol: float = 1e-8,
                    max_iterations: Optional[int] = None,
                    local_solver_method: str = "pcg_ilu",
                    local_rtol: float = 1e-14) -> DistributedSolveResult:
    """Deprecated: use ``repro.solve`` with a :class:`ResilienceSpec`."""
    _warn_deprecated("resilient_solve",
                     "repro.solve(problem, spec=SolveSpec(resilience=...))")
    return solve(problem, spec=SolveSpec(
        solver="resilient_pcg", rtol=rtol, max_iterations=max_iterations,
        preconditioner=preconditioner,
        resilience=ResilienceSpec(
            phi=phi, placement=placement, failures=tuple(failures),
            local_solver_method=local_solver_method, local_rtol=local_rtol)))


def solve_with_failures(matrix: Any, rhs: Optional[np.ndarray] = None, *,
                        n_nodes: int = 8, phi: int = 1,
                        failures: Iterable[Union[FailureEvent, Tuple]] = (),
                        preconditioner: Union[None, str, Preconditioner] = None,
                        placement: BackupPlacement = BackupPlacement.PAPER,
                        rtol: float = 1e-8,
                        max_iterations: Optional[int] = None,
                        local_solver_method: str = "pcg_ilu",
                        local_rtol: float = 1e-14,
                        machine: Optional[MachineModel] = None,
                        seed: Optional[int] = None) -> DistributedSolveResult:
    """Deprecated one-call wrapper: use ``repro.solve(matrix, rhs, ...)``.

    Forwards the **full** resilience configuration -- including
    ``placement``, ``local_solver_method`` and ``local_rtol``, which the
    pre-registry version silently dropped.
    """
    _warn_deprecated("solve_with_failures", "repro.solve(matrix, rhs, ...)")
    return solve(matrix, rhs, spec=SolveSpec(
        solver="resilient_pcg", rtol=rtol, max_iterations=max_iterations,
        preconditioner=preconditioner,
        resilience=ResilienceSpec(
            phi=phi, placement=placement, failures=tuple(failures),
            local_solver_method=local_solver_method, local_rtol=local_rtol)),
        n_nodes=n_nodes, machine=machine, seed=seed)
