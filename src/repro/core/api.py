"""High-level convenience API.

These helpers wire the substrates together for the common case: take a global
SciPy sparse SPD system, distribute it over a virtual cluster, and run either
the reference distributed PCG (for the paper's ``t0``) or the resilient
solver with a failure schedule.  The examples and the benchmark harness are
built on top of these functions; power users can assemble the pieces manually
for full control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..cluster.cluster import VirtualCluster
from ..cluster.cost_model import MachineModel
from ..cluster.failure import FailureEvent, FailureInjector
from ..cluster.network import Topology
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix
from ..distributed.dvector import DistributedVector
from ..distributed.partition import BlockRowPartition
from ..precond.base import Preconditioner
from ..precond.factory import make_preconditioner
from .pcg import DistributedPCG, DistributedSolveResult
from .redundancy import BackupPlacement
from .resilient_pcg import ResilientPCG


@dataclass
class DistributedProblem:
    """A linear system distributed over a virtual cluster."""

    cluster: VirtualCluster
    partition: BlockRowPartition
    matrix: DistributedMatrix
    rhs: DistributedVector
    context: CommunicationContext

    @property
    def n(self) -> int:
        return self.partition.n

    @property
    def n_nodes(self) -> int:
        return self.partition.n_parts


def distribute_problem(matrix, rhs: Optional[np.ndarray] = None, *,
                       n_nodes: int = 8,
                       machine: Optional[MachineModel] = None,
                       topology: Optional[Topology] = None,
                       seed: Optional[int] = None,
                       cluster: Optional[VirtualCluster] = None
                       ) -> DistributedProblem:
    """Distribute ``A x = b`` over a (new or existing) virtual cluster.

    Parameters
    ----------
    matrix:
        Global SPD matrix (any SciPy sparse format or dense array).
    rhs:
        Right-hand side; defaults to ``A @ ones`` so the exact solution is the
        all-ones vector (handy for verification).
    n_nodes:
        Number of virtual compute nodes (ignored if *cluster* is given).
    machine, topology, seed:
        Forwarded to :class:`~repro.cluster.cluster.VirtualCluster`.
    cluster:
        Reuse an existing cluster instead of creating one.
    """
    a = sp.csr_matrix(matrix)
    n = a.shape[0]
    if rhs is None:
        rhs = a @ np.ones(n)
    rhs = np.asarray(rhs, dtype=np.float64)
    if cluster is None:
        cluster = VirtualCluster(n_nodes, machine=machine, topology=topology,
                                 seed=seed)
    partition = BlockRowPartition(n, cluster.n_nodes)
    a_dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    b_dist = DistributedVector.from_global(cluster, partition, "b", rhs)
    context = CommunicationContext.from_matrix(a_dist)
    return DistributedProblem(cluster, partition, a_dist, b_dist, context)


def _resolve_preconditioner(preconditioner: Union[None, str, Preconditioner],
                            problem: DistributedProblem) -> Preconditioner:
    if preconditioner is None:
        preconditioner = "block_jacobi"
    if isinstance(preconditioner, str):
        preconditioner = make_preconditioner(preconditioner)
    if not preconditioner.is_set_up:
        preconditioner.setup(problem.matrix.to_global(), problem.partition)
    return preconditioner


def build_failure_events(failures: Iterable[Union[FailureEvent, Tuple]]
                         ) -> List[FailureEvent]:
    """Normalise ``(iteration, ranks)`` tuples into :class:`FailureEvent` objects."""
    events: List[FailureEvent] = []
    for item in failures:
        if isinstance(item, FailureEvent):
            events.append(item)
        else:
            iteration, ranks = item[0], item[1]
            if np.isscalar(ranks):
                ranks = [int(ranks)]
            events.append(FailureEvent(int(iteration), tuple(int(r) for r in ranks)))
    return events


def reference_solve(problem: DistributedProblem, *,
                    preconditioner: Union[None, str, Preconditioner] = None,
                    rtol: float = 1e-8,
                    max_iterations: Optional[int] = None
                    ) -> DistributedSolveResult:
    """Run the plain (non-resilient) distributed PCG -- the paper's reference run."""
    solver = DistributedPCG(
        problem.matrix, problem.rhs,
        _resolve_preconditioner(preconditioner, problem),
        rtol=rtol, max_iterations=max_iterations, context=problem.context,
    )
    return solver.solve()


def resilient_solve(problem: DistributedProblem, *, phi: int = 1,
                    preconditioner: Union[None, str, Preconditioner] = None,
                    failures: Iterable[Union[FailureEvent, Tuple]] = (),
                    placement: BackupPlacement = BackupPlacement.PAPER,
                    rtol: float = 1e-8,
                    max_iterations: Optional[int] = None,
                    local_solver_method: str = "pcg_ilu",
                    local_rtol: float = 1e-14) -> DistributedSolveResult:
    """Run the ESR-protected PCG, optionally injecting node failures.

    ``failures`` may contain :class:`FailureEvent` objects or simple
    ``(iteration, ranks)`` tuples.
    """
    events = build_failure_events(failures)
    injector = FailureInjector(events) if events else None
    solver = ResilientPCG(
        problem.matrix, problem.rhs,
        _resolve_preconditioner(preconditioner, problem),
        phi=phi, placement=placement, failure_injector=injector,
        local_solver_method=local_solver_method, local_rtol=local_rtol,
        rtol=rtol, max_iterations=max_iterations, context=problem.context,
    )
    return solver.solve()


def solve_with_failures(matrix, rhs: Optional[np.ndarray] = None, *,
                        n_nodes: int = 8, phi: int = 1,
                        failures: Iterable[Union[FailureEvent, Tuple]] = (),
                        preconditioner: Union[None, str, Preconditioner] = None,
                        rtol: float = 1e-8,
                        max_iterations: Optional[int] = None,
                        machine: Optional[MachineModel] = None,
                        seed: Optional[int] = None) -> DistributedSolveResult:
    """One-call convenience wrapper: distribute, protect, fail, recover, solve."""
    problem = distribute_problem(matrix, rhs, n_nodes=n_nodes, machine=machine,
                                 seed=seed)
    return resilient_solve(
        problem, phi=phi, failures=failures, preconditioner=preconditioner,
        rtol=rtol, max_iterations=max_iterations,
    )
