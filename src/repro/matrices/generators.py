"""Synthetic SPD sparse matrix generators.

The paper evaluates on eight SPD matrices from the SuiteSparse collection
(Table 1) spanning fluid dynamics, electromagnetics, circuit simulation,
thermal and structural problems.  Those files are not available offline, so
this module provides generators that produce matrices with the same
*character*: discretisation stencils on structured grids (narrow, regular
bands), vector-valued 3-D mechanics discretisations (wide, dense bands with
tens of non-zeros per row) and irregular graph-Laplacian-like patterns with
very few non-zeros per row.  All generators return symmetric positive
definite CSR matrices.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..utils.rng import RandomState, as_rng

__all__ = [
    "poisson_1d",
    "poisson_2d",
    "poisson_2d_9point",
    "poisson_3d",
    "anisotropic_diffusion_2d",
    "graph_laplacian_spd",
    "unstructured_mesh_spd",
    "elasticity_3d",
    "banded_spd",
    "diagonally_dominant_spd",
    "grid_dimensions_for",
]


def _clean_csr(matrix) -> sp.csr_matrix:
    """Convert to CSR and drop explicitly stored zeros.

    ``scipy.sparse.kron`` can produce BSR output with explicitly stored zero
    entries; those would inflate the non-zero counts that drive the cost model
    and the SpMV communication pattern, so every generator scrubs them.
    """
    out = sp.csr_matrix(matrix)
    out.eliminate_zeros()
    out.sort_indices()
    return out


# ---------------------------------------------------------------------------
# structured scalar stencils
# ---------------------------------------------------------------------------

def poisson_1d(n: int) -> sp.csr_matrix:
    """Standard 1-D Laplacian (tridiagonal ``[-1, 2, -1]``)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    diags = [np.full(n - 1, -1.0), np.full(n, 2.0), np.full(n - 1, -1.0)]
    return sp.diags(diags, offsets=[-1, 0, 1], format="csr")


def poisson_2d(nx: int, ny: Optional[int] = None) -> sp.csr_matrix:
    """5-point Laplacian on an ``nx x ny`` grid (lexicographic ordering)."""
    ny = nx if ny is None else ny
    tx = poisson_1d(nx)
    ty = poisson_1d(ny)
    a = sp.kron(sp.identity(ny), tx) + sp.kron(ty, sp.identity(nx))
    return _clean_csr(a)


def _shift_1d(n: int, offset: int) -> sp.csr_matrix:
    """Shift operator: ones on the *offset* diagonal of an ``n x n`` matrix."""
    if offset == 0:
        return sp.identity(n, format="csr")
    m = n - abs(offset)
    if m <= 0:
        return sp.csr_matrix((n, n))
    return sp.diags([np.ones(m)], offsets=[offset], shape=(n, n), format="csr")


def poisson_2d_9point(nx: int, ny: Optional[int] = None) -> sp.csr_matrix:
    """9-point (compact) Laplacian on an ``nx x ny`` grid.

    Slightly denser rows than the 5-point stencil (up to 9 non-zeros), which
    matches the ~7 nnz/row of matrices like ``parabolic_fem``.
    """
    ny = nx if ny is None else ny
    n = nx * ny
    a = sp.csr_matrix((n, n))
    for dj in (-1, 0, 1):
        for di in (-1, 0, 1):
            if di == 0 and dj == 0:
                weight = 20.0 / 6.0
            elif di == 0 or dj == 0:
                weight = -4.0 / 6.0
            else:
                weight = -1.0 / 6.0
            a = a + weight * sp.kron(_shift_1d(ny, dj), _shift_1d(nx, di))
    return _clean_csr(a)


def poisson_3d(nx: int, ny: Optional[int] = None, nz: Optional[int] = None
               ) -> sp.csr_matrix:
    """7-point Laplacian on an ``nx x ny x nz`` grid."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    tx, ty, tz = poisson_1d(nx), poisson_1d(ny), poisson_1d(nz)
    ix, iy, iz = sp.identity(nx), sp.identity(ny), sp.identity(nz)
    a = (
        sp.kron(sp.kron(iz, iy), tx)
        + sp.kron(sp.kron(iz, ty), ix)
        + sp.kron(sp.kron(tz, iy), ix)
    )
    return _clean_csr(a)


def anisotropic_diffusion_2d(nx: int, ny: Optional[int] = None,
                             epsilon: float = 0.01, theta: float = 0.0
                             ) -> sp.csr_matrix:
    """Rotated anisotropic diffusion operator (9-point stencil).

    ``epsilon`` is the anisotropy ratio and ``theta`` the rotation angle; the
    resulting matrices are notoriously hard for simple preconditioners and are
    used in the preconditioner unit tests.
    """
    ny = nx if ny is None else ny
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    c, s = math.cos(theta), math.sin(theta)
    cxx = c * c + epsilon * s * s
    cyy = s * s + epsilon * c * c
    cxy = (1.0 - epsilon) * c * s

    n = nx * ny

    def idx(i: int, j: int) -> int:
        return j * nx + i

    rows, cols, vals = [], [], []

    def add(r: int, c_: int, v: float) -> None:
        rows.append(r)
        cols.append(c_)
        vals.append(v)

    for j in range(ny):
        for i in range(nx):
            center = idx(i, j)
            add(center, center, 2.0 * cxx + 2.0 * cyy)
            if i > 0:
                add(center, idx(i - 1, j), -cxx)
            if i < nx - 1:
                add(center, idx(i + 1, j), -cxx)
            if j > 0:
                add(center, idx(i, j - 1), -cyy)
            if j < ny - 1:
                add(center, idx(i, j + 1), -cyy)
            # cross-derivative couplings
            if i > 0 and j > 0:
                add(center, idx(i - 1, j - 1), -cxy / 2.0)
            if i < nx - 1 and j < ny - 1:
                add(center, idx(i + 1, j + 1), -cxy / 2.0)
            if i > 0 and j < ny - 1:
                add(center, idx(i - 1, j + 1), cxy / 2.0)
            if i < nx - 1 and j > 0:
                add(center, idx(i + 1, j - 1), cxy / 2.0)
    a = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    # Symmetrise (boundary truncation of the cross terms breaks exact symmetry)
    a = (a + a.T) * 0.5
    # Ensure SPD by adding a small multiple of the identity if needed.
    a = a + sp.identity(n) * 1e-8
    return _clean_csr(a)


# ---------------------------------------------------------------------------
# irregular patterns
# ---------------------------------------------------------------------------

def graph_laplacian_spd(n: int, avg_degree: float = 4.0, *,
                        long_range_fraction: float = 0.05,
                        shift: float = 1e-2,
                        rng: Optional[RandomState] = None,
                        seed: Optional[int] = None) -> sp.csr_matrix:
    """SPD matrix built from a random graph Laplacian (circuit-like pattern).

    Most edges connect nearby indices (as after a bandwidth-reducing
    ordering), a small ``long_range_fraction`` connects arbitrary index pairs.
    The result has ~``avg_degree + 1`` non-zeros per row -- the regime of
    ``G3_circuit``/``thermal2`` where the ESR redundancy traffic is largest
    relative to compute.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    rng = as_rng(rng if rng is not None else seed)
    n_edges = int(round(avg_degree * n / 2.0))

    # Chain backbone keeps the graph connected.
    src = [np.arange(n - 1)]
    dst = [np.arange(1, n)]
    remaining = max(n_edges - (n - 1), 0)

    n_long = int(round(remaining * long_range_fraction))
    n_short = remaining - n_long
    if n_short > 0:
        base = rng.integers(0, n - 1, size=n_short)
        span = 1 + rng.poisson(3.0, size=n_short)
        src.append(base)
        dst.append(np.minimum(base + span, n - 1))
    if n_long > 0:
        src.append(rng.integers(0, n, size=n_long))
        dst.append(rng.integers(0, n, size=n_long))

    i = np.concatenate(src)
    j = np.concatenate(dst)
    mask = i != j
    i, j = i[mask], j[mask]
    w = 0.5 + rng.random(i.size)

    adj = sp.csr_matrix((w, (i, j)), shape=(n, n))
    adj = adj + adj.T
    degree = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(degree) - adj
    return sp.csr_matrix(lap + shift * sp.identity(n))


def unstructured_mesh_spd(n: int, target_nnz_per_row: float = 7.0, *,
                          rng: Optional[RandomState] = None,
                          seed: Optional[int] = None,
                          shift: float = 1e-2) -> sp.csr_matrix:
    """SPD matrix mimicking an unstructured FEM mesh after reordering.

    Rows couple to a handful of neighbours at random but mostly *local*
    index distances (geometric decay), producing a ragged band like
    ``thermal2`` or ``offshore``.
    """
    if target_nnz_per_row < 3:
        raise ValueError("target_nnz_per_row must be >= 3")
    rng = as_rng(rng if rng is not None else seed)
    avg_degree = target_nnz_per_row - 1.0
    n_edges = int(round(avg_degree * n / 2.0))

    src = [np.arange(n - 1)]
    dst = [np.arange(1, n)]
    remaining = max(n_edges - (n - 1), 0)
    if remaining > 0:
        base = rng.integers(0, n, size=remaining)
        # geometric index distances: mostly close, occasionally further away
        span = rng.geometric(p=0.02, size=remaining)
        sign = rng.choice([-1, 1], size=remaining)
        other = np.clip(base + sign * span, 0, n - 1)
        src.append(base)
        dst.append(other)
    i = np.concatenate(src)
    j = np.concatenate(dst)
    mask = i != j
    i, j = i[mask], j[mask]
    w = 0.5 + rng.random(i.size)

    adj = sp.csr_matrix((w, (i, j)), shape=(n, n))
    adj = adj + adj.T
    degree = np.asarray(adj.sum(axis=1)).ravel()
    lap = sp.diags(degree) - adj
    return sp.csr_matrix(lap + shift * sp.identity(n))


# ---------------------------------------------------------------------------
# vector-valued (structural mechanics style) problems
# ---------------------------------------------------------------------------

def elasticity_3d(nx: int, ny: Optional[int] = None, nz: Optional[int] = None,
                  *, dofs_per_node: int = 3, neighbor_radius: int = 1,
                  coupling: float = 0.45,
                  rng: Optional[RandomState] = None,
                  seed: Optional[int] = None) -> sp.csr_matrix:
    """SPD matrix mimicking a 3-D solid-mechanics discretisation.

    Grid vertices carry ``dofs_per_node`` unknowns each; every vertex couples
    to all grid neighbours within the given Chebyshev ``neighbor_radius``
    (radius 1 = 27-point stencil) with small dense ``dofs x dofs`` blocks.
    The result has wide, dense bands and tens of non-zeros per row, like the
    structural matrices ``Emilia_923``, ``Geo_1438``, ``Serena`` and
    ``audikw_1`` in Table 1 -- the favourable regime for the ESR scheme.

    Diagonal dominance (hence positive definiteness) is enforced by scaling
    the off-diagonal blocks relative to the accumulated row sums.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if dofs_per_node < 1:
        raise ValueError("dofs_per_node must be >= 1")
    if neighbor_radius < 1:
        raise ValueError("neighbor_radius must be >= 1")
    if not 0 < coupling < 1:
        raise ValueError("coupling must lie strictly between 0 and 1")
    rng = as_rng(rng if rng is not None else seed)

    n_vertices = nx * ny * nz
    d = dofs_per_node
    n = n_vertices * d

    r = neighbor_radius
    # Vertex-to-vertex coupling: sum of shift operators over the neighbour
    # offsets, weighted by -coupling / dist^2.
    adjacency = sp.csr_matrix((n_vertices, n_vertices))
    for dk in range(-r, r + 1):
        for dj in range(-r, r + 1):
            for di in range(-r, r + 1):
                if di == 0 and dj == 0 and dk == 0:
                    continue
                dist = max(abs(di), abs(dj), abs(dk))
                weight = -coupling / (dist * dist)
                shift = sp.kron(
                    _shift_1d(nz, dk),
                    sp.kron(_shift_1d(ny, dj), _shift_1d(nx, di)),
                )
                adjacency = adjacency + weight * shift
    # A fixed (symmetric positive) block pattern shared by all edges keeps the
    # construction fast and the global matrix exactly symmetric.
    base_block = np.eye(d) + 0.3 * np.ones((d, d))
    a = sp.kron(adjacency, sp.csr_matrix(base_block), format="csr")
    a = (a + a.T) * 0.5
    # Diagonal: strictly dominate the (negative) off-diagonal row sums.
    offdiag_abs_rowsum = np.asarray(abs(a).sum(axis=1)).ravel()
    diag = offdiag_abs_rowsum * (1.0 + 0.05) + 1.0
    a = a + sp.diags(diag)
    return _clean_csr(a)


# ---------------------------------------------------------------------------
# generic random SPD matrices
# ---------------------------------------------------------------------------

def banded_spd(n: int, half_bandwidth: int, *, fill: float = 0.6,
               rng: Optional[RandomState] = None,
               seed: Optional[int] = None) -> sp.csr_matrix:
    """Random SPD matrix with all non-zeros inside a fixed band.

    ``fill`` is the expected fraction of in-band entries that are non-zero.
    Used by the property tests and by the Sec. 5 band-condition analysis
    (a matrix that is "not too sparse within a bandwidth of ceil(phi n / 2N)"
    incurs no extra ESR latency).
    """
    if half_bandwidth < 1 or half_bandwidth >= n:
        raise ValueError(
            f"half_bandwidth must be in [1, n), got {half_bandwidth} for n={n}"
        )
    if not 0 < fill <= 1:
        raise ValueError(f"fill must lie in (0, 1], got {fill}")
    rng = as_rng(rng if rng is not None else seed)
    rows, cols, vals = [], [], []
    for offset in range(1, half_bandwidth + 1):
        m = n - offset
        mask = rng.random(m) < fill
        idx = np.nonzero(mask)[0]
        if idx.size == 0:
            continue
        v = -(0.2 + 0.8 * rng.random(idx.size))
        rows.append(idx)
        cols.append(idx + offset)
        vals.append(v)
    if rows:
        i = np.concatenate(rows)
        j = np.concatenate(cols)
        v = np.concatenate(vals)
        upper = sp.csr_matrix((v, (i, j)), shape=(n, n))
    else:
        upper = sp.csr_matrix((n, n))
    a = upper + upper.T
    offdiag_abs_rowsum = np.asarray(abs(a).sum(axis=1)).ravel()
    a = a + sp.diags(offdiag_abs_rowsum + 1.0)
    return sp.csr_matrix(a)


def diagonally_dominant_spd(n: int, nnz_per_row: int = 5, *,
                            rng: Optional[RandomState] = None,
                            seed: Optional[int] = None) -> sp.csr_matrix:
    """Random diagonally dominant SPD matrix with arbitrary sparsity pattern."""
    if nnz_per_row < 1:
        raise ValueError("nnz_per_row must be >= 1")
    rng = as_rng(rng if rng is not None else seed)
    k = max(nnz_per_row - 1, 1)
    rows = np.repeat(np.arange(n), k)
    cols = rng.integers(0, n, size=n * k)
    vals = -rng.random(n * k)
    mask = rows != cols
    a = sp.csr_matrix((vals[mask], (rows[mask], cols[mask])), shape=(n, n))
    a = (a + a.T) * 0.5
    offdiag_abs_rowsum = np.asarray(abs(a).sum(axis=1)).ravel()
    a = a + sp.diags(offdiag_abs_rowsum + 1.0)
    return sp.csr_matrix(a)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def grid_dimensions_for(target_n: int, dims: int = 2,
                        dofs_per_node: int = 1) -> Tuple[int, ...]:
    """Grid side lengths whose product of vertices times dofs ~= *target_n*."""
    if target_n < 1:
        raise ValueError("target_n must be >= 1")
    vertices = max(1, target_n // dofs_per_node)
    side = max(2, int(round(vertices ** (1.0 / dims))))
    return tuple([side] * dims)
