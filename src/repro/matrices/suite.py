"""Synthetic analogues of the paper's test matrices (Table 1).

The paper evaluates on eight SPD matrices from the SuiteSparse collection.
Since the collection is not available offline, each matrix is replaced by a
generated analogue of the same *structural class* -- same problem type, a
similar number of non-zeros per row and a similar band structure -- scaled to
a size that a single machine can iterate quickly.  The scaling knob preserves
nnz/row, so the ratio of redundancy traffic to SpMV compute (the quantity
that drives the paper's Table 2 and Figures 1-3) is in the same regime as for
the originals.

=====  ==============  ==================  =========  ============  ============
ID     original name   problem type        orig. n    orig. NNZ     nnz/row
=====  ==============  ==================  =========  ============  ============
M1     parabolic_fem   Fluid dynamics      525,825    3,674,625     ~7.0
M2     offshore        Electromagnetics    259,789    4,242,673     ~16.3
M3     G3_circuit      Circuit simulation  1,585,478  7,660,826     ~4.8
M4     thermal2        Thermal             1,228,045  8,580,313     ~7.0
M5     Emilia_923      Structural          923,136    40,373,538    ~43.7
M6     Geo_1438        Structural          1,437,960  60,236,322    ~41.9
M7     Serena          Structural          1,391,349  64,131,971    ~46.1
M8     audikw_1        Structural          943,695    77,651,847    ~82.3
=====  ==============  ==================  =========  ============  ============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from ..utils.rng import stable_hash_seed
from . import generators as gen
from .properties import MatrixProperties, analyze


@dataclass(frozen=True)
class MatrixRecord:
    """Metadata and generator for one matrix of the suite."""

    matrix_id: str
    original_name: str
    problem_type: str
    original_n: int
    original_nnz: int
    #: Function ``(target_n, seed) -> csr_matrix`` building the analogue.
    builder: Callable[[int, int], sp.csr_matrix]
    #: Default analogue size used by the benchmark harness.
    default_n: int

    @property
    def original_nnz_per_row(self) -> float:
        return self.original_nnz / self.original_n

    def build(self, n: Optional[int] = None, seed: int = 0) -> sp.csr_matrix:
        """Construct the synthetic analogue with roughly *n* unknowns."""
        target = self.default_n if n is None else int(n)
        if target < 16:
            raise ValueError(f"target size {target} is too small for {self.matrix_id}")
        matrix = self.builder(target, stable_hash_seed(self.matrix_id, seed))
        return sp.csr_matrix(matrix)

    def describe(self) -> str:
        return (
            f"{self.matrix_id} ({self.original_name}): {self.problem_type}, "
            f"original n={self.original_n:,}, NNZ={self.original_nnz:,} "
            f"(~{self.original_nnz_per_row:.1f}/row)"
        )


# ---------------------------------------------------------------------------
# analogue builders
# ---------------------------------------------------------------------------

def _build_m1_parabolic_fem(target_n: int, seed: int) -> sp.csr_matrix:
    """2-D compact 9-point stencil: narrow regular band, ~7-9 nnz/row."""
    (side,) = gen.grid_dimensions_for(target_n, dims=1)
    nx = max(8, int(round(np.sqrt(target_n))))
    ny = max(8, target_n // nx)
    del side
    return gen.poisson_2d_9point(nx, ny)


def _build_m2_offshore(target_n: int, seed: int) -> sp.csr_matrix:
    """3-D 7-point stencil plus irregular couplings: ~15 nnz/row."""
    nx, ny, nz = gen.grid_dimensions_for(target_n, dims=3)
    base = gen.poisson_3d(nx, ny, nz)
    n = base.shape[0]
    extra = gen.unstructured_mesh_spd(n, target_nnz_per_row=9.0, seed=seed)
    return sp.csr_matrix(base + 0.3 * extra)


def _build_m3_g3_circuit(target_n: int, seed: int) -> sp.csr_matrix:
    """Irregular graph Laplacian with very sparse rows (~4.8 nnz/row)."""
    return gen.graph_laplacian_spd(
        target_n, avg_degree=3.8, long_range_fraction=0.08, seed=seed
    )


def _build_m4_thermal2(target_n: int, seed: int) -> sp.csr_matrix:
    """Unstructured-mesh-like Laplacian, ~7 nnz/row."""
    return gen.unstructured_mesh_spd(target_n, target_nnz_per_row=7.0, seed=seed)


def _structural(target_n: int, seed: int, *, dofs: int, radius: int,
                drop_to_nnz_per_row: Optional[float] = None) -> sp.csr_matrix:
    """Common builder for the structural (wide-band) analogues M5-M8."""
    nx, ny, nz = gen.grid_dimensions_for(target_n, dims=3, dofs_per_node=dofs)
    a = gen.elasticity_3d(nx, ny, nz, dofs_per_node=dofs,
                          neighbor_radius=radius, seed=seed)
    if drop_to_nnz_per_row is not None:
        a = _thin_out(a, drop_to_nnz_per_row, seed)
    return a


def _thin_out(matrix: sp.csr_matrix, target_nnz_per_row: float,
              seed: int) -> sp.csr_matrix:
    """Symmetrically drop off-diagonal entries to reach ~target nnz/row.

    Keeps the diagonal untouched and re-adds diagonal dominance, so the result
    stays SPD.  Used to tune the structural analogues to the originals'
    densities without changing their band character.
    """
    n = matrix.shape[0]
    current = matrix.nnz / n
    if current <= target_nnz_per_row:
        return sp.csr_matrix(matrix)
    keep_prob = (target_nnz_per_row - 1.0) / max(current - 1.0, 1e-12)
    keep_prob = min(max(keep_prob, 0.05), 1.0)
    rng = np.random.default_rng(seed)
    upper = sp.triu(matrix, k=1).tocoo()
    mask = rng.random(upper.nnz) < keep_prob
    kept = sp.csr_matrix(
        (upper.data[mask], (upper.row[mask], upper.col[mask])), shape=matrix.shape
    )
    sym = kept + kept.T
    offdiag_abs_rowsum = np.asarray(abs(sym).sum(axis=1)).ravel()
    return sp.csr_matrix(sym + sp.diags(offdiag_abs_rowsum + 1.0))


def _build_m5_emilia(target_n: int, seed: int) -> sp.csr_matrix:
    return _structural(target_n, seed, dofs=3, radius=1,
                       drop_to_nnz_per_row=44.0)


def _build_m6_geo(target_n: int, seed: int) -> sp.csr_matrix:
    return _structural(target_n, seed, dofs=3, radius=1,
                       drop_to_nnz_per_row=42.0)


def _build_m7_serena(target_n: int, seed: int) -> sp.csr_matrix:
    return _structural(target_n, seed, dofs=3, radius=1,
                       drop_to_nnz_per_row=46.0)


def _build_m8_audikw(target_n: int, seed: int) -> sp.csr_matrix:
    return _structural(target_n, seed, dofs=3, radius=1)


# ---------------------------------------------------------------------------
# the suite
# ---------------------------------------------------------------------------

_SUITE: Dict[str, MatrixRecord] = {
    "M1": MatrixRecord("M1", "parabolic_fem", "Fluid dynamics",
                       525_825, 3_674_625, _build_m1_parabolic_fem, 10_000),
    "M2": MatrixRecord("M2", "offshore", "Electromagnetics",
                       259_789, 4_242_673, _build_m2_offshore, 8_000),
    "M3": MatrixRecord("M3", "G3_circuit", "Circuit simulation",
                       1_585_478, 7_660_826, _build_m3_g3_circuit, 16_000),
    "M4": MatrixRecord("M4", "thermal2", "Thermal",
                       1_228_045, 8_580_313, _build_m4_thermal2, 12_000),
    "M5": MatrixRecord("M5", "Emilia_923", "Structural",
                       923_136, 40_373_538, _build_m5_emilia, 10_000),
    "M6": MatrixRecord("M6", "Geo_1438", "Structural",
                       1_437_960, 60_236_322, _build_m6_geo, 12_000),
    "M7": MatrixRecord("M7", "Serena", "Structural",
                       1_391_349, 64_131_971, _build_m7_serena, 12_000),
    "M8": MatrixRecord("M8", "audikw_1", "Structural",
                       943_695, 77_651_847, _build_m8_audikw, 10_000),
}


def matrix_ids() -> List[str]:
    """IDs of the suite in Table 1 order (increasing original NNZ)."""
    return list(_SUITE.keys())


def get_record(matrix_id: str) -> MatrixRecord:
    """Metadata record for one matrix ID (``"M1"`` ... ``"M8"``)."""
    key = matrix_id.upper()
    if key not in _SUITE:
        raise KeyError(
            f"unknown matrix id {matrix_id!r}; available: {sorted(_SUITE)}"
        )
    return _SUITE[key]


def build_matrix(matrix_id: str, n: Optional[int] = None, seed: int = 0
                 ) -> sp.csr_matrix:
    """Build the synthetic analogue of *matrix_id* with roughly *n* unknowns."""
    return get_record(matrix_id).build(n=n, seed=seed)


def suite_table(n: Optional[int] = None, seed: int = 0,
                ids: Optional[List[str]] = None) -> List[Dict[str, object]]:
    """Rows of the Table-1 reproduction: original vs. analogue properties."""
    rows = []
    for matrix_id in (ids if ids is not None else matrix_ids()):
        record = get_record(matrix_id)
        matrix = record.build(n=n, seed=seed)
        props: MatrixProperties = analyze(matrix)
        rows.append({
            "id": record.matrix_id,
            "name": record.original_name,
            "problem_type": record.problem_type,
            "original_n": record.original_n,
            "original_nnz": record.original_nnz,
            "original_nnz_per_row": record.original_nnz_per_row,
            "analogue_n": props.n,
            "analogue_nnz": props.nnz,
            "analogue_nnz_per_row": props.nnz_per_row_mean,
            "analogue_half_bandwidth": props.half_bandwidth,
        })
    return rows
