"""SPD test matrices: generators, the synthetic Table-1 suite, analysis, I/O."""

from .generators import (
    anisotropic_diffusion_2d,
    banded_spd,
    diagonally_dominant_spd,
    elasticity_3d,
    graph_laplacian_spd,
    grid_dimensions_for,
    poisson_1d,
    poisson_2d,
    poisson_2d_9point,
    poisson_3d,
    unstructured_mesh_spd,
)
from .mmio import read_matrix_market, read_vector, write_matrix_market
from .properties import (
    MatrixProperties,
    analyze,
    band_fraction,
    blocks_coupled_per_row,
    diagonally_dominant_fraction,
    estimate_condition_number,
    half_bandwidth,
    is_symmetric,
    nnz_per_row,
)
from .suite import MatrixRecord, build_matrix, get_record, matrix_ids, suite_table

__all__ = [
    "poisson_1d",
    "poisson_2d",
    "poisson_2d_9point",
    "poisson_3d",
    "anisotropic_diffusion_2d",
    "graph_laplacian_spd",
    "unstructured_mesh_spd",
    "elasticity_3d",
    "banded_spd",
    "diagonally_dominant_spd",
    "grid_dimensions_for",
    "MatrixProperties",
    "analyze",
    "nnz_per_row",
    "half_bandwidth",
    "band_fraction",
    "is_symmetric",
    "diagonally_dominant_fraction",
    "blocks_coupled_per_row",
    "estimate_condition_number",
    "MatrixRecord",
    "build_matrix",
    "get_record",
    "matrix_ids",
    "suite_table",
    "read_matrix_market",
    "write_matrix_market",
    "read_vector",
]
