"""Minimal Matrix Market (``.mtx``) reader/writer.

The paper's experiments pull matrices from the SuiteSparse collection, which
distributes files in the Matrix Market exchange format.  This module provides
a small, dependency-free implementation of the coordinate format (real,
general/symmetric) so that users who *do* have the original files can feed
them to the reproduction, and so matrices generated here can be exported for
inspection with external tools.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np
import scipy.sparse as sp

PathLike = Union[str, Path]


class MatrixMarketError(ValueError):
    """Raised on malformed Matrix Market input."""


def _open_text(path: PathLike, mode: str) -> TextIO:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"))  # type: ignore[arg-type]
    return open(path, mode)


def read_matrix_market(path: PathLike) -> sp.csr_matrix:
    """Read a real coordinate Matrix Market file into a CSR matrix.

    Supports the ``general`` and ``symmetric`` qualifiers; ``pattern``
    matrices get unit values.  Symmetric storage is expanded to full storage.
    """
    with _open_text(path, "r") as handle:
        header = handle.readline()
        if not header.startswith("%%MatrixMarket"):
            raise MatrixMarketError(f"not a MatrixMarket file: {path}")
        parts = header.strip().split()
        if len(parts) < 5:
            raise MatrixMarketError(f"malformed header: {header!r}")
        _, obj, fmt, field, symmetry = parts[:5]
        if obj.lower() != "matrix" or fmt.lower() != "coordinate":
            raise MatrixMarketError(
                f"only coordinate matrices are supported, got {obj}/{fmt}"
            )
        field = field.lower()
        symmetry = symmetry.lower()
        if field not in ("real", "integer", "pattern"):
            raise MatrixMarketError(f"unsupported field type {field!r}")
        if symmetry not in ("general", "symmetric"):
            raise MatrixMarketError(f"unsupported symmetry {symmetry!r}")

        # Skip comments.
        line = handle.readline()
        while line.startswith("%"):
            line = handle.readline()
        dims = line.split()
        if len(dims) != 3:
            raise MatrixMarketError(f"malformed size line: {line!r}")
        n_rows, n_cols, nnz = (int(x) for x in dims)

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.ones(nnz, dtype=np.float64)
        for k in range(nnz):
            entry = handle.readline().split()
            if len(entry) < 2:
                raise MatrixMarketError(f"truncated file: entry {k + 1}/{nnz}")
            rows[k] = int(entry[0]) - 1
            cols[k] = int(entry[1]) - 1
            if field != "pattern":
                if len(entry) < 3:
                    raise MatrixMarketError(f"missing value in entry {k + 1}")
                vals[k] = float(entry[2])

    matrix = sp.coo_matrix((vals, (rows, cols)), shape=(n_rows, n_cols))
    if symmetry == "symmetric":
        strict_lower = rows != cols
        mirrored = sp.coo_matrix(
            (vals[strict_lower], (cols[strict_lower], rows[strict_lower])),
            shape=(n_rows, n_cols),
        )
        matrix = matrix + mirrored
    return sp.csr_matrix(matrix)


def write_matrix_market(path: PathLike, matrix, *, symmetric: bool = True,
                        comment: str = "") -> None:
    """Write a sparse matrix in coordinate Matrix Market format.

    With ``symmetric=True`` (the default, appropriate for SPD matrices) only
    the lower triangle is stored, as SuiteSparse does.
    """
    csr = sp.csr_matrix(matrix)
    if symmetric:
        if csr.shape[0] != csr.shape[1]:
            raise MatrixMarketError("symmetric output requires a square matrix")
        coo = sp.tril(csr).tocoo()
        qualifier = "symmetric"
    else:
        coo = csr.tocoo()
        qualifier = "general"
    with _open_text(path, "w") as handle:
        handle.write(f"%%MatrixMarket matrix coordinate real {qualifier}\n")
        if comment:
            for line in comment.splitlines():
                handle.write(f"% {line}\n")
        handle.write(f"{csr.shape[0]} {csr.shape[1]} {coo.nnz}\n")
        for i, j, v in zip(coo.row, coo.col, coo.data):
            handle.write(f"{i + 1} {j + 1} {float(v)!r}\n")


def read_vector(path: PathLike) -> np.ndarray:
    """Read a dense vector stored as a Matrix Market array or plain text."""
    path = Path(path)
    with _open_text(path, "r") as handle:
        first = handle.readline()
        if first.startswith("%%MatrixMarket"):
            parts = first.split()
            if len(parts) >= 3 and parts[2].lower() == "array":
                line = handle.readline()
                while line.startswith("%"):
                    line = handle.readline()
                n_rows, n_cols = (int(x) for x in line.split()[:2])
                if n_cols != 1:
                    raise MatrixMarketError("expected a single-column array")
                return np.array(
                    [float(handle.readline()) for _ in range(n_rows)]
                )
            raise MatrixMarketError("expected an array-format vector")
        values = [float(first)] if first.strip() else []
        values.extend(float(line) for line in handle if line.strip())
        return np.array(values)
