"""Structural analysis of sparse matrices.

These helpers compute the quantities that, per Sec. 5 of the paper, determine
how expensive the ESR redundancy scheme is for a given matrix: the number of
non-zeros per row, the (half-)bandwidth, the fraction of non-zeros close to
the diagonal, and how many distinct partition blocks each row/column couples
to.  They are used by the matrix suite (Table 1 reproduction), the overhead
analysis and several tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class MatrixProperties:
    """Summary statistics of a sparse matrix's structure."""

    n: int
    nnz: int
    nnz_per_row_mean: float
    nnz_per_row_max: int
    half_bandwidth: int
    #: Fraction of non-zeros with |i - j| <= band_fraction_width.
    band_fraction: float
    band_fraction_width: int
    symmetric: bool
    diagonally_dominant_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "nnz": self.nnz,
            "nnz_per_row_mean": self.nnz_per_row_mean,
            "nnz_per_row_max": self.nnz_per_row_max,
            "half_bandwidth": self.half_bandwidth,
            "band_fraction": self.band_fraction,
            "band_fraction_width": self.band_fraction_width,
            "symmetric": self.symmetric,
            "diagonally_dominant_fraction": self.diagonally_dominant_fraction,
        }


def nnz_per_row(matrix) -> np.ndarray:
    """Number of stored non-zeros in each row."""
    csr = sp.csr_matrix(matrix)
    return np.diff(csr.indptr)


def half_bandwidth(matrix) -> int:
    """Largest ``|i - j|`` over all stored non-zeros."""
    coo = sp.coo_matrix(matrix)
    if coo.nnz == 0:
        return 0
    return int(np.max(np.abs(coo.row - coo.col)))


def band_fraction(matrix, width: int) -> float:
    """Fraction of non-zeros with ``|i - j| <= width``."""
    coo = sp.coo_matrix(matrix)
    if coo.nnz == 0:
        return 1.0
    inside = np.count_nonzero(np.abs(coo.row - coo.col) <= width)
    return float(inside / coo.nnz)


def is_symmetric(matrix, tol: float = 1e-10) -> bool:
    """Numerical symmetry check."""
    csr = sp.csr_matrix(matrix)
    if csr.shape[0] != csr.shape[1]:
        return False
    diff = (csr - csr.T).tocoo()
    if diff.nnz == 0:
        return True
    scale = float(np.max(np.abs(csr.data))) if csr.nnz else 1.0
    return float(np.max(np.abs(diff.data))) <= tol * max(scale, 1.0)


def diagonally_dominant_fraction(matrix) -> float:
    """Fraction of rows with ``|a_ii| >= sum_{j != i} |a_ij|``."""
    csr = sp.csr_matrix(matrix)
    diag = np.abs(csr.diagonal())
    abs_rowsum = np.asarray(abs(csr).sum(axis=1)).ravel() - diag
    return float(np.count_nonzero(diag >= abs_rowsum - 1e-12) / csr.shape[0])


def blocks_coupled_per_row(matrix, n_parts: int) -> np.ndarray:
    """For each row, the number of *other* partition blocks its non-zeros touch.

    With the block-row distribution, a row that couples to ``c`` other blocks
    forces its owner to *receive* from ``c`` nodes; symmetrically, the owner of
    those columns must send.  The per-row histogram of this quantity predicts
    the multiplicity distribution of Eqn. (3).
    """
    from ..distributed.partition import BlockRowPartition

    csr = sp.csr_matrix(matrix)
    n = csr.shape[0]
    partition = BlockRowPartition(n, n_parts)
    owners_of_cols = partition.owner_of(np.arange(n, dtype=np.int64))
    counts = np.zeros(n, dtype=np.int64)
    indptr, indices = csr.indptr, csr.indices
    row_owner = partition.owner_of(np.arange(n, dtype=np.int64))
    for row in range(n):
        cols = indices[indptr[row]:indptr[row + 1]]
        if cols.size == 0:
            continue
        owners = owners_of_cols[cols]
        counts[row] = np.unique(owners[owners != row_owner[row]]).size
    return counts


def analyze(matrix, *, band_width: Optional[int] = None) -> MatrixProperties:
    """Compute a :class:`MatrixProperties` summary for *matrix*."""
    csr = sp.csr_matrix(matrix)
    n = csr.shape[0]
    per_row = nnz_per_row(csr)
    width = band_width if band_width is not None else max(1, n // 32)
    return MatrixProperties(
        n=n,
        nnz=int(csr.nnz),
        nnz_per_row_mean=float(per_row.mean()) if n else 0.0,
        nnz_per_row_max=int(per_row.max()) if n else 0,
        half_bandwidth=half_bandwidth(csr),
        band_fraction=band_fraction(csr, width),
        band_fraction_width=width,
        symmetric=is_symmetric(csr),
        diagonally_dominant_fraction=diagonally_dominant_fraction(csr),
    )


def estimate_condition_number(matrix, n_iterations: int = 50,
                              seed: int = 0) -> float:
    """Rough condition-number estimate via power iteration on A and A^-1 probes.

    Only used for reporting; accuracy of a factor of a few is sufficient.
    """
    csr = sp.csr_matrix(matrix).astype(np.float64)
    n = csr.shape[0]
    rng = np.random.default_rng(seed)
    # Largest eigenvalue by power iteration.
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    lam_max = 1.0
    for _ in range(n_iterations):
        w = csr @ v
        lam_max = float(np.linalg.norm(w))
        if lam_max == 0.0:
            return np.inf
        v = w / lam_max
    # Smallest eigenvalue via inverse power iteration with a sparse solve.
    try:
        from scipy.sparse.linalg import splu

        lu = splu(csr.tocsc())
        v = rng.standard_normal(n)
        v /= np.linalg.norm(v)
        mu = 1.0
        for _ in range(n_iterations):
            w = lu.solve(v)
            mu = float(np.linalg.norm(w))
            if mu == 0.0:
                break
            v = w / mu
        lam_min = 1.0 / mu if mu > 0 else 0.0
    except Exception:  # pragma: no cover - factorisation may fail for huge inputs
        lam_min = 0.0
    if lam_min <= 0:
        return np.inf
    return lam_max / lam_min
