"""Checkpoint/restart baseline (Sec. 1.2, related work).

The most common fault-tolerance technique in practice: every ``interval``
iterations the full dynamic solver state (``x``, ``r``, ``z``, ``p`` and the
recurrence scalars) is written to reliable storage; after a node failure the
state is rolled back to the most recent checkpoint and the iterations since
then are repeated.  Unlike ESR, the failure-free overhead is paid every
``interval`` iterations regardless of the matrix structure, and recovery
throws away up to ``interval - 1`` iterations of work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..cluster.cost_model import Phase
from ..cluster.failure import FailureInjector
from ..core.pcg import DistributedPCG
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix
from ..distributed.dvector import DistributedVector
from ..precond.base import Preconditioner
from ..utils.logging import get_logger
from .recovery_base import FailureHandlingMixin

logger = get_logger("baselines.checkpoint")


@dataclass(frozen=True)
class CheckpointConfig:
    """Configuration of the checkpoint/restart strategy."""

    #: Checkpoint every this many iterations (the paper's related work uses
    #: application-dependent intervals; 50 is a reasonable default for the
    #: scaled problems).
    interval: int = 50
    #: Also checkpoint iteration 0 (before the first step).
    checkpoint_initial_state: bool = True

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {self.interval}")


class CheckpointRestartPCG(FailureHandlingMixin, DistributedPCG):
    """Distributed PCG protected by periodic in-memory/remote checkpoints."""

    vector_prefix = "cr_pcg"

    def __init__(self, matrix: DistributedMatrix, rhs: DistributedVector,
                 preconditioner: Optional[Preconditioner] = None, *,
                 config: Optional[CheckpointConfig] = None,
                 failure_injector: Optional[FailureInjector] = None,
                 rtol: float = 1e-8, atol: float = 0.0,
                 max_iterations: Optional[int] = None,
                 context: Optional[CommunicationContext] = None):
        super().__init__(matrix, rhs, preconditioner, rtol=rtol, atol=atol,
                         max_iterations=max_iterations, context=context)
        self.config = config if config is not None else CheckpointConfig()
        self.failure_injector = failure_injector
        self._checkpoint: Optional[Dict[str, object]] = None
        self.checkpoints_taken = 0
        self.rollbacks = 0
        self.iterations_lost = 0
        self._ensure_rhs_stored()

    # -- checkpointing ------------------------------------------------------------
    def _checkpoint_cost(self) -> float:
        """Simulated time to write one checkpoint (per-node block of 4 vectors)."""
        model = self.cluster.ledger.model
        block = self.partition.max_block_size()
        return model.storage_retrieve_time(4 * block)

    def _take_checkpoint(self) -> None:
        """Snapshot the dynamic state to (failure-proof) storage."""
        state = {
            "iteration": self.iteration,
            "rz": self.rz,
            "beta_prev": self.beta_prev,
            "residual_history": list(self.residual_history),
            "x": self.x.to_global(),
            "r": self.r.to_global(),
            "z": self.z.to_global(),
            "p": self.p.to_global(),
        }
        self.cluster.storage.put(("checkpoint", self.vector_prefix), state)
        self._checkpoint = state
        self.checkpoints_taken += 1
        self.cluster.ledger.add_time(Phase.CHECKPOINT, self._checkpoint_cost())
        self.cluster.ledger.add_traffic(
            Phase.CHECKPOINT, self.partition.n_parts,
            4 * self.partition.n,
        )

    def _restore_checkpoint(self) -> None:
        """Roll the full solver state back to the last checkpoint."""
        if self._checkpoint is None:
            raise RuntimeError("no checkpoint available to restore")
        state = self.cluster.storage.retrieve(("checkpoint", self.vector_prefix),
                                              charge=True)
        lost = self.iteration - int(state["iteration"])
        self.iterations_lost += max(lost, 0)
        self.rollbacks += 1
        for name, vec in (("x", self.x), ("r", self.r), ("z", self.z), ("p", self.p)):
            values = np.asarray(state[name])
            for rank in range(self.partition.n_parts):
                start, stop = self.partition.range_of(rank)
                vec.restore_block(rank, values[start:stop])
        self.iteration = int(state["iteration"])
        self.rz = float(state["rz"])
        self.beta_prev = float(state["beta_prev"])
        self.residual_history = list(state["residual_history"])

    # -- hooks -----------------------------------------------------------------------
    def _on_setup(self) -> None:
        super()._on_setup()
        if self.config.checkpoint_initial_state:
            self._take_checkpoint()

    def _after_iteration(self, iteration: int) -> None:
        super()._after_iteration(iteration)
        if iteration % self.config.interval == 0:
            self._take_checkpoint()

    def _handle_failures(self, iteration: int) -> bool:
        failed = self._trigger_due_failures(iteration)
        if not failed:
            return super()._handle_failures(iteration)
        self._install_replacements(failed)
        self._restore_checkpoint()
        logger.info("rolled back to iteration %d after failure of %s",
                    self.iteration, failed)
        return True

    # -- result ------------------------------------------------------------------------
    def solve(self, x0=None):
        result = super().solve(x0)
        result.info["strategy"] = "checkpoint_restart"
        result.info["checkpoint_interval"] = self.config.interval
        result.info["checkpoints_taken"] = self.checkpoints_taken
        result.info["rollbacks"] = self.rollbacks
        result.info["iterations_lost"] = self.iterations_lost
        return result
