"""Shared machinery for the baseline recovery strategies.

Every baseline (checkpoint/restart, interpolation/restart, full restart) has
to perform the same bookkeeping when nodes fail: trigger the due events of
the failure schedule, install replacement nodes through the ULFM runtime, and
re-retrieve the *static* data (matrix row blocks, right-hand-side blocks) from
reliable storage -- only the treatment of the *dynamic* solver state differs
between strategies.  :class:`FailureHandlingMixin` factors out the common
part so the baselines stay small and directly comparable to the ESR solver.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..cluster.failure import FailureInjector
from ..utils.logging import get_logger

logger = get_logger("baselines")


class FailureHandlingMixin:
    """Mixin for :class:`~repro.core.pcg.DistributedPCG` subclasses.

    Expects the host class to provide ``cluster``, ``matrix``, ``rhs``,
    ``partition`` and a ``failure_injector`` attribute.
    """

    failure_injector: Optional[FailureInjector]

    # -- event handling ---------------------------------------------------------
    def _trigger_due_failures(self, iteration: int) -> List[int]:
        """Fire all failure events due at *iteration*; return the failed ranks.

        Overlapping events (``during_recovery_of``) are folded into the same
        failure set: the baseline strategies have no notion of a restartable
        reconstruction, so an overlapping failure simply behaves like an
        additional simultaneous failure.
        """
        if self.failure_injector is None:
            return []
        failed: List[int] = []
        for overlapping in (False, True):
            due = self.failure_injector.events_due(iteration, overlapping=overlapping)
            if overlapping and not failed:
                # Overlap events only make sense if a primary event fired.
                continue
            for idx, event in due:
                self.failure_injector.trigger(idx, self.cluster.nodes)
                failed.extend(event.ranks)
        if failed:
            newly = self.cluster.ulfm.detect_failures()
            failed = sorted(set(failed) | set(newly))
            self.cluster.comm.drop_messages_to_failed()
            logger.info("iteration %d: failure of ranks %s", iteration, failed)
        return failed

    # -- static data restoration -----------------------------------------------------
    def _rhs_storage_name(self) -> str:
        return f"rhs:{self.rhs.name}"

    def _ensure_rhs_stored(self) -> None:
        """Deposit the right-hand side blocks in reliable storage (setup phase)."""
        for rank in range(self.partition.n_parts):
            key = (self._rhs_storage_name(), rank)
            if key not in self.cluster.storage:
                self.cluster.storage.put(key, self.rhs.get_block(rank).copy())

    def _install_replacements(self, failed_ranks: List[int]) -> None:
        """Provide replacement nodes and restore the static data they own."""
        still_failed = [r for r in failed_ranks if self.cluster.node(r).is_failed]
        if still_failed:
            self.cluster.ulfm.notify_survivors(still_failed)
            self.cluster.replace_nodes(still_failed)
        for rank in failed_ranks:
            self.matrix.restore_block_to_node(rank, charge=True)
            block = self.cluster.storage.retrieve(
                (self._rhs_storage_name(), rank), charge=True
            )
            self.rhs.restore_block(rank, block)
        self._reinitialize_lost_blocks(failed_ranks)

    def _reinitialize_lost_blocks(self, failed_ranks: List[int]) -> None:
        """Create zero blocks of the dynamic work vectors on replacement nodes.

        The baseline strategies overwrite these with their own recovered
        values (checkpoint data, interpolated iterate, or a fresh start), but
        the blocks must exist before any in-place vector operation touches
        them.
        """
        for rank in failed_ranks:
            size = self.partition.size_of(rank)
            for vec in (self.x, self.r, self.z, self.p, self.ap):
                if vec is not None and not vec.has_block(rank):
                    vec.restore_block(rank, np.zeros(size))
