"""Interpolation/restart recovery baselines (Langou et al.; Agullo et al.).

These heuristics (Sec. 1.2) do not keep any redundant dynamic data.  After a
failure, only the surviving parts of the iterate ``x`` are available; the lost
block is *approximated* and the Krylov iteration is restarted from the patched
iterate:

* ``local_interpolation`` (LI, Langou et al. 2007): solve the local system
  ``A_{I_f,I_f} x_{I_f} = b_{I_f} - A_{I_f,I\\I_f} x_{I\\I_f}`` on the
  replacement nodes.
* ``least_squares_interpolation`` (LSI, Agullo et al. 2016): use *all* rows of
  ``A`` that reference the lost unknowns and solve the corresponding normal
  equations ``A_{:,I_f}^T A_{:,I_f} x_{I_f} = A_{:,I_f}^T (b - A_{:,I\\I_f}
  x_{I\\I_f})``, which guarantees a non-increasing error norm at the price of
  substantially more communication.

Unlike ESR, the restarted PCG loses the built-up Krylov subspace, so extra
iterations are usually needed after recovery -- this is exactly the trade-off
the ESR papers quantify.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..cluster.cost_model import Phase
from ..cluster.failure import FailureInjector
from ..core.pcg import DistributedPCG
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix
from ..distributed.dvector import DistributedVector
from ..precond.base import Preconditioner
from ..solvers.local_solver import LocalSubsystemSolver
from ..utils.logging import get_logger
from .recovery_base import FailureHandlingMixin

logger = get_logger("baselines.interpolation")

#: Supported interpolation variants.
INTERPOLATION_METHODS = ("li", "lsi")


def local_interpolation(matrix: sp.csr_matrix, rhs: np.ndarray,
                        x_global: np.ndarray, failed_indices: np.ndarray,
                        *, rtol: float = 1e-12) -> np.ndarray:
    """Langou-style local interpolation of the lost iterate entries.

    Parameters
    ----------
    matrix, rhs:
        The global system (static data, available from reliable storage).
    x_global:
        The iterate with surviving entries in place; the entries at
        ``failed_indices`` are ignored.
    failed_indices:
        Global indices of the lost entries ``I_f``.
    """
    a = sp.csr_matrix(matrix)
    x_masked = np.array(x_global, copy=True)
    x_masked[failed_indices] = 0.0
    rows = a[failed_indices, :]
    rhs_local = rhs[failed_indices] - rows @ x_masked
    a_sub = rows[:, failed_indices]
    solver = LocalSubsystemSolver("direct", rtol=rtol)
    return solver.solve(a_sub, rhs_local)


def least_squares_interpolation(matrix: sp.csr_matrix, rhs: np.ndarray,
                                x_global: np.ndarray,
                                failed_indices: np.ndarray,
                                *, rtol: float = 1e-12) -> np.ndarray:
    """Agullo-style least-squares interpolation of the lost iterate entries."""
    a = sp.csr_matrix(matrix)
    x_masked = np.array(x_global, copy=True)
    x_masked[failed_indices] = 0.0
    cols = a[:, failed_indices].tocsc()
    residual_without = rhs - a @ x_masked
    normal_matrix = (cols.T @ cols).tocsr()
    normal_rhs = cols.T @ residual_without
    solver = LocalSubsystemSolver("direct", rtol=rtol)
    return solver.solve(normal_matrix, normal_rhs)


class InterpolationRecoveryPCG(FailureHandlingMixin, DistributedPCG):
    """PCG with interpolation/restart recovery (LI or LSI)."""

    vector_prefix = "interp_pcg"

    def __init__(self, matrix: DistributedMatrix, rhs: DistributedVector,
                 preconditioner: Optional[Preconditioner] = None, *,
                 method: str = "li",
                 failure_injector: Optional[FailureInjector] = None,
                 rtol: float = 1e-8, atol: float = 0.0,
                 max_iterations: Optional[int] = None,
                 context: Optional[CommunicationContext] = None):
        if method not in INTERPOLATION_METHODS:
            raise ValueError(
                f"method must be one of {INTERPOLATION_METHODS}, got {method!r}"
            )
        super().__init__(matrix, rhs, preconditioner, rtol=rtol, atol=atol,
                         max_iterations=max_iterations, context=context)
        self.method = method
        self.failure_injector = failure_injector
        self.recoveries = 0
        self._ensure_rhs_stored()

    # -- recovery -------------------------------------------------------------------
    def _handle_failures(self, iteration: int) -> bool:
        failed = self._trigger_due_failures(iteration)
        if not failed:
            return super()._handle_failures(iteration)
        self._install_replacements(failed)
        self._interpolate_and_restart(failed)
        self.recoveries += 1
        return True

    def _interpolate_and_restart(self, failed_ranks: List[int]) -> None:
        ledger = self.cluster.ledger
        partition = self.partition
        failed_indices = partition.indices_of_set(failed_ranks)

        x_global = self.x.to_global(allow_missing=True, fill_value=0.0)
        a_global = self.matrix.to_global()
        b_global = self.rhs.to_global()

        if self.method == "li":
            x_failed = local_interpolation(a_global, b_global, x_global,
                                           failed_indices)
            # Communication: survivors ship the x entries referenced by the
            # failed rows (reverse SpMV pattern), like the ESR gather.
            for dst in failed_ranks:
                for src in self.context.senders_to(dst):
                    if src in failed_ranks:
                        continue
                    count = self.context.send_count(src, dst)
                    if count:
                        latency = self.cluster.topology.latency(src, dst)
                        ledger.add_time(Phase.RECOVERY_COMM,
                                        ledger.model.message_time(latency, count))
                        ledger.add_traffic(Phase.RECOVERY_COMM, 1, count)
            work = 10.0 * a_global[failed_indices, :][:, failed_indices].nnz
        else:
            x_failed = least_squares_interpolation(a_global, b_global, x_global,
                                                   failed_indices)
            # LSI touches every row that references a lost unknown: charge a
            # full residual evaluation plus the normal-equation solve.
            ledger.add_time(Phase.RECOVERY_COMM,
                            ledger.model.message_time(
                                self.cluster.topology.max_latency(),
                                int(partition.n)))
            ledger.add_traffic(Phase.RECOVERY_COMM, partition.n_parts,
                               int(partition.n))
            work = 2.0 * a_global.nnz + 20.0 * float(failed_indices.size) ** 2
        ledger.add_time(Phase.RECOVERY_COMPUTE,
                        work / ledger.model.spmv_flop_rate)

        # Patch the iterate and restart the Krylov process from it.
        x_global[failed_indices] = x_failed
        for rank in range(partition.n_parts):
            start, stop = partition.range_of(rank)
            self.x.restore_block(rank, x_global[start:stop])
        self._restart_krylov()

    def _restart_krylov(self) -> None:
        """Recompute r, z, p and the recurrence scalars from the patched x.

        Runs on the cached local-view SpMV engine (the solver's prebuilt
        context), which was invalidated and rebuilt when the replacement
        nodes got their matrix blocks restored.
        """
        from ..distributed.spmv import distributed_spmv

        distributed_spmv(self.matrix, self.x, self.ap, self.context)
        self.r.assign(self.rhs)
        self.r.axpy(-1.0, self.ap)
        self._apply_preconditioner(self.r, self.z)
        self.p.assign(self.z)
        self.rz = self.r.dot(self.z)
        self.beta_prev = 0.0

    # -- result --------------------------------------------------------------------------
    def solve(self, x0=None):
        result = super().solve(x0)
        result.info["strategy"] = f"interpolation_restart_{self.method}"
        result.info["recoveries"] = self.recoveries
        return result
