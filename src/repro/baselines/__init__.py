"""Baseline fault-tolerance strategies the ESR approach is compared against."""

from .checkpoint_restart import CheckpointConfig, CheckpointRestartPCG
from .interpolation import (
    InterpolationRecoveryPCG,
    least_squares_interpolation,
    local_interpolation,
)
from .restart import FullRestartPCG

__all__ = [
    "CheckpointRestartPCG",
    "CheckpointConfig",
    "InterpolationRecoveryPCG",
    "local_interpolation",
    "least_squares_interpolation",
    "FullRestartPCG",
]
