"""Full-restart baseline: start over from the initial guess after a failure.

The crudest possible recovery: no redundant data, no interpolation -- after a
node failure the solver simply restores the static data on the replacement
nodes and restarts PCG from the initial guess (zero).  All progress is lost,
which makes this the natural lower bound every smarter strategy is measured
against.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.failure import FailureInjector
from ..core.pcg import DistributedPCG
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix
from ..distributed.dvector import DistributedVector
from ..precond.base import Preconditioner
from ..utils.logging import get_logger
from .recovery_base import FailureHandlingMixin

logger = get_logger("baselines.restart")


class FullRestartPCG(FailureHandlingMixin, DistributedPCG):
    """PCG that restarts from scratch whenever nodes fail."""

    vector_prefix = "restart_pcg"

    def __init__(self, matrix: DistributedMatrix, rhs: DistributedVector,
                 preconditioner: Optional[Preconditioner] = None, *,
                 failure_injector: Optional[FailureInjector] = None,
                 rtol: float = 1e-8, atol: float = 0.0,
                 max_iterations: Optional[int] = None,
                 context: Optional[CommunicationContext] = None):
        super().__init__(matrix, rhs, preconditioner, rtol=rtol, atol=atol,
                         max_iterations=max_iterations, context=context)
        self.failure_injector = failure_injector
        self.restarts = 0
        self.iterations_lost = 0
        self._ensure_rhs_stored()

    def _handle_failures(self, iteration: int) -> bool:
        failed = self._trigger_due_failures(iteration)
        if not failed:
            return super()._handle_failures(iteration)
        self._install_replacements(failed)
        self._restart_from_scratch()
        logger.info("restarting from scratch after failure of %s "
                    "(%d iterations lost)", failed, iteration)
        self.iterations_lost += iteration
        self.restarts += 1
        return True

    def _restart_from_scratch(self) -> None:
        """Reset the dynamic state to the initial guess (zero iterate).

        The residual recomputation goes through ``distributed_spmv`` with the
        solver's prebuilt context, so it runs on the cached local-view SpMV
        engine (rebuilt automatically after ``_install_replacements``
        restored the matrix blocks).
        """
        from ..distributed.spmv import distributed_spmv

        self.x.fill(0.0)
        distributed_spmv(self.matrix, self.x, self.ap, self.context)
        self.r.assign(self.rhs)
        self.r.axpy(-1.0, self.ap)
        self._apply_preconditioner(self.r, self.z)
        self.p.assign(self.z)
        self.rz = self.r.dot(self.z)
        self.beta_prev = 0.0
        # The iteration counter keeps running: a restart does not make the
        # time already spent disappear, it only discards its effect.

    def solve(self, x0=None):
        result = super().solve(x0)
        result.info["strategy"] = "full_restart"
        result.info["restarts"] = self.restarts
        result.info["iterations_lost"] = self.iterations_lost
        return result
