"""Stochastic failure-trace generation (event-driven, seeded).

The deterministic scenarios of :mod:`repro.failures.scenarios` answer "what
happens when psi ranks fail at 50 % progress"; production-grade resilience
statements need distributions instead -- survival probability, overhead
percentiles, time to unrecoverable loss.  This module generates those
inputs CR-SIM style: an event-driven simulation with

* per-node lifetimes drawn from an exponential or Weibull distribution
  (:class:`LifetimeModel`),
* correlated rack-level bursts -- a Poisson process whose arrivals take out
  every currently-alive rank of one rack at once (racks are
  ``rack_size``-contiguous rank groups, the
  :class:`~repro.core.placement.RackLayout` model shared with the placement
  strategies), and
* an optional repair delay: a failed node stays down for ``repair_delay``
  iterations (a burst cannot re-kill it, and its next lifetime starts after
  the repair), matching how the solver's ULFM runtime swaps in replacement
  nodes.

All randomness flows through :mod:`repro.utils.rng` from a single integer
seed: the same ``(spec, seed)`` pair reproduces the trace bit-for-bit.  A
generated :class:`FailureTrace` resolves into the existing
:class:`~repro.cluster.failure.FailureEvent` schedule format
(:meth:`FailureTrace.to_failure_events`), so every solver path -- resilient
PCG, resilient block PCG, and the baselines -- consumes traces unmodified
through :class:`~repro.cluster.failure.FailureInjector`.

Time is measured in solver iterations: an event at continuous time ``t``
strikes before iteration ``int(t)`` (clamped to ``[1, horizon]``).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Tuple

from ..cluster.failure import FailureEvent
from ..core.placement import RackLayout
from ..utils.rng import RandomState, as_rng

__all__ = [
    "LifetimeModel",
    "TraceSpec",
    "TraceEvent",
    "FailureTrace",
    "generate_trace",
]


def _check_unknown_keys(data: Mapping[str, Any], known: List[str],
                        what: str) -> None:
    unknown = sorted(set(data) - set(known))
    if unknown:
        raise ValueError(f"unknown {what} keys {unknown}; "
                         f"known keys: {sorted(known)}")


@dataclass(frozen=True)
class LifetimeModel:
    """Distribution of a node's time-to-failure (in solver iterations).

    ``"exponential"`` is the memoryless baseline (``scale`` = mean
    lifetime); ``"weibull"`` adds an ageing ``shape`` parameter (``shape <
    1``: infant mortality, ``> 1``: wear-out), with the CR-SIM
    parametrisation ``lifetime = scale * W(shape)``.
    """

    distribution: str = "exponential"
    scale: float = 500.0
    shape: float = 1.0

    def __post_init__(self) -> None:
        if self.distribution not in ("exponential", "weibull"):
            raise ValueError(
                f"unknown lifetime distribution {self.distribution!r}; "
                "known: ('exponential', 'weibull')")
        if float(self.scale) <= 0.0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if float(self.shape) <= 0.0:
            raise ValueError(f"shape must be positive, got {self.shape}")

    def sample(self, rng: RandomState) -> float:
        """One lifetime draw from *rng*."""
        if self.distribution == "exponential":
            return float(rng.exponential(self.scale))
        return float(self.scale * rng.weibull(self.shape))

    def mean(self) -> float:
        """The distribution mean (used by the statistical sanity tests)."""
        if self.distribution == "exponential":
            return float(self.scale)
        return float(self.scale * math.gamma(1.0 + 1.0 / self.shape))

    def to_dict(self) -> Dict[str, Any]:
        return {"distribution": self.distribution, "scale": self.scale,
                "shape": self.shape}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LifetimeModel":
        _check_unknown_keys(data, [f.name for f in fields(cls)],
                            "LifetimeModel")
        return cls(**data)


@dataclass(frozen=True)
class TraceSpec:
    """Configuration of one stochastic failure trace.

    ``horizon`` bounds the generated schedule, *not* the solve: events past
    the solver's actual iteration count simply never trigger.  A
    ``burst_rate`` of ``0.05`` means one correlated rack burst every 20
    iterations in expectation.
    """

    #: Cluster size the trace is generated for.
    n_nodes: int = 8
    #: Events are generated for iterations ``1 .. horizon``.
    horizon: int = 200
    #: Per-node time-to-failure distribution.
    lifetime: LifetimeModel = field(default_factory=LifetimeModel)
    #: Poisson rate (bursts per iteration) of correlated rack bursts;
    #: ``0`` disables bursts.
    burst_rate: float = 0.0
    #: Rack (failure-domain) size; racks are contiguous rank groups.
    rack_size: int = 4
    #: Iterations a failed node stays down before its next lifetime starts.
    repair_delay: float = 0.0
    #: Label prefix stamped on the resolved ``FailureEvent`` objects.
    label: str = "trace"

    def __post_init__(self) -> None:
        if int(self.n_nodes) < 2:
            raise ValueError(
                f"a failure trace needs >= 2 nodes, got {self.n_nodes}")
        if int(self.horizon) < 1:
            raise ValueError(
                f"horizon must be positive, got {self.horizon}")
        if float(self.burst_rate) < 0.0:
            raise ValueError(
                f"burst_rate must be non-negative, got {self.burst_rate}")
        if int(self.rack_size) < 1:
            raise ValueError(
                f"rack_size must be positive, got {self.rack_size}")
        if float(self.repair_delay) < 0.0:
            raise ValueError(
                f"repair_delay must be non-negative, got {self.repair_delay}")

    @property
    def racks(self) -> RackLayout:
        return RackLayout(int(self.n_nodes), int(self.rack_size))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_nodes": self.n_nodes,
            "horizon": self.horizon,
            "lifetime": self.lifetime.to_dict(),
            "burst_rate": self.burst_rate,
            "rack_size": self.rack_size,
            "repair_delay": self.repair_delay,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceSpec":
        _check_unknown_keys(data, [f.name for f in fields(cls)], "TraceSpec")
        kwargs = dict(data)
        if isinstance(kwargs.get("lifetime"), Mapping):
            kwargs["lifetime"] = LifetimeModel.from_dict(kwargs["lifetime"])
        return cls(**kwargs)


@dataclass(frozen=True)
class TraceEvent:
    """One raw generator event: *ranks* fail at continuous time *time*."""

    time: float
    ranks: Tuple[int, ...]
    #: ``"lifetime"`` (independent node failure) or ``"burst"``.
    cause: str


@dataclass(frozen=True)
class FailureTrace:
    """A generated trace: the spec, the seed, and the raw event stream."""

    spec: TraceSpec
    seed: int
    events: Tuple[TraceEvent, ...]

    @property
    def n_failures(self) -> int:
        """Total node-failure count across all events."""
        return sum(len(ev.ranks) for ev in self.events)

    def to_failure_events(self) -> List[FailureEvent]:
        """Resolve into the injector's :class:`FailureEvent` schedule.

        Events mapping to the same iteration merge into one simultaneous
        event (the injector triggers per iteration anyway); ranks repeating
        within an iteration are deduplicated in time order, and the merged
        rank set is capped at ``n_nodes - 1`` (at least one survivor) by
        deterministically dropping the latest-listed ranks.
        """
        n_nodes = int(self.spec.n_nodes)
        horizon = int(self.spec.horizon)
        cap = n_nodes - 1
        ranks_by_iter: Dict[int, List[int]] = {}
        causes_by_iter: Dict[int, List[str]] = {}
        for ev in self.events:
            iteration = min(max(int(ev.time), 1), horizon)
            ranks = ranks_by_iter.setdefault(iteration, [])
            causes = causes_by_iter.setdefault(iteration, [])
            for rank in ev.ranks:
                if rank not in ranks and len(ranks) < cap:
                    ranks.append(rank)
            if ev.cause not in causes:
                causes.append(ev.cause)
        events: List[FailureEvent] = []
        for iteration in sorted(ranks_by_iter):
            ranks = ranks_by_iter[iteration]
            if not ranks:
                continue
            label = f"{self.spec.label}:{'+'.join(sorted(causes_by_iter[iteration]))}"
            events.append(FailureEvent(iteration=iteration,
                                       ranks=tuple(ranks), label=label))
        return events


def generate_trace(spec: TraceSpec, seed: int) -> FailureTrace:
    """Generate one failure trace for ``(spec, seed)`` (bit-reproducible).

    Event-driven: a heap of pending ``(time, sequence, kind, rank)`` entries
    is drained in time order.  Each rank carries a pending lifetime-failure
    time; burst arrivals form a Poisson process and kill every currently-up
    rank of one uniformly-chosen rack.  A failed rank is down for
    ``repair_delay`` iterations and draws a fresh lifetime from the repair
    point; a pending lifetime event overtaken by a burst is rescheduled
    instead of double-killing the node.
    """
    rng = as_rng(int(seed))
    n_nodes = int(spec.n_nodes)
    horizon = float(int(spec.horizon))
    racks = spec.racks
    # Time until which each rank is down (failed and not yet repaired).
    down_until = [0.0] * n_nodes

    heap: List[Tuple[float, int, str, int]] = []
    seq = 0
    for rank in range(n_nodes):
        heapq.heappush(heap, (spec.lifetime.sample(rng), seq, "fail", rank))
        seq += 1
    if spec.burst_rate > 0.0:
        heapq.heappush(
            heap, (float(rng.exponential(1.0 / spec.burst_rate)), seq,
                   "burst", -1))
        seq += 1

    events: List[TraceEvent] = []
    while heap:
        time, _, kind, rank = heapq.heappop(heap)
        if time > horizon:
            # The heap is time-ordered: everything left is out of range too,
            # but burst/fail reschedules could still land inside, so only
            # this entry is dropped.
            continue
        if kind == "fail":
            if time < down_until[rank]:
                # A burst killed this rank first; restart its clock after
                # the repair instead of double-killing it.
                retry = down_until[rank] + spec.lifetime.sample(rng)
                if retry <= horizon:
                    heapq.heappush(heap, (retry, seq, "fail", rank))
                    seq += 1
                continue
            events.append(TraceEvent(time=time, ranks=(rank,),
                                     cause="lifetime"))
            down_until[rank] = time + float(spec.repair_delay)
            nxt = down_until[rank] + spec.lifetime.sample(rng)
            if nxt <= horizon:
                heapq.heappush(heap, (nxt, seq, "fail", rank))
                seq += 1
        else:  # burst
            rack = int(rng.integers(racks.n_racks))
            victims = [r for r in racks.ranks_in(rack) if down_until[r] <= time]
            if victims:
                events.append(TraceEvent(time=time, ranks=tuple(victims),
                                         cause="burst"))
                for victim in victims:
                    down_until[victim] = time + float(spec.repair_delay)
            nxt = time + float(rng.exponential(1.0 / spec.burst_rate))
            if nxt <= horizon:
                heapq.heappush(heap, (nxt, seq, "burst", -1))
                seq += 1

    return FailureTrace(spec=spec, seed=int(seed), events=tuple(events))
