"""Failure scenarios matching the paper's experimental design (Sec. 7.1).

The experiments introduce node failures once per run, with

* ``psi`` in {1, 3, 8} simultaneous failures,
* at 20 %, 50 % or 80 % of the solver's progress (measured in iterations of
  the corresponding reference run), and
* clustered in contiguous ranks starting either at rank 0 ("start": the
  beginning of the vector) or at rank N/2 ("center": the middle of the
  vector), since simultaneous failures are typically caused by a shared
  switch.

:class:`FailureScenario` is the declarative description of one such
configuration; :func:`resolve_events` turns it into concrete
:class:`~repro.cluster.failure.FailureEvent` objects once the reference
iteration count is known.  Overlapping-failure scenarios (a second event that
strikes while the first recovery is running) are expressed with
:class:`OverlapSpec`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..cluster.failure import FailureEvent
from ..utils.rng import RandomState, as_rng
from ..utils.validation import check_in_range


class FailureLocation(enum.Enum):
    """Where the cluster's failed ranks sit relative to the vector layout."""

    #: Contiguous ranks starting at rank 0 (low vector indices).
    START = "start"
    #: Contiguous ranks starting at rank N/2 (middle vector indices).
    CENTER = "center"
    #: Contiguous ranks ending at rank N-1 (high vector indices).
    END = "end"
    #: Uniformly random distinct ranks (not used in the paper's tables, kept
    #: for robustness experiments).
    RANDOM = "random"


#: The progress fractions used throughout the paper's evaluation.
PAPER_PROGRESS_FRACTIONS: Tuple[float, ...] = (0.2, 0.5, 0.8)
#: The failure counts used throughout the paper's evaluation.
PAPER_FAILURE_COUNTS: Tuple[int, ...] = (1, 3, 8)


@dataclass(frozen=True)
class OverlapSpec:
    """An additional failure striking while a recovery is in progress."""

    #: How many extra nodes fail during the recovery.
    n_failures: int = 1
    #: Rank offset (from the end of the primary failed range) of the extras.
    rank_offset: int = 1


@dataclass(frozen=True)
class FailureScenario:
    """Declarative description of one failure configuration."""

    #: Number of simultaneously failing nodes (``psi``).
    n_failures: int
    #: Fraction of the reference run's iterations after which the failure hits.
    progress_fraction: float = 0.5
    #: Placement of the failed ranks.
    location: FailureLocation = FailureLocation.START
    #: Optional overlapping failures during the recovery.
    overlaps: Tuple[OverlapSpec, ...] = ()
    #: Free-form label for reports.
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_failures < 1:
            raise ValueError(
                f"a failure scenario needs at least one failing node, "
                f"got {self.n_failures}"
            )
        check_in_range(self.progress_fraction, 0.0, 1.0, "progress_fraction")

    # -- resolution ----------------------------------------------------------
    def failure_iteration(self, reference_iterations: int) -> int:
        """Concrete iteration index at which the event strikes."""
        if reference_iterations < 1:
            return 0
        iteration = int(round(self.progress_fraction * reference_iterations))
        return min(max(iteration, 0), max(reference_iterations - 1, 0))

    def failed_ranks(self, n_nodes: int,
                     rng: Optional[RandomState] = None) -> List[int]:
        """The ranks that fail, given the cluster size."""
        if self.n_failures >= n_nodes:
            raise ValueError(
                f"cannot fail {self.n_failures} of {n_nodes} nodes "
                "(at least one node must survive)"
            )
        if self.location is FailureLocation.START:
            base = 0
        elif self.location is FailureLocation.CENTER:
            base = n_nodes // 2
        elif self.location is FailureLocation.END:
            base = n_nodes - self.n_failures
        else:
            rng = as_rng(rng if rng is not None else 0)
            ranks = rng.choice(n_nodes, size=self.n_failures, replace=False)
            return sorted(int(r) for r in ranks)
        return [(base + k) % n_nodes for k in range(self.n_failures)]

    def overlap_ranks(self, n_nodes: int, primary: Sequence[int]) -> List[List[int]]:
        """Ranks of each overlapping event, avoiding the primary failed set."""
        result: List[List[int]] = []
        used = set(primary)
        cursor = (max(primary) + 1) % n_nodes if primary else 0
        for spec in self.overlaps:
            cursor = (cursor + spec.rank_offset - 1) % n_nodes
            ranks: List[int] = []
            while len(ranks) < spec.n_failures:
                if cursor not in used:
                    ranks.append(cursor)
                    used.add(cursor)
                cursor = (cursor + 1) % n_nodes
                if len(used) >= n_nodes:
                    raise ValueError("not enough nodes for the overlap specification")
            result.append(ranks)
        return result

    def describe(self) -> str:
        parts = [
            f"psi={self.n_failures}",
            f"at {int(round(self.progress_fraction * 100))}% progress",
            f"location={self.location.value}",
        ]
        if self.overlaps:
            parts.append(f"{len(self.overlaps)} overlapping event(s)")
        if self.label:
            parts.append(self.label)
        return ", ".join(parts)


def resolve_events(scenario: FailureScenario, *, n_nodes: int,
                   reference_iterations: int,
                   rng: Optional[RandomState] = None) -> List[FailureEvent]:
    """Turn a scenario into concrete failure events for a given run.

    The first event carries the simultaneous failures at the scenario's
    progress point; any overlap specs become events flagged with
    ``during_recovery_of=0`` so the recovery driver restarts reconstruction.
    """
    iteration = scenario.failure_iteration(reference_iterations)
    primary = scenario.failed_ranks(n_nodes, rng=rng)
    events = [FailureEvent(iteration=iteration, ranks=tuple(primary),
                           label=scenario.label or scenario.describe())]
    for ranks in scenario.overlap_ranks(n_nodes, primary):
        events.append(FailureEvent(iteration=iteration, ranks=tuple(ranks),
                                   during_recovery_of=0,
                                   label="overlapping failure"))
    return events


def paper_scenarios(location: FailureLocation = FailureLocation.START,
                    counts: Sequence[int] = PAPER_FAILURE_COUNTS,
                    fractions: Sequence[float] = PAPER_PROGRESS_FRACTIONS
                    ) -> List[FailureScenario]:
    """The full grid of scenarios used for Table 2 (one location)."""
    return [
        FailureScenario(n_failures=count, progress_fraction=fraction,
                        location=location)
        for count in counts
        for fraction in fractions
    ]
