"""Failure scenarios, stochastic traces and schedules for the resilience experiments."""

from .scenarios import (
    PAPER_FAILURE_COUNTS,
    PAPER_PROGRESS_FRACTIONS,
    FailureLocation,
    FailureScenario,
    OverlapSpec,
    paper_scenarios,
    resolve_events,
)
from .traces import (
    FailureTrace,
    LifetimeModel,
    TraceEvent,
    TraceSpec,
    generate_trace,
)

__all__ = [
    "FailureScenario",
    "FailureLocation",
    "OverlapSpec",
    "resolve_events",
    "paper_scenarios",
    "PAPER_FAILURE_COUNTS",
    "PAPER_PROGRESS_FRACTIONS",
    "FailureTrace",
    "LifetimeModel",
    "TraceEvent",
    "TraceSpec",
    "generate_trace",
]
