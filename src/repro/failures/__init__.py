"""Failure scenarios and schedules for the resilience experiments."""

from .scenarios import (
    PAPER_FAILURE_COUNTS,
    PAPER_PROGRESS_FRACTIONS,
    FailureLocation,
    FailureScenario,
    OverlapSpec,
    paper_scenarios,
    resolve_events,
)

__all__ = [
    "FailureScenario",
    "FailureLocation",
    "OverlapSpec",
    "resolve_events",
    "paper_scenarios",
    "PAPER_FAILURE_COUNTS",
    "PAPER_PROGRESS_FRACTIONS",
]
