"""``repro.lint`` -- project-specific static-invariant linter.

The exact-state-reconstruction claims of this code base only hold if the
simulator obeys strict invariants: charges booked for every simulated
operation, no reads from memory on failed nodes, deterministic seeded
replay.  Bit-identity tests enforce those invariants implicitly -- and can
silently stop covering new code paths.  This package enforces them
*statically*, as an AST-based rule engine with project-specific rules, each
carrying an ID, a docstring and a pinned allowlist:

============ ==============================================================
``R001``     no unseeded RNG (``np.random.*`` legacy API, stdlib ``random``)
``R002``     no wallclock reads outside the pinned timing allowlist
``R003``     every registered solver/preconditioner name is test-covered
``R004``     no direct node-memory access outside the storage layer
``R005``     no iteration over unordered sets feeding reductions/schedules
``R006``     no mutable default arguments; no ``object.__setattr__`` on
             frozen specs outside the spec module
``R007``     no nondeterminism (wallclock, unseeded RNG, ``id()``,
             ``os.environ``, set-order) flowing -- through any call chain
             -- into ledger charges, communicator payloads, failure
             schedules, or solver results
``R008``     every communication path passes a CostLedger charging site;
             pending-mail internals stay inside ``cluster/``
``R009``     collective contributions span the full/alive rank set, never
             a literal rank subset; every send tag has a matching recv
``R010``     solver hook overrides call ``super()``; recovery-state writes
             go through ``NodeBlockStore.restore_block``
============ ==============================================================

R001--R006 are per-file AST checks; R007--R010 are interprocedural,
built on a project-wide call graph (:mod:`repro.lint.callgraph`) and a
taint engine (:mod:`repro.lint.dataflow`), and their messages carry the
full call/taint trace (``a.py:12 -> b.py:40 -> sink``).

Run it as ``python -m repro.lint [paths...]`` (defaults to ``src/repro``);
see :mod:`repro.lint.cli` for options and :data:`repro.lint.allowlists`
for the pinned allowlists.  Suppress a single finding with a trailing
``# noqa: R00X`` comment -- and a justification next to it.
"""

from .engine import LintError, Project, Rule, SourceFile, Violation, run_lint
from .registry import ALL_RULES, get_rule, rule_ids

__all__ = [
    "ALL_RULES",
    "LintError",
    "Project",
    "Rule",
    "SourceFile",
    "Violation",
    "get_rule",
    "rule_ids",
    "run_lint",
]
