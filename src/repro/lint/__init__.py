"""``repro.lint`` -- project-specific static-invariant linter.

The exact-state-reconstruction claims of this code base only hold if the
simulator obeys strict invariants: charges booked for every simulated
operation, no reads from memory on failed nodes, deterministic seeded
replay.  Bit-identity tests enforce those invariants implicitly -- and can
silently stop covering new code paths.  This package enforces them
*statically*, as an AST-based rule engine with project-specific rules, each
carrying an ID, a docstring and a pinned allowlist:

============ ==============================================================
``R001``     no unseeded RNG (``np.random.*`` legacy API, stdlib ``random``)
``R002``     no wallclock reads outside the pinned timing allowlist
``R003``     every registered solver/preconditioner name is test-covered
``R004``     no direct node-memory access outside the storage layer
``R005``     no iteration over unordered sets feeding reductions/schedules
``R006``     no mutable default arguments; no ``object.__setattr__`` on
             frozen specs outside the spec module
============ ==============================================================

Run it as ``python -m repro.lint [paths...]`` (defaults to ``src/repro``);
see :mod:`repro.lint.cli` for options and :data:`repro.lint.allowlists`
for the pinned allowlists.  Suppress a single finding with a trailing
``# noqa: R00X`` comment -- and a justification next to it.
"""

from .engine import LintError, Project, Rule, SourceFile, Violation, run_lint
from .registry import ALL_RULES, get_rule, rule_ids

__all__ = [
    "ALL_RULES",
    "LintError",
    "Project",
    "Rule",
    "SourceFile",
    "Violation",
    "get_rule",
    "rule_ids",
    "run_lint",
]
