"""Pinned allowlists of :mod:`repro.lint`.

Every entry is a deliberate, reviewed exemption: the module is *supposed*
to do what the rule forbids everywhere else.  Extending an allowlist is an
API-review-level change -- add the pattern here (patterns are ``fnmatch``
globs matched against the package-relative path, see
:func:`repro.lint.engine.path_matches`) together with a comment saying why
the module needs the exemption.  Prefer a line-local ``# noqa: R00X`` for
one-off cases; prefer *fixing the code* over either.
"""

from __future__ import annotations

from typing import Dict, Tuple

ALLOWLISTS: Dict[str, Tuple[str, ...]] = {
    # R001 -- utils/rng.py is the sanctioned seed funnel: it owns the only
    # ``default_rng`` calls that may legally receive ``None`` (explicitly
    # documented as the non-deterministic escape hatch).
    "R001": (
        "utils/rng.py",
    ),
    # R002 -- wallclock may only be read where *host* time is the measured
    # quantity, never where it could leak into simulated charges:
    #   - harness/experiment.py reports wallclock next to simulated time;
    #   - core/reconstruction.py times the driver-side recovery solve;
    #   - service/service.py drives the batching windows and the per-request
    #     latency accounting off host-monotonic time (queue wait / batch
    #     wait / solve seconds are host quantities by definition; simulated
    #     charges come from the ledger, never from this clock).  The
    #     exemption is deliberately this one file, not the service package:
    #     policies/accounting/traffic receive instants as parameters and
    #     must stay clock-free.
    "R002": (
        "harness/experiment.py",
        "core/reconstruction.py",
        "service/service.py",
    ),
    # R003 -- no exemptions: every registered name must be test-covered.
    "R003": (),
    # R004 -- the storage layer itself: these modules implement the
    # node-memory contract (or instrument it, in the sanitizer's case) and
    # are exactly the code the rule protects from being bypassed.
    "R004": (
        "cluster/node.py",
        "cluster/__init__.py",
        "distributed/blockstore.py",
        "distributed/dmatrix.py",
        "distributed/dvector.py",
        "distributed/dmultivector.py",
        "core/esr.py",
        "sanitizer.py",
    ),
    # R005 -- no exemptions: sort before iterating.
    "R005": (),
    # R006 -- frozen-spec normalisation is the one sanctioned use of
    # ``object.__setattr__``: the spec module and the frozen FailureEvent.
    "R006": (
        "core/spec.py",
        "cluster/failure.py",
    ),
    # R007 -- flow violations are anchored at the taint *origin*, so these
    # are the modules sanctioned to *produce* nondeterminism (the same
    # modules R001/R002 pin):
    #   - utils/rng.py owns the documented unseeded escape hatch;
    #   - harness/experiment.py measures host wallclock by design (its
    #     values feed host-timing reports, never simulated charges);
    #   - core/reconstruction.py times the driver-side recovery solve and
    #     stores the measurement in RecoveryReport's wallclock field;
    #   - service/service.py is the R002-exempted wallclock reader of the
    #     serving layer: its monotonic instants flow only into the
    #     latency fields of RequestResult/ServiceStats (excluded from the
    #     deterministic ``aggregate()`` view by design).
    "R007": (
        "utils/rng.py",
        "harness/experiment.py",
        "core/reconstruction.py",
        "service/service.py",
    ),
    # R008 -- no exemptions: every comm path charges the ledger.
    "R008": (),
    # R009 -- no exemptions: collectives span the (alive) rank set.
    "R009": (),
    # R010 -- no exemptions: hook overrides chain to super(), recovery
    # writes go through restore_block.
    "R010": (),
}
