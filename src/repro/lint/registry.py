"""The project rule set of :mod:`repro.lint`.

One place lists every enforced rule; the CLI, the tests and the docs all
read from here.  Adding a rule means adding the class to
:data:`ALL_RULES` (and, if it needs exemptions, a pinned entry in
:mod:`repro.lint.allowlists`).
"""

from __future__ import annotations

from typing import Tuple

from .engine import Rule
from .rules_determinism import (
    UnorderedIterationRule,
    UnseededRngRule,
    WallclockRule,
)
from .rules_flow import (
    ChargeCoverageRule,
    CollectiveConsistencyRule,
    HookContractRule,
    NondeterminismFlowRule,
)
from .rules_structure import (
    FrozenSpecRule,
    NodeMemoryAccessRule,
    RegisteredNameCoverageRule,
)

#: Every enforced rule, in ID order.
ALL_RULES: Tuple[Rule, ...] = (
    UnseededRngRule(),
    WallclockRule(),
    RegisteredNameCoverageRule(),
    NodeMemoryAccessRule(),
    UnorderedIterationRule(),
    FrozenSpecRule(),
    NondeterminismFlowRule(),
    ChargeCoverageRule(),
    CollectiveConsistencyRule(),
    HookContractRule(),
)


def rule_ids() -> Tuple[str, ...]:
    """The enforced rule IDs, in order."""
    return tuple(rule.id for rule in ALL_RULES)


def get_rule(rule_id: str) -> Rule:
    """The rule instance registered under *rule_id* (case-insensitive)."""
    for rule in ALL_RULES:
        if rule.id.upper() == rule_id.upper():
            return rule
    raise KeyError(
        f"unknown rule {rule_id!r}; enforced rules: {', '.join(rule_ids())}")
