"""Taint dataflow of :mod:`repro.lint`: sources, sinks, sanitizers.

R001/R002/R005 flag nondeterminism at the point it is *produced*; this
module tracks where it *goes*.  A per-function, context-insensitive
analysis propagates taint through local def-use chains and -- via cached
:class:`Summary` objects over the :mod:`~repro.lint.callgraph` -- through
call chains, so a helper that reads ``time.time()`` three files away from
the ledger charge it feeds is still caught.

Model
-----
* **Sources** -- wallclock reads (R002's list), unseeded RNG (R001's
  list plus the stdlib ``random`` module), ``id()``, ``os.environ`` /
  ``os.getenv``, and iteration over a literal set / ``set()`` call
  (hash-order nondeterminism).
* **Sinks** -- ``CostLedger`` charging calls, ``Communicator``
  primitive payloads, failure-schedule constructors, and solver-result
  constructors (:data:`SINK_CHARGE` / :data:`SINK_PAYLOAD` /
  :data:`SINK_CONSTRUCTORS`).
* **Sanitizers** -- ``sorted(...)`` / ``len(...)`` kill set-order taint
  (a sorted set is deterministic); no sanitizer launders wallclock or RNG.

Summaries record which *parameters* reach sinks and which reach the
return value, so taint crosses function boundaries in both directions;
each flow keeps its full hop trace (``a.py:12 -> b.py:40``) and is
anchored at the taint's **origin**, which makes the engine's per-file
allowlist/``# noqa`` machinery mean "this source is sanctioned here".
Recursion is cut by an in-progress guard and call depth is bounded by
:data:`MAX_DEPTH`; everything is cached per function, so the whole tree
analyzes in well under the ten-second budget.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, FunctionInfo
from .engine import dotted_name
from .rules_determinism import UnseededRngRule, WallclockRule

#: Maximum interprocedural call depth followed from any one function.
MAX_DEPTH = 8

#: ``CostLedger`` charging methods: their arguments become simulated cost.
SINK_CHARGE = frozenset({
    "add_time", "add_overlapped", "add_traffic", "_charge_message",
})

#: ``Communicator`` primitives whose arguments travel between ranks.
SINK_PAYLOAD = frozenset({
    "send", "allreduce_sum", "bcast", "gather", "allgather",
})

#: Constructors whose fields are replayed results / failure schedules.
SINK_CONSTRUCTORS: Dict[str, str] = {
    "FailureEvent": "failure-schedule construction",
    "TraceEvent": "failure-schedule construction",
    "FailureTrace": "failure-schedule construction",
    "SolveResult": "solver-result construction",
    "DistributedSolveResult": "solver-result construction",
    "BlockSolveResult": "solver-result construction",
    "RecoveryReport": "solver-result construction",
}

#: Builtin calls that neutralise set-order taint (and only that kind).
SANITIZERS = frozenset({"sorted", "len"})

_WALLCLOCK_DOTTED = WallclockRule._DOTTED
_RNG_RULE = UnseededRngRule()


@dataclass(frozen=True)
class Taint:
    """One tainted value: what kind of nondeterminism, and its hop trace.

    ``param`` is set for the synthetic taint seeded on function
    parameters; such taints never surface directly -- they turn into
    :class:`ParamSink`/``param_returns`` summary entries instead.
    """

    kind: str
    detail: str
    #: ``path:line`` hops from the source towards the current value.
    trace: Tuple[str, ...]
    param: Optional[int] = None


@dataclass(frozen=True)
class ParamSink:
    """Summary fact: parameter *param* reaches *sink_label* inside the
    function, via the recorded intra/inter-procedural hops."""

    param: int
    sink_label: str
    trace: Tuple[str, ...]


@dataclass(frozen=True)
class TaintFlow:
    """One complete source-to-sink flow, anchored at the source origin."""

    kind: str
    detail: str
    sink_label: str
    origin_path: str
    origin_line: int
    trace: Tuple[str, ...]

    def render_trace(self) -> str:
        return " -> ".join(self.trace)


@dataclass(frozen=True)
class Summary:
    """Cached per-function facts the callers of a function need."""

    returns: Tuple[Taint, ...]
    param_returns: Tuple[int, ...]
    param_sinks: Tuple[ParamSink, ...]
    flows: Tuple[TaintFlow, ...]


_EMPTY_SUMMARY = Summary(returns=(), param_returns=(), param_sinks=(),
                         flows=())


class _State:
    """Mutable per-function analysis state (environment + found facts)."""

    def __init__(self) -> None:
        self.env: Dict[str, Tuple[Taint, ...]] = {}
        self.returns: Set[Taint] = set()
        self.param_returns: Set[int] = set()
        self.param_sinks: Set[ParamSink] = set()
        self.flows: Set[TaintFlow] = set()


class TaintAnalyzer:
    """Interprocedural taint propagation over one call graph."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._summaries: Dict[str, Summary] = {}
        self._in_progress: Set[str] = set()

    # -- public API --------------------------------------------------------
    def flows(self) -> List[TaintFlow]:
        """Every source-to-sink flow in the project, origin-sorted.

        Each flow is reported by the summary of the function whose body
        contains the *source*, so the list is duplicate-free even when
        several callers share a tainted helper.
        """
        out: Set[TaintFlow] = set()
        for func in sorted(self.graph.functions.values(),
                           key=lambda f: f.qualname):
            out.update(self.summary(func).flows)
        return sorted(out, key=lambda f: (f.origin_path, f.origin_line,
                                          f.sink_label, f.trace))

    def summary(self, func: FunctionInfo, depth: int = 0) -> Summary:
        cached = self._summaries.get(func.qualname)
        if cached is not None:
            return cached
        if func.qualname in self._in_progress or depth > MAX_DEPTH:
            return _EMPTY_SUMMARY
        self._in_progress.add(func.qualname)
        try:
            result = self._analyze(func, depth)
        finally:
            self._in_progress.discard(func.qualname)
        self._summaries[func.qualname] = result
        return result

    # -- per-function analysis ---------------------------------------------
    @staticmethod
    def _param_names(func: FunctionInfo) -> List[str]:
        args = getattr(func.node, "args", None)
        if args is None:
            return []
        names = [a.arg for a in [*args.posonlyargs, *args.args]]
        if func.class_name is not None and names and \
                names[0] in ("self", "cls"):
            names = names[1:]
        names.extend(a.arg for a in args.kwonlyargs)
        return names

    def _analyze(self, func: FunctionInfo, depth: int) -> Summary:
        state = _State()
        for index, name in enumerate(self._param_names(func)):
            state.env[name] = (Taint(kind="param", detail=name, trace=(),
                                     param=index),)
        self._exec_block(getattr(func.node, "body", []), state, func, depth)
        return Summary(
            returns=tuple(sorted((t for t in state.returns
                                  if t.param is None),
                                 key=lambda t: (t.kind, t.detail, t.trace))),
            param_returns=tuple(sorted(state.param_returns)),
            param_sinks=tuple(sorted(state.param_sinks,
                                     key=lambda s: (s.param, s.sink_label,
                                                    s.trace))),
            flows=tuple(sorted(state.flows,
                               key=lambda f: (f.origin_path, f.origin_line,
                                              f.sink_label, f.trace))),
        )

    def _exec_block(self, stmts: Sequence[ast.stmt], state: _State,
                    func: FunctionInfo, depth: int) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, state, func, depth)

    def _exec_stmt(self, stmt: ast.stmt, state: _State,
                   func: FunctionInfo, depth: int) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value, state, func, depth)
            for target in stmt.targets:
                self._bind(target, taints, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target,
                           self._eval(stmt.value, state, func, depth), state)
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value, state, func, depth)
            if isinstance(stmt.target, ast.Name):
                existing = state.env.get(stmt.target.id, ())
                state.env[stmt.target.id] = self._merge(existing, taints)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                for taint in self._eval(stmt.value, state, func, depth):
                    if taint.param is not None:
                        state.param_returns.add(taint.param)
                    else:
                        state.returns.add(taint)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            taints = self._eval(stmt.iter, state, func, depth)
            if _is_set_display(stmt.iter):
                taints = self._merge(taints, (Taint(
                    kind="set-order", detail="unordered set iteration",
                    trace=(self._loc(func, stmt.iter),)),))
            self._bind(stmt.target, taints, state)
            # Loop bodies run twice so taint assigned late in the body
            # reaches uses earlier in it (one round of loop-carried
            # propagation -- enough for the accumulate-then-use shapes).
            self._exec_block(stmt.body, state, func, depth)
            self._exec_block(stmt.body, state, func, depth)
            self._exec_block(stmt.orelse, state, func, depth)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, state, func, depth)
            self._exec_block(stmt.body, state, func, depth)
            self._exec_block(stmt.body, state, func, depth)
            self._exec_block(stmt.orelse, state, func, depth)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, state, func, depth)
            self._exec_block(stmt.body, state, func, depth)
            self._exec_block(stmt.orelse, state, func, depth)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._eval(item.context_expr, state, func, depth)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints, state)
            self._exec_block(stmt.body, state, func, depth)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, state, func, depth)
            for handler in stmt.handlers:
                self._exec_block(handler.body, state, func, depth)
            self._exec_block(stmt.orelse, state, func, depth)
            self._exec_block(stmt.finalbody, state, func, depth)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, state, func, depth)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            pass  # nested scopes are analyzed as their own functions
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, state, func, depth)

    def _bind(self, target: ast.expr, taints: Sequence[Taint],
              state: _State) -> None:
        if isinstance(target, ast.Name):
            state.env[target.id] = tuple(taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taints, state)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taints, state)
        # attribute/subscript stores are not tracked (no object fields)

    @staticmethod
    def _merge(*groups: Sequence[Taint]) -> Tuple[Taint, ...]:
        out: List[Taint] = []
        seen: Set[Taint] = set()
        for group in groups:
            for taint in group:
                if taint not in seen:
                    seen.add(taint)
                    out.append(taint)
        return tuple(out)

    @staticmethod
    def _loc(func: FunctionInfo, node: ast.AST) -> str:
        return f"{func.path}:{getattr(node, 'lineno', func.line)}"

    # -- expression evaluation ---------------------------------------------
    def _eval(self, node: ast.expr, state: _State, func: FunctionInfo,
              depth: int) -> Tuple[Taint, ...]:
        if isinstance(node, ast.Name):
            return state.env.get(node.id, ())
        if isinstance(node, ast.Constant):
            return ()
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name in _WALLCLOCK_DOTTED:
                return (self._source("wallclock", name, func, node),)
            if name == "os.environ":
                return (self._source("os.environ", name, func, node),)
            return self._eval(node.value, state, func, depth)
        if isinstance(node, ast.Call):
            return self._eval_call(node, state, func, depth)
        if isinstance(node, ast.BinOp):
            return self._merge(self._eval(node.left, state, func, depth),
                               self._eval(node.right, state, func, depth))
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, state, func, depth)
        if isinstance(node, ast.BoolOp):
            return self._merge(*[self._eval(v, state, func, depth)
                                 for v in node.values])
        if isinstance(node, ast.Compare):
            return self._merge(self._eval(node.left, state, func, depth),
                               *[self._eval(c, state, func, depth)
                                 for c in node.comparators])
        if isinstance(node, ast.Subscript):
            return self._merge(self._eval(node.value, state, func, depth),
                               self._eval(node.slice, state, func, depth))
        if isinstance(node, ast.IfExp):
            self._eval(node.test, state, func, depth)
            return self._merge(self._eval(node.body, state, func, depth),
                               self._eval(node.orelse, state, func, depth))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return self._merge(*[self._eval(e, state, func, depth)
                                 for e in node.elts])
        if isinstance(node, ast.Dict):
            groups = [self._eval(k, state, func, depth)
                      for k in node.keys if k is not None]
            groups += [self._eval(v, state, func, depth) for v in node.values]
            return self._merge(*groups)
        if isinstance(node, ast.JoinedStr):
            return self._merge(*[self._eval(v, state, func, depth)
                                 for v in node.values])
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value, state, func, depth)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comprehension(node, state, func, depth)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, state, func, depth)
        if isinstance(node, ast.NamedExpr):
            taints = self._eval(node.value, state, func, depth)
            self._bind(node.target, taints, state)
            return taints
        if isinstance(node, ast.Await):
            return self._eval(node.value, state, func, depth)
        if isinstance(node, ast.Lambda):
            return ()
        return ()

    def _eval_comprehension(self, node: ast.expr, state: _State,
                            func: FunctionInfo, depth: int
                            ) -> Tuple[Taint, ...]:
        # Comprehension variables are bound in the enclosing environment;
        # the tiny over-approximation (the name staying bound afterwards)
        # is harmless for lint purposes.
        for gen in getattr(node, "generators", []):
            taints = self._eval(gen.iter, state, func, depth)
            if _is_set_display(gen.iter):
                taints = self._merge(taints, (Taint(
                    kind="set-order", detail="unordered set iteration",
                    trace=(self._loc(func, gen.iter),)),))
            self._bind(gen.target, taints, state)
            for cond in gen.ifs:
                self._eval(cond, state, func, depth)
        parts: List[Tuple[Taint, ...]] = []
        for attr in ("elt", "key", "value"):
            sub = getattr(node, attr, None)
            if isinstance(sub, ast.expr):
                parts.append(self._eval(sub, state, func, depth))
        result = self._merge(*parts)
        if isinstance(node, (ast.SetComp, ast.DictComp)):
            # Building a set/dict from a set is order-insensitive.
            result = tuple(t for t in result if t.kind != "set-order")
        return result

    # -- call handling -----------------------------------------------------
    def _eval_call(self, call: ast.Call, state: _State, func: FunctionInfo,
                   depth: int) -> Tuple[Taint, ...]:
        pos_taints: List[Tuple[Taint, ...]] = []
        for arg in call.args:
            if isinstance(arg, ast.Starred):
                pos_taints.append(self._eval(arg.value, state, func, depth))
            else:
                pos_taints.append(self._eval(arg, state, func, depth))
        kw_taints: Dict[str, Tuple[Taint, ...]] = {}
        star_kw: List[Tuple[Taint, ...]] = []
        for kw in call.keywords:
            evaluated = self._eval(kw.value, state, func, depth)
            if kw.arg is None:
                star_kw.append(evaluated)
            else:
                kw_taints[kw.arg] = evaluated
        all_args = self._merge(*pos_taints, *kw_taints.values(), *star_kw)

        # Sinks: record every tainted argument reaching one.
        sink_label = self._sink_label(call)
        if sink_label is not None:
            for taint in all_args:
                self._record_sink(taint, sink_label, call, state, func)

        fname = dotted_name(call.func)

        # Sanitizers neutralise set-order taint only.
        if fname in SANITIZERS:
            return tuple(t for t in all_args if t.kind != "set-order")

        # Sources.
        source = self._call_source(call, fname, func)
        if source is not None:
            return (source,)

        # Resolved project calls: consult callee summaries.
        targets = self.graph.resolve_call(func, call) \
            if depth < MAX_DEPTH else []
        if targets:
            return self._apply_summaries(call, targets, pos_taints,
                                         kw_taints, state, func, depth)

        # Unresolved: conservative passthrough of arguments + receiver
        # (so ``rng.normal()`` stays tainted when ``rng`` is).
        receiver: Tuple[Taint, ...] = ()
        if isinstance(call.func, ast.Attribute):
            receiver = self._eval(call.func.value, state, func, depth)
        return self._merge(all_args, receiver)

    @staticmethod
    def _sink_label(call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Attribute):
            if call.func.attr in SINK_CHARGE:
                return "CostLedger charge"
            if call.func.attr in SINK_PAYLOAD:
                return "Communicator payload"
        fname = dotted_name(call.func)
        if fname is not None:
            return SINK_CONSTRUCTORS.get(fname.split(".")[-1])
        return None

    def _record_sink(self, taint: Taint, sink_label: str, call: ast.Call,
                     state: _State, func: FunctionInfo) -> None:
        sink_loc = self._loc(func, call)
        if taint.param is not None:
            state.param_sinks.add(ParamSink(
                param=taint.param, sink_label=sink_label,
                trace=taint.trace + (sink_loc,)))
        else:
            state.flows.add(self._flow(taint, sink_label,
                                       taint.trace + (sink_loc,)))

    @staticmethod
    def _flow(taint: Taint, sink_label: str,
              trace: Tuple[str, ...]) -> TaintFlow:
        origin_path, _, origin_line = trace[0].rpartition(":")
        return TaintFlow(kind=taint.kind, detail=taint.detail,
                         sink_label=sink_label, origin_path=origin_path,
                         origin_line=int(origin_line), trace=trace)

    def _source(self, kind: str, detail: str, func: FunctionInfo,
                node: ast.AST) -> Taint:
        return Taint(kind=kind, detail=detail,
                     trace=(self._loc(func, node),))

    def _call_source(self, call: ast.Call, fname: Optional[str],
                     func: FunctionInfo) -> Optional[Taint]:
        if fname is None:
            return None
        if fname == "id":
            return self._source("id()", "id()", func, call)
        if fname in ("os.getenv", "os.environ.get"):
            return self._source("os.environ", fname, func, call)
        if fname in _WALLCLOCK_DOTTED:
            return self._source("wallclock", f"{fname}()", func, call)
        if fname.startswith("random.") and "." not in fname[len("random."):]:
            return self._source("unseeded RNG", fname, func, call)
        tail = _RNG_RULE._numpy_random_attr(fname)
        if tail is not None:
            if tail == "default_rng":
                if UnseededRngRule._is_unseeded_default_rng(call):
                    return self._source(
                        "unseeded RNG", "np.random.default_rng()",
                        func, call)
            elif tail not in UnseededRngRule._SAFE_TYPES:
                return self._source("unseeded RNG", f"np.random.{tail}",
                                    func, call)
        return None

    def _apply_summaries(self, call: ast.Call,
                         targets: Sequence[FunctionInfo],
                         pos_taints: Sequence[Tuple[Taint, ...]],
                         kw_taints: Dict[str, Tuple[Taint, ...]],
                         state: _State, func: FunctionInfo,
                         depth: int) -> Tuple[Taint, ...]:
        call_loc = self._loc(func, call)
        result: List[Tuple[Taint, ...]] = []
        for target in targets:
            summ = self.summary(target, depth + 1)
            names = self._param_names(target)
            by_param: Dict[int, Tuple[Taint, ...]] = {}
            for j, taints in enumerate(pos_taints):
                if j < len(names) and taints:
                    by_param[j] = taints
            for kw_name, taints in kw_taints.items():
                if kw_name in names and taints:
                    by_param[names.index(kw_name)] = self._merge(
                        by_param.get(names.index(kw_name), ()), taints)
            # Taint returned out of the callee (extended by this hop).
            result.append(tuple(
                Taint(kind=t.kind, detail=t.detail,
                      trace=t.trace + (call_loc,))
                for t in summ.returns))
            # Arguments whose taint the callee returns.
            for index in summ.param_returns:
                for taint in by_param.get(index, ()):
                    result.append((Taint(kind=taint.kind, detail=taint.detail,
                                         trace=taint.trace + (call_loc,),
                                         param=taint.param),))
            # Arguments the callee forwards into a sink.
            for sink in summ.param_sinks:
                for taint in by_param.get(sink.param, ()):
                    trace = taint.trace + (call_loc,) + sink.trace
                    if taint.param is not None:
                        state.param_sinks.add(ParamSink(
                            param=taint.param, sink_label=sink.sink_label,
                            trace=trace))
                    else:
                        state.flows.add(self._flow(taint, sink.sink_label,
                                                   trace))
        return self._merge(*result)


def _is_set_display(node: ast.expr) -> bool:
    """A literal set, set comprehension, or bare ``set()``/``frozenset()``
    call -- iterating one is hash-order nondeterministic."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    return False


def analyze(graph: CallGraph) -> List[TaintFlow]:
    """Convenience wrapper: all taint flows of *graph*'s project."""
    return TaintAnalyzer(graph).flows()
