"""Command-line entry point: ``python -m repro.lint [paths...]``.

Exit codes: ``0`` clean, ``1`` violations found, ``2`` usage/run error
(unknown rule, unparseable file, bad path).  CI runs this as a blocking
job and uploads the ``--format json`` report as a build artifact; see
``CONTRIBUTING.md`` for the rule catalogue and how to extend the pinned
allowlists.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

from .allowlists import ALLOWLISTS
from .engine import LintError, Violation, run_lint
from .registry import ALL_RULES, get_rule, rule_ids


def _default_paths() -> List[Path]:
    """``src/repro`` from a repo checkout, else the installed package dir."""
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [candidate]
    return [Path(__file__).resolve().parent.parent]


def _describe_rule(rule_id: str) -> str:
    rule = get_rule(rule_id)
    doc = textwrap.dedent(rule.__class__.__doc__ or "").strip()
    allow = ALLOWLISTS.get(rule.id, ())
    allow_text = ", ".join(allow) if allow else "(none)"
    return (
        f"{rule.id}: {rule.title}\n"
        + textwrap.indent(doc, "    ")
        + f"\n    allowlist: {allow_text}"
    )


def _list_rules() -> str:
    return "\n\n".join(_describe_rule(rule.id) for rule in ALL_RULES)


def _json_report(violations: Sequence[Violation],
                 paths: Sequence[Path]) -> str:
    """Stable, sorted JSON for CI artifacts.

    The violation list inherits the engine's ``(path, line, col, rule_id)``
    ordering and every key is emitted sorted, so two runs over the same
    tree produce byte-identical reports.
    """
    payload = {
        "paths": sorted(str(p) for p in paths),
        "rules": list(rule_ids()),
        "violation_count": len(violations),
        "violations": [
            {
                "rule_id": v.rule_id,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static-invariant linter "
                    f"(rules {', '.join(rule_ids())}).",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or package directories to scan (default: src/repro)")
    parser.add_argument(
        "--tests-dir", type=Path, default=None,
        help="test-suite directory for cross-referencing rules "
             "(default: auto-discovered next to the scanned root)")
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule IDs to run (default: all)")
    parser.add_argument(
        "--format", dest="fmt", choices=("text", "json"), default="text",
        help="output format: human-readable text (default) or a stable, "
             "sorted JSON report for CI artifacts")
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print one rule's documentation + allowlist policy and exit")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue (IDs, docs, allowlists) and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.explain is not None:
        try:
            print(_describe_rule(args.explain))
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0

    paths = args.paths if args.paths else _default_paths()
    select = None
    if args.select is not None:
        select = [s for s in args.select.split(",") if s.strip()]
    try:
        violations = run_lint(paths, rules=ALL_RULES,
                              tests_dir=args.tests_dir, select=select)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.fmt == "json":
        print(_json_report(violations, paths))
        return 1 if violations else 0

    for violation in violations:
        print(violation.format())
    if violations:
        print(f"{len(violations)} violation(s) found "
              f"(run with --list-rules for the rule catalogue)",
              file=sys.stderr)
        return 1
    scanned = ", ".join(str(p) for p in paths)
    print(f"repro.lint: {scanned} clean ({len(rule_ids())} rules)")
    return 0
