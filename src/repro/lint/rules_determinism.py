"""Determinism rules: seeded RNG, no wallclock, ordered iteration.

These three rules protect the property the whole reproduction rests on:
a solve is a pure function of ``(problem, spec, seed)``.  Unseeded RNG
breaks replay, wallclock reads let host timing leak into simulated
charges, and iteration over unordered sets feeds hash-order-dependent
accumulation into ledger reductions and message schedules (Python string
hashing is randomised per process, so such code is bit-unstable *across*
runs even when it looks deterministic within one).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from .engine import Rule, SourceFile, Violation, dotted_name


class UnseededRngRule(Rule):
    """R001: all randomness must flow through explicitly seeded generators.

    Flags the stdlib ``random`` module (global, process-seeded state) and
    NumPy's legacy global-state API (``np.random.rand``, ``np.random.seed``,
    ``np.random.RandomState``, ...), plus ``np.random.default_rng()`` called
    without a seed (or with a literal ``None``).  The sanctioned pattern is
    :func:`repro.utils.rng.as_rng` / ``np.random.default_rng(seed)`` with an
    explicit seed threaded from the experiment configuration.
    """

    id = "R001"
    title = "no unseeded RNG"

    _NUMPY_RANDOM = ("np.random.", "numpy.random.")
    #: CamelCase ``np.random`` attributes that are fine to reference/call
    #: (generator and seeding *types*, not global-state draws).
    _SAFE_TYPES = frozenset({
        "Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM",
        "Philox", "SFC64", "MT19937",
    })

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or \
                            alias.name.startswith("random."):
                        yield self.violation(
                            src, node,
                            "stdlib 'random' uses unseeded global state; "
                            "use repro.utils.rng.as_rng(seed)")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.violation(
                        src, node,
                        "stdlib 'random' uses unseeded global state; "
                        "use repro.utils.rng.as_rng(seed)")
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                tail = self._numpy_random_attr(name)
                if tail is None:
                    continue
                if tail == "default_rng":
                    if self._is_unseeded_default_rng(node):
                        yield self.violation(
                            src, node,
                            "np.random.default_rng() without a seed is "
                            "unreproducible; pass an explicit seed")
                elif tail == "RandomState" or tail not in self._SAFE_TYPES:
                    yield self.violation(
                        src, node,
                        f"np.random.{tail} draws from legacy global RNG "
                        "state; use a seeded np.random.default_rng(seed)")

    def _numpy_random_attr(self, name: str) -> Optional[str]:
        for prefix in self._NUMPY_RANDOM:
            if name.startswith(prefix):
                tail = name[len(prefix):]
                if tail and "." not in tail:
                    return tail
        return None

    @staticmethod
    def _is_unseeded_default_rng(call: ast.Call) -> bool:
        if not call.args and not call.keywords:
            return True
        first = call.args[0] if call.args else None
        for kw in call.keywords:
            if kw.arg == "seed":
                first = kw.value
        return isinstance(first, ast.Constant) and first.value is None


class WallclockRule(Rule):
    """R002: no wallclock reads outside the pinned timing allowlist.

    The simulated clock is the :class:`~repro.cluster.cost_model.CostLedger`;
    simulated charges must never depend on host timing, or identical solves
    stop producing identical ledgers.  Flags ``time.time``/``perf_counter``/
    ``monotonic``/``process_time`` (and their ``_ns`` variants, referenced or
    imported) plus ``datetime.now``-style constructors.  Modules that
    legitimately *measure* host performance (the experiment harness, the
    reconstruction wallclock report) are pinned in the allowlist.
    """

    id = "R002"
    title = "no wallclock outside the timing allowlist"

    _TIME_FUNCS = frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    })
    _DOTTED = frozenset(
        {f"time.{f}" for f in _TIME_FUNCS} |
        {"datetime.datetime.now", "datetime.datetime.utcnow",
         "datetime.datetime.today", "datetime.date.today",
         "datetime.now", "datetime.utcnow", "datetime.today", "date.today"}
    )

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._TIME_FUNCS:
                        yield self.violation(
                            src, node,
                            f"importing wallclock 'time.{alias.name}'; "
                            "simulated charges must come from the CostLedger")
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name in self._DOTTED:
                    yield self.violation(
                        src, node,
                        f"wallclock read '{name}' outside the timing "
                        "allowlist; simulated charges must come from the "
                        "CostLedger")


class UnorderedIterationRule(Rule):
    """R005: no iteration over unordered sets feeding reductions/schedules.

    ``for x in some_set`` (or a list/generator comprehension over one)
    visits elements in hash order, which for strings is randomised per
    process: a float accumulation or a message schedule built that way is
    bit-unstable across runs.  The rule flags ``for`` statements and
    list/generator comprehensions whose iterable is a set display, a set
    comprehension, a ``set()``/``frozenset()`` call, a set-operator
    expression, or a local name assigned from one.  Wrap the iterable in
    ``sorted(...)`` instead -- set *construction* and membership tests are
    untouched, and iterating a set into another set (``{... for x in s}``)
    is order-insensitive and not flagged.
    """

    id = "R005"
    title = "no unordered-set iteration"

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        # Scopes are checked independently so local-name tracking cannot
        # leak between functions (nested defs are their own scopes).
        for scope in self._scopes(src.tree):
            set_names = self._set_typed_names(scope)
            for node in self._walk_scope(scope):
                iters: List[ast.expr] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if self._is_set_expr(it, set_names):
                        yield self.violation(
                            src, it,
                            "iterating an unordered set; order is "
                            "hash-randomised across processes -- wrap the "
                            "iterable in sorted(...)")

    @classmethod
    def _scopes(cls, tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @classmethod
    def _walk_scope(cls, scope: ast.AST) -> Iterator[ast.AST]:
        """Walk *scope* without descending into nested function scopes."""
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield child
            yield from cls._walk_scope(child)

    @classmethod
    def _set_typed_names(cls, scope: ast.AST) -> Set[str]:
        """Local names assigned (only) from set-producing expressions."""
        assigned_set: Set[str] = set()
        assigned_other: Set[str] = set()
        for node in cls._walk_scope(scope):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AugAssign):
                # ``s |= ...`` / ``&=`` / ``-=`` / ``^=`` keep the set type;
                # any other augmented op demotes the name.
                if isinstance(node.target, ast.Name) and not isinstance(
                        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
                    assigned_other.add(node.target.id)
                continue
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    if cls._is_set_expr(value, assigned_set):
                        assigned_set.add(target.id)
                    else:
                        assigned_other.add(target.id)
        return assigned_set - assigned_other

    @classmethod
    def _is_set_expr(cls, node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return cls._is_set_expr(node.left, set_names) or \
                cls._is_set_expr(node.right, set_names)
        if isinstance(node, ast.Name):
            return node.id in set_names
        return False
