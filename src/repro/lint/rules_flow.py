"""Interprocedural flow rules R007--R010.

These rules consume the :mod:`~repro.lint.callgraph` symbol table and the
:mod:`~repro.lint.dataflow` taint engine; unlike R001--R006 they reason
about call *chains*, so each violation message carries the full hop trace
(``a.py:12 -> b.py:40 -> sink``).  Violations are anchored at the most
actionable location -- the taint's origin for R007, the offending call or
store site for R008--R010 -- which is also where the allowlist and
``# noqa`` machinery applies.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import CallGraph, ClassInfo, FunctionInfo, get_callgraph
from .dataflow import SINK_CHARGE, TaintAnalyzer
from .engine import Project, Rule, SourceFile, Violation

#: Communicator primitives (R008/R009).  ``recv`` is deliberately uncharged
#: in the cost model (the matching ``send`` paid for the transfer).
COMM_PRIMITIVES = frozenset({
    "send", "recv", "allreduce_sum", "bcast", "gather", "allgather",
    "barrier",
})

#: The solver hook protocol checked by R010 (and SimSan's ``hook_super``).
HOOK_NAMES = ("_on_setup", "_after_spmv", "_handle_failures",
              "_after_iteration")


def _in_cluster(rel_path: str) -> bool:
    """Whether *rel_path* lies inside the ``cluster/`` package."""
    return "cluster" in rel_path.split("/")[:-1]


def _is_trivial_body(node: ast.AST) -> bool:
    """Docstring-only / ``pass`` / bare-constant-return bodies: these are
    protocol *declarations* (extension points), not implementations."""
    for stmt in getattr(node, "body", []):
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Return) and (
                stmt.value is None or isinstance(stmt.value, ast.Constant)):
            continue
        if isinstance(stmt, ast.Raise):
            continue  # abstract "must override" declaration
        return False
    return True


def _protocol_classes(graph: CallGraph) -> Set[str]:
    """Classes declaring at least one *trivial* hook: the protocol owners
    (``DistributedPCG``/``BlockPCG``-shaped bases)."""
    out: Set[str] = set()
    for info in graph.classes.values():
        for hook in HOOK_NAMES:
            method = info.methods.get(hook)
            if method is not None and _is_trivial_body(method.node):
                out.add(info.name)
                break
    return out


def _calls_super_hook(method: FunctionInfo, hook: str) -> bool:
    for node in ast.walk(method.node):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == hook and \
                isinstance(node.func.value, ast.Call) and \
                isinstance(node.func.value.func, ast.Name) and \
                node.func.value.func.id == "super":
            return True
    return False


def _has_charge_call(func: FunctionInfo) -> bool:
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in SINK_CHARGE:
            return True
    return False


class NondeterminismFlowRule(Rule):
    """R007: nondeterminism must not flow into charges/payloads/results.

    The flow-sensitive upgrade of R001/R002/R005: a value derived from
    wallclock, unseeded RNG, ``id()``, ``os.environ``, or unordered set
    iteration must not reach -- through any call chain -- a ``CostLedger``
    charge, a ``Communicator`` payload, failure-schedule construction, or
    solver-result construction.  Laundering through helpers is what this
    rule exists to catch: the violation is anchored at the *source* (where
    the nondeterminism enters), and the message carries the full hop trace
    to the sink.  Allowlisted files are modules sanctioned to *produce*
    such values (the seeded-RNG funnel, the host-timing harness).
    """

    id = "R007"
    title = "no nondeterminism flowing into charges/payloads/results"

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = get_callgraph(project)
        for flow in TaintAnalyzer(graph).flows():
            yield self.violation(
                flow.origin_path, flow.origin_line,
                f"{flow.kind} value ({flow.detail}) flows into "
                f"{flow.sink_label}: {flow.render_trace()}")


class ChargeCoverageRule(Rule):
    """R008: every communication path must pass a CostLedger charging site.

    Three checks: (a) each ``Communicator`` primitive (except ``recv``,
    whose cost is carried by the matching ``send``) must itself reach a
    charging call (``add_time``/``add_overlapped``/``add_traffic``/
    ``_charge_message``) within a short self-call chain; (b) a primitive
    invoked with ``charge=False`` outside ``cluster/`` is only legal when
    the enclosing function charges explicitly -- otherwise payload moves
    for free, and the message shows the solver entry point that reaches
    the uncharged call; (c) ``Communicator`` pending-mail internals
    (``_mailboxes``) are private to ``cluster/`` -- other modules must go
    through the primitives so accounting cannot be bypassed.
    """

    id = "R008"
    title = "no uncharged communication paths"

    _CHARGE_BFS_DEPTH = 3
    _TRACE_DEPTH = 10

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        if _in_cluster(src.rel_path):
            return
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Attribute) and \
                    node.attr == "_mailboxes":
                yield self.violation(
                    src, node,
                    "touching Communicator._mailboxes outside cluster/; "
                    "pending mail is internal -- use send/recv/"
                    "pending_messages so every transfer is charged")

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = get_callgraph(project)
        yield from self._check_primitives_charge(graph)
        yield from self._check_uncharged_calls(graph)

    def _check_primitives_charge(self, graph: CallGraph
                                 ) -> Iterator[Violation]:
        comm = graph.classes.get("Communicator")
        if comm is None:
            return
        for name in sorted(COMM_PRIMITIVES - {"recv"}):
            method = comm.methods.get(name)
            if method is None:
                continue
            if not self._reaches_charge(graph, method):
                yield self.violation(
                    method.path, method.line,
                    f"Communicator.{name} moves payload without reaching "
                    "a CostLedger charging site (add_time/add_overlapped/"
                    "add_traffic/_charge_message)")

    def _reaches_charge(self, graph: CallGraph,
                        method: FunctionInfo) -> bool:
        queue = [method]
        seen = {method.qualname}
        for _ in range(self._CHARGE_BFS_DEPTH):
            next_queue: List[FunctionInfo] = []
            for func in queue:
                if _has_charge_call(func):
                    return True
                for node in ast.walk(func.node):
                    if isinstance(node, ast.Call) and \
                            isinstance(node.func, ast.Attribute) and \
                            isinstance(node.func.value, ast.Name) and \
                            node.func.value.id == "self":
                        for target in graph.resolve_self_call(
                                func, node.func.attr):
                            if target.qualname not in seen:
                                seen.add(target.qualname)
                                next_queue.append(target)
            queue = next_queue
        return any(_has_charge_call(func) for func in queue)

    def _check_uncharged_calls(self, graph: CallGraph
                               ) -> Iterator[Violation]:
        roots: Optional[List[FunctionInfo]] = None
        for func in sorted(graph.functions.values(),
                           key=lambda f: f.qualname):
            if _in_cluster(func.path):
                continue
            for node in ast.walk(func.node):
                if not (isinstance(node, ast.Call) and
                        isinstance(node.func, ast.Attribute) and
                        node.func.attr in COMM_PRIMITIVES - {"recv"}):
                    continue
                if not any(kw.arg == "charge" and
                           isinstance(kw.value, ast.Constant) and
                           kw.value.value is False
                           for kw in node.keywords):
                    continue
                if _has_charge_call(func):
                    continue  # the enclosing function charges explicitly
                if roots is None:
                    roots = graph.registered_entry_points()
                trace = self._entry_trace(graph, roots, func)
                suffix = f" (reached via {trace})" if trace else ""
                yield self.violation(
                    func.path, node,
                    f"Communicator.{node.func.attr}(charge=False) outside "
                    "cluster/ without a charging site in the enclosing "
                    f"function{suffix}")

    def _entry_trace(self, graph: CallGraph, roots: List[FunctionInfo],
                     func: FunctionInfo) -> Optional[str]:
        for root in roots:
            path = graph.find_call_path(
                root, lambda f: f.qualname == func.qualname,
                max_depth=self._TRACE_DEPTH)
            if path is not None:
                return " -> ".join(f"{hop.path}:{line}"
                                   for hop, line in path)
        return None


class CollectiveConsistencyRule(Rule):
    """R009: collectives span the full/alive rank set; sends match recvs.

    (a) Collective contributions (``allreduce_sum``/``gather``/
    ``allgather``) must derive from ``alive_ranks()`` or full-range
    iteration, never a literal rank subset: a hard-coded ``{0: ..., 3:
    ...}`` dict deadlocks (raises) the moment the rank layout changes and
    silently drops contributors before that.  Flagged are dict displays
    with literal integer rank keys -- inline or via a local name that is
    only ever literal-keyed (loop-built dicts are fine).  (b) Every
    ``send`` with a constant tag must have a matching constant-tag
    ``recv`` somewhere in the project (tag-matching is exact in the
    simulated communicator, so an unmatched tag is mail that can never be
    delivered); files with dynamically computed recv tags make matching
    undecidable and mute this check.
    """

    id = "R009"
    title = "collective/p2p consistency"

    #: Positional index of the ``contributions`` argument per collective.
    _COLLECTIVES: Dict[str, int] = {
        "allreduce_sum": 0, "gather": 1, "allgather": 0,
    }

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        from .rules_determinism import UnorderedIterationRule as _R005
        for scope in _R005._scopes(src.tree):
            literal_dicts = self._literal_rank_dicts(scope)
            for node in _R005._walk_scope(scope):
                if not (isinstance(node, ast.Call) and
                        isinstance(node.func, ast.Attribute) and
                        node.func.attr in self._COLLECTIVES):
                    continue
                arg = self._contributions_arg(node)
                if arg is None:
                    continue
                flagged: Optional[ast.expr] = None
                if self._is_literal_rank_dict(arg):
                    flagged = arg
                elif isinstance(arg, ast.Name) and arg.id in literal_dicts:
                    flagged = arg
                if flagged is not None:
                    yield self.violation(
                        src, flagged,
                        f"{node.func.attr} contributions built from a "
                        "literal rank subset; derive the ranks from "
                        "alive_ranks() or full-range iteration")

    def _contributions_arg(self, call: ast.Call) -> Optional[ast.expr]:
        index = self._COLLECTIVES[call.func.attr]  # type: ignore[union-attr]
        for kw in call.keywords:
            if kw.arg == "contributions":
                return kw.value
        if index < len(call.args):
            arg = call.args[index]
            if not isinstance(arg, ast.Starred):
                return arg
        return None

    @staticmethod
    def _is_literal_rank_dict(node: ast.expr) -> bool:
        if not isinstance(node, ast.Dict) or not node.keys:
            return False
        return all(isinstance(k, ast.Constant) and isinstance(k.value, int)
                   for k in node.keys)

    def _literal_rank_dicts(self, scope: ast.AST) -> Set[str]:
        """Local names only ever assigned literal-int-keyed dict displays
        and never keyed dynamically (``d[rank] = ...``)."""
        from .rules_determinism import UnorderedIterationRule as _R005
        literal: Set[str] = set()
        demoted: Set[str] = set()
        for node in _R005._walk_scope(scope):
            if isinstance(node, ast.Assign) and \
                    len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                if self._is_literal_rank_dict(node.value):
                    literal.add(name)
                else:
                    demoted.add(name)
            elif isinstance(node, ast.Subscript) and \
                    isinstance(node.value, ast.Name) and \
                    not (isinstance(node.slice, ast.Constant) and
                         isinstance(node.slice.value, int)):
                demoted.add(node.value.id)
        return literal - demoted

    def check_project(self, project: Project) -> Iterator[Violation]:
        sends: List[Tuple[SourceFile, ast.Call, object]] = []
        recv_tags: Set[object] = set()
        dynamic_recv = False
        for src in project.files:
            for node in ast.walk(src.tree):
                if not (isinstance(node, ast.Call) and
                        isinstance(node.func, ast.Attribute)):
                    continue
                if node.func.attr == "send":
                    tag = self._constant_tag(node)
                    sends.append((src, node, tag))
                elif node.func.attr == "recv":
                    tag = self._constant_tag(node)
                    if tag is _DYNAMIC_TAG:
                        dynamic_recv = True
                    else:
                        recv_tags.add(tag)
        if dynamic_recv:
            return  # matching is undecidable: stay silent, not wrong
        for src, node, tag in sends:
            if tag is _DYNAMIC_TAG:
                continue
            if tag not in recv_tags:
                yield self.violation(
                    src.rel_path, node,
                    f"send with tag {tag!r} has no matching recv tag "
                    "anywhere in the project; the payload can never be "
                    "delivered")

    @staticmethod
    def _constant_tag(call: ast.Call) -> object:
        for kw in call.keywords:
            if kw.arg == "tag":
                if isinstance(kw.value, ast.Constant):
                    return kw.value.value
                return _DYNAMIC_TAG
        return None  # tag defaults to None on both sides


class _DynamicTag:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<dynamic tag>"


_DYNAMIC_TAG = _DynamicTag()


class HookContractRule(Rule):
    """R010: solver hook overrides chain to super(); recovery writes go
    through restore_block.

    The ``_on_setup``/``_after_spmv``/``_handle_failures``/
    ``_after_iteration`` protocol is cooperative: mixins stack
    (``ResilientPCG(EsrResilienceMixin, DistributedPCG)``), so an override
    that does not call ``super().<hook>()`` silently disconnects every
    mixin below it in the MRO.  Trivial bodies (docstring/``pass``/bare
    constant return) are the protocol declarations themselves and exempt.
    Additionally, recovery code reached from ``_handle_failures`` must
    restore lost blocks via ``NodeBlockStore.restore_block`` (which
    notifies the runtime sanitizer and clears tombstones) rather than raw
    ``set_block`` -- the message carries the self-call chain from the
    handler to the write.
    """

    id = "R010"
    title = "hook overrides call super(); recovery writes use restore_block"

    _RECOVERY_DEPTH = 6

    def check_project(self, project: Project) -> Iterator[Violation]:
        graph = get_callgraph(project)
        protocol = _protocol_classes(graph)
        for class_name in sorted(graph.classes):
            info = graph.classes[class_name]
            yield from self._check_super_chaining(info)
            handler = info.methods.get("_handle_failures")
            if handler is not None and not _is_trivial_body(handler.node):
                yield from self._check_recovery_writes(graph, handler,
                                                       protocol)

    def _check_super_chaining(self, info: ClassInfo) -> Iterator[Violation]:
        for hook in HOOK_NAMES:
            method = info.methods.get(hook)
            if method is None or _is_trivial_body(method.node):
                continue
            if not _calls_super_hook(method, hook):
                yield self.violation(
                    method.path, method.line,
                    f"{info.name}.{hook} overrides a cooperative hook "
                    f"without calling super().{hook}(); mixins later in "
                    "the MRO are silently disconnected")

    def _check_recovery_writes(self, graph: CallGraph,
                               handler: FunctionInfo,
                               protocol: Set[str]) -> Iterator[Violation]:
        seen_sites: Set[Tuple[str, int]] = set()
        stack: List[Tuple[FunctionInfo, Tuple[str, ...]]] = \
            [(handler, (handler.location(),))]
        visited = {handler.qualname}
        while stack:
            func, trace = stack.pop()
            if len(trace) > self._RECOVERY_DEPTH:
                continue
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Attribute) and \
                        node.func.attr == "set_block":
                    site = (func.path, int(node.lineno))
                    if site in seen_sites:
                        continue
                    seen_sites.add(site)
                    hops = trace + (f"{func.path}:{node.lineno}",)
                    yield self.violation(
                        func.path, node,
                        "recovery-state write uses raw set_block; use "
                        "NodeBlockStore.restore_block so the sanitizer "
                        "and tombstones see the restore "
                        f"({' -> '.join(hops)})")
                elif isinstance(node.func, ast.Attribute) and \
                        isinstance(node.func.value, ast.Name) and \
                        node.func.value.id == "self":
                    for target in graph.resolve_self_call(
                            func, node.func.attr):
                        if target.qualname in visited:
                            continue
                        if target.class_name in protocol:
                            continue  # base solver internals, not recovery
                        visited.add(target.qualname)
                        stack.append((
                            target,
                            trace + (f"{func.path}:{node.lineno}",)))
