"""Rule engine of :mod:`repro.lint`.

The engine is deliberately small: it parses every ``*.py`` file under the
scanned roots once, hands each file (and the project as a whole) to every
enabled rule, filters findings through the rule's pinned allowlist and
through inline ``# noqa: R00X`` suppressions, and returns the surviving
violations sorted by location.  Rules are plain classes (see :class:`Rule`);
the project-specific rule set lives in :mod:`repro.lint.registry`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .allowlists import ALLOWLISTS


class LintError(RuntimeError):
    """A problem with the lint run itself (bad path, unparseable file)."""


@dataclass(frozen=True)
class Violation:
    """One finding: a rule violated at a specific source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class SourceFile:
    """One parsed source file presented to the rules."""

    abs_path: Path
    #: Posix-style path relative to the scanned root (e.g. ``utils/rng.py``);
    #: this is what allowlist patterns match against.
    rel_path: str
    tree: ast.Module
    lines: List[str]

    @classmethod
    def parse(cls, abs_path: Path, rel_path: str) -> "SourceFile":
        try:
            source = abs_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(abs_path))
        except (OSError, SyntaxError) as exc:
            raise LintError(f"cannot parse {abs_path}: {exc}") from exc
        return cls(abs_path=abs_path, rel_path=rel_path, tree=tree,
                   lines=source.splitlines())


class Project:
    """All scanned files plus the location of the test suite (for R003)."""

    def __init__(self, files: Sequence[SourceFile],
                 tests_dir: Optional[Path] = None) -> None:
        self.files = list(files)
        self.tests_dir = tests_dir
        self._test_literals: Optional[Set[str]] = None

    def test_string_literals(self) -> Optional[Set[str]]:
        """Every string literal appearing in the test suite (lower-cased).

        Returns ``None`` when no test directory was found, so rules can
        distinguish "tests not located" from "name not covered".  Parsed
        lazily and cached: only rules that need it (R003) pay for it.
        """
        if self.tests_dir is None:
            return None
        if self._test_literals is None:
            literals: Set[str] = set()
            for path in sorted(self.tests_dir.rglob("*.py")):
                try:
                    tree = ast.parse(path.read_text(encoding="utf-8"),
                                     filename=str(path))
                except (OSError, SyntaxError):
                    continue
                for node in ast.walk(tree):
                    if isinstance(node, ast.Constant) and \
                            isinstance(node.value, str):
                        literals.add(node.value.lower())
            self._test_literals = literals
        return self._test_literals


class Rule:
    """Base class of every lint rule.

    Subclasses set :attr:`id` and :attr:`title` and implement
    :meth:`check_file` (per-file findings) and/or :meth:`check_project`
    (whole-tree findings such as cross-referencing the test suite).  The
    class docstring doubles as the rule's documentation shown by
    ``python -m repro.lint --list-rules``.
    """

    id: str = ""
    title: str = ""

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Violation]:
        return iter(())

    # -- helpers shared by the concrete rules ------------------------------
    def violation(self, src_or_path: "SourceFile | str",
                  node_or_line: "ast.AST | int",
                  message: str) -> Violation:
        """Build a :class:`Violation` from a file + AST node (or line no)."""
        if isinstance(src_or_path, SourceFile):
            path = src_or_path.rel_path
        else:
            path = str(src_or_path)
        if isinstance(node_or_line, ast.AST):
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
        else:
            line, col = int(node_or_line), 0
        return Violation(rule_id=self.id, path=path, line=line, col=col,
                         message=message)


def path_matches(rel_path: str, patterns: Iterable[str]) -> bool:
    """Whether *rel_path* matches any allowlist *pattern*.

    Patterns are ``fnmatch`` globs matched against the scan-relative path
    and, to stay stable under different scan roots (``src/repro`` vs
    ``src``), also against any path suffix (``utils/rng.py`` matches
    ``repro/utils/rng.py``).
    """
    for pattern in patterns:
        if fnmatch(rel_path, pattern) or fnmatch(rel_path, "*/" + pattern):
            return True
    return False


_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)


def is_suppressed(src: SourceFile, violation: Violation) -> bool:
    """True when the flagged line carries a matching ``# noqa`` comment."""
    if not 1 <= violation.line <= len(src.lines):
        return False
    match = _NOQA_RE.search(src.lines[violation.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True  # bare "# noqa" suppresses everything on the line
    wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return violation.rule_id.upper() in wanted


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve an ``Attribute``/``Name`` chain to ``a.b.c`` (else ``None``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def discover_files(roots: Sequence[Path]) -> List[Tuple[Path, str]]:
    """``(abs_path, rel_path)`` for every python file under *roots*."""
    out: List[Tuple[Path, str]] = []
    for root in roots:
        root = Path(root)
        if root.is_file():
            out.append((root, root.name))
        elif root.is_dir():
            for path in sorted(root.rglob("*.py")):
                out.append((path, path.relative_to(root).as_posix()))
        else:
            raise LintError(f"no such file or directory: {root}")
    return out


def discover_tests_dir(start: Path, max_levels: int = 5) -> Optional[Path]:
    """Find the project's ``tests/`` directory near the scanned root.

    Walks up from *start* (``src/repro`` -> ``src`` -> repo root -> ...)
    and returns the first sibling/child directory literally named ``tests``.
    """
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *list(current.parents)[:max_levels]]:
        tests = candidate / "tests"
        if tests.is_dir():
            return tests
    return None


def run_lint(paths: Sequence[Path], *, rules: Sequence[Rule],
             tests_dir: Optional[Path] = None,
             select: Optional[Iterable[str]] = None) -> List[Violation]:
    """Run *rules* over *paths* and return the surviving violations.

    Parameters
    ----------
    paths:
        Files and/or package directories to scan.
    rules:
        Rule instances to run (see :mod:`repro.lint.registry`).
    tests_dir:
        Test-suite directory for cross-referencing rules; auto-discovered
        near the first path when ``None``.
    select:
        Optional iterable of rule IDs to restrict the run to.
    """
    if not paths:
        raise LintError("no paths to lint")
    wanted = {s.upper() for s in select} if select is not None else None
    active = [r for r in rules if wanted is None or r.id.upper() in wanted]
    if wanted is not None:
        known = {r.id.upper() for r in rules}
        unknown = sorted(wanted - known)
        if unknown:
            raise LintError(f"unknown rule id(s): {', '.join(unknown)}")

    files = [SourceFile.parse(abs_path, rel_path)
             for abs_path, rel_path in discover_files(paths)]
    if tests_dir is None:
        tests_dir = discover_tests_dir(Path(paths[0]))
    project = Project(files, tests_dir=tests_dir)
    by_rel = {f.rel_path: f for f in files}

    violations: List[Violation] = []
    for rule in active:
        allow = ALLOWLISTS.get(rule.id, ())
        for src in files:
            if path_matches(src.rel_path, allow):
                continue
            for violation in rule.check_file(src):
                if not is_suppressed(src, violation):
                    violations.append(violation)
        for violation in rule.check_project(project):
            src = by_rel.get(violation.path)
            if src is not None and path_matches(src.rel_path, allow):
                continue
            if src is None or not is_suppressed(src, violation):
                violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations
