"""Structural rules: registry test coverage, storage-layer access, specs.

These rules keep the architectural seams honest: every name reachable
through the solver/preconditioner registries stays covered by the spec
round-trip tests, node-local memory is only touched through the storage
layer that enforces the failure semantics, and frozen configuration specs
stay frozen.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from .engine import Project, Rule, SourceFile, Violation, dotted_name


class RegisteredNameCoverageRule(Rule):
    """R003: every registered solver/preconditioner/placement name is
    test-covered.

    Walks the scanned tree for ``@register_solver("name")`` /
    ``@register_preconditioner("name", ...)`` /
    ``@register_placement("name", ...)`` /
    ``@register_batching_policy("name", ...)`` /
    ``@register_redundancy_scheme("name", ...)`` registrations and requires
    each registered name to appear as a string literal somewhere in the
    test suite -- which, given the spec round-trip tests parametrise over
    the registered names, means a name that never shows up in ``tests/``
    has silently dropped out of round-trip coverage.  A missing ``tests``
    directory is itself a finding (the rule cannot vouch for anything).
    """

    id = "R003"
    title = "registered names must be test-covered"

    _DECORATORS = frozenset({"register_solver", "register_preconditioner",
                             "register_placement",
                             "register_batching_policy",
                             "register_redundancy_scheme"})

    def check_project(self, project: Project) -> Iterator[Violation]:
        registrations = self._registrations(project)
        if not registrations:
            return
        literals = project.test_string_literals()
        if literals is None:
            first_name, src, node = registrations[0]
            yield self.violation(
                src, node,
                f"cannot verify registered name {first_name!r}: no tests/ "
                "directory found (pass --tests-dir)")
            return
        for name, src, node in registrations:
            if name.lower() not in literals:
                yield self.violation(
                    src, node,
                    f"registered name {name!r} does not appear in any test "
                    "file; add it to the spec round-trip tests")

    def _registrations(self, project: Project
                       ) -> List[Tuple[str, SourceFile, ast.AST]]:
        found: List[Tuple[str, SourceFile, ast.AST]] = []
        for src in project.files:
            for node in ast.walk(src.tree):
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                for decorator in node.decorator_list:
                    if not isinstance(decorator, ast.Call):
                        continue
                    name = dotted_name(decorator.func)
                    if name is None or \
                            name.split(".")[-1] not in self._DECORATORS:
                        continue
                    if decorator.args and isinstance(
                            decorator.args[0], ast.Constant) and isinstance(
                            decorator.args[0].value, str):
                        found.append(
                            (decorator.args[0].value, src, decorator))
        return found


class NodeMemoryAccessRule(Rule):
    """R004: no direct node-memory access outside the storage layer.

    ``NodeMemory`` enforces the failure semantics (reads on failed nodes
    raise instead of returning stale values) and ``NodeBlockStore`` layers
    the block bookkeeping on top; the solvers must go through
    ``get_block``/``set_block``/``restore_block`` so that every access is
    liveness-checked and recovery-aware.  Flags ``<node>.memory`` attribute
    access and imports of ``NodeMemory``/``NodeBlockStore`` outside the
    pinned storage-layer allowlist.
    """

    id = "R004"
    title = "no direct node-memory access"

    _NAMES = frozenset({"NodeMemory", "NodeBlockStore"})

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Attribute) and node.attr == "memory":
                yield self.violation(
                    src, node,
                    "direct .memory access outside the storage layer; go "
                    "through get_block/set_block/restore_block")
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in self._NAMES:
                        yield self.violation(
                            src, node,
                            f"importing {alias.name} outside the storage "
                            "layer; use the distributed containers instead")


class FrozenSpecRule(Rule):
    """R006: no mutable default arguments; frozen specs stay frozen.

    A mutable default (``def f(x, acc=[])``) is shared across calls --
    state that survives between solves is exactly what the deterministic
    replay contract forbids.  And ``object.__setattr__`` is the documented
    backdoor around frozen dataclasses: outside the spec module's own
    ``__post_init__`` normalisation it silently mutates configuration that
    callers (and the solve caches keyed on it) assume immutable.
    """

    id = "R006"
    title = "no mutable defaults / frozen-spec writes"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray",
                                "defaultdict", "OrderedDict", "Counter"})

    def check_file(self, src: SourceFile) -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None]
                for default in defaults:
                    if self._is_mutable(default):
                        yield self.violation(
                            src, default,
                            f"mutable default argument in {node.name}(); "
                            "default to None and create the object in the "
                            "body")
            elif isinstance(node, ast.Call):
                if dotted_name(node.func) == "object.__setattr__":
                    yield self.violation(
                        src, node,
                        "object.__setattr__ bypasses a frozen spec outside "
                        "the spec module; use dataclasses.replace/"
                        "with_overrides")

    @classmethod
    def _is_mutable(cls, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name is not None and \
                name.split(".")[-1] in cls._MUTABLE_CALLS
        return False
