"""Project-wide symbol table and call graph of :mod:`repro.lint`.

The per-file rules (R001--R006) see one AST at a time; the flow rules
(R007--R010) need to know *who calls whom* across the whole scanned tree.
This module builds that picture once per :class:`~repro.lint.engine.Project`:

* a symbol table of every module-level function and every method of every
  module-level class (:class:`FunctionInfo` / :class:`ClassInfo`);
* name-based call resolution -- module-local names, ``from x import y``
  aliases, ``self.method(...)`` through the class hierarchy (ancestors for
  static lookup *and* descendant overrides for dynamic dispatch, so a base
  loop calling ``self._after_spmv`` links to every mixin override), and
  ``super().method(...)`` including the cooperative-MRO case of a bare
  mixin whose ``super()`` lands on a sibling base of the concrete class;
* decorator-registered entry points (``@register_solver`` and friends) as
  the roots the reachability rules start from.

Resolution is deliberately name-based and conservative: an attribute call
whose receiver cannot be traced (``obj.frobnicate()``) resolves to the
project methods of that name only while there are at most
:data:`ATTR_CANDIDATE_CAP` candidates -- beyond that the call is treated
as unresolved rather than fanning out over unrelated namesakes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple
from weakref import WeakKeyDictionary

from .engine import Project, SourceFile, dotted_name

#: Decorators whose application marks a function as a registered entry point.
REGISTRATION_DECORATORS = frozenset({
    "register_solver", "register_preconditioner", "register_placement",
    "register_redundancy_scheme",
})

#: Maximum number of same-named methods an untraceable attribute call may
#: resolve to; more candidates than this means the name is too generic to
#: link without type information.
ATTR_CANDIDATE_CAP = 4


@dataclass(frozen=True)
class FunctionInfo:
    """One module-level function or class method of the scanned tree."""

    #: Simple name (``solve``, ``_after_spmv``).
    name: str
    #: Unique key: ``rel_path::Class.method`` / ``rel_path::function``.
    qualname: str
    src: SourceFile
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: Defining class name, ``None`` for module-level functions.
    class_name: Optional[str]
    #: Dotted decorator names applied to the definition.
    decorators: Tuple[str, ...]

    @property
    def path(self) -> str:
        return self.src.rel_path

    @property
    def line(self) -> int:
        return int(getattr(self.node, "lineno", 1))

    def location(self) -> str:
        """``path:line`` hop label used in interprocedural traces."""
        return f"{self.path}:{self.line}"


@dataclass
class ClassInfo:
    """One module-level class definition of the scanned tree."""

    name: str
    src: SourceFile
    node: ast.ClassDef
    #: Raw base names as written (last dotted segment is used to resolve).
    base_names: Tuple[str, ...]
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


class CallGraph:
    """Symbol table + call resolution over one :class:`Project`."""

    def __init__(self, project: Project) -> None:
        self.project = project
        #: Every function/method by qualified name.
        self.functions: Dict[str, FunctionInfo] = {}
        #: Every module-level class by simple name (first definition wins;
        #: class names are unique in this tree).
        self.classes: Dict[str, ClassInfo] = {}
        self._module_functions: Dict[Tuple[str, str], FunctionInfo] = {}
        self._by_simple_name: Dict[str, List[FunctionInfo]] = {}
        self._methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: Per module: local alias -> imported simple name.
        self._imports: Dict[str, Dict[str, str]] = {}
        self._ancestor_cache: Dict[str, Tuple[ClassInfo, ...]] = {}
        self._descendant_cache: Optional[Dict[str, List[ClassInfo]]] = None
        self._callee_cache: Dict[
            str, List[Tuple[ast.Call, Tuple[FunctionInfo, ...]]]] = {}
        for src in project.files:
            self._index_module(src)

    # -- construction ------------------------------------------------------
    def _index_module(self, src: SourceFile) -> None:
        imports: Dict[str, str] = {}
        for stmt in src.tree.body:
            if isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    imports[alias.asname or alias.name] = alias.name
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(src, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(src, stmt)
        self._imports[src.rel_path] = imports

    def _add_class(self, src: SourceFile, node: ast.ClassDef) -> None:
        bases = tuple(name for name in
                      (dotted_name(b) for b in node.bases) if name)
        info = ClassInfo(name=node.name, src=src, node=node, base_names=bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = self._add_function(src, stmt, class_name=node.name)
                info.methods[stmt.name] = func
        self.classes.setdefault(node.name, info)

    def _add_function(self, src: SourceFile, node: ast.AST,
                      class_name: Optional[str]) -> FunctionInfo:
        name = getattr(node, "name", "<lambda>")
        prefix = f"{class_name}." if class_name else ""
        qualname = f"{src.rel_path}::{prefix}{name}"
        decorator_exprs = (
            dec.func if isinstance(dec, ast.Call) else dec
            for dec in getattr(node, "decorator_list", []))
        decorators = tuple(
            d for d in (dotted_name(dec) for dec in decorator_exprs)
            if d is not None)
        func = FunctionInfo(name=name, qualname=qualname, src=src, node=node,
                            class_name=class_name, decorators=decorators)
        self.functions.setdefault(qualname, func)
        self._by_simple_name.setdefault(name, []).append(func)
        if class_name is None:
            self._module_functions.setdefault((src.rel_path, name), func)
        else:
            self._methods_by_name.setdefault(name, []).append(func)
        return func

    # -- hierarchy queries -------------------------------------------------
    def ancestors(self, class_name: str) -> Tuple[ClassInfo, ...]:
        """Project-local ancestors of *class_name*, nearest first."""
        cached = self._ancestor_cache.get(class_name)
        if cached is not None:
            return cached
        out: List[ClassInfo] = []
        seen: Set[str] = {class_name}
        queue = list(self.classes[class_name].base_names) \
            if class_name in self.classes else []
        while queue:
            base = queue.pop(0).split(".")[-1]
            if base in seen:
                continue
            seen.add(base)
            info = self.classes.get(base)
            if info is None:
                continue
            out.append(info)
            queue.extend(info.base_names)
        result = tuple(out)
        self._ancestor_cache[class_name] = result
        return result

    def descendants(self, class_name: str) -> List[ClassInfo]:
        """Classes that (transitively) derive from *class_name*."""
        if self._descendant_cache is None:
            cache: Dict[str, List[ClassInfo]] = {}
            for info in self.classes.values():
                for ancestor in self.ancestors(info.name):
                    cache.setdefault(ancestor.name, []).append(info)
            self._descendant_cache = cache
        return list(self._descendant_cache.get(class_name, []))

    def resolve_method(self, class_name: str,
                       method: str) -> Optional[FunctionInfo]:
        """Static lookup: *method* on *class_name* or its nearest ancestor."""
        info = self.classes.get(class_name)
        if info is not None and method in info.methods:
            return info.methods[method]
        for ancestor in self.ancestors(class_name):
            if method in ancestor.methods:
                return ancestor.methods[method]
        return None

    # -- call resolution ---------------------------------------------------
    def resolve_self_call(self, caller: FunctionInfo,
                          method: str) -> List[FunctionInfo]:
        """``self.method(...)``: static target plus descendant overrides.

        Dynamic dispatch means a base-class loop calling ``self.hook()``
        may land on any override further down the hierarchy, so both the
        statically visible definition and every override on a descendant
        of the caller's class are linked.
        """
        if caller.class_name is None:
            return []
        out: List[FunctionInfo] = []
        static = self.resolve_method(caller.class_name, method)
        if static is not None:
            out.append(static)
        for descendant in self.descendants(caller.class_name):
            override = descendant.methods.get(method)
            if override is not None and override not in out:
                out.append(override)
        return out

    def resolve_super_call(self, caller: FunctionInfo,
                           method: str) -> List[FunctionInfo]:
        """``super().method(...)``: ancestors, else cooperative-MRO siblings.

        A bare mixin has no project-local ancestors, but under cooperative
        multiple inheritance its ``super()`` lands on whatever follows it in
        a concrete class's MRO -- approximated here by the other ancestors
        of the classes that derive from the mixin.
        """
        if caller.class_name is None:
            return []
        out: List[FunctionInfo] = []
        for ancestor in self.ancestors(caller.class_name):
            if method in ancestor.methods:
                out.append(ancestor.methods[method])
        if out:
            return out
        siblings: List[ClassInfo] = []
        for descendant in self.descendants(caller.class_name):
            for ancestor in self.ancestors(descendant.name):
                if ancestor.name != caller.class_name and \
                        ancestor not in siblings:
                    siblings.append(ancestor)
        for sibling in sorted(siblings, key=lambda c: c.name):
            if method in sibling.methods:
                out.append(sibling.methods[method])
        return out

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> List[FunctionInfo]:
        """Project functions a call expression may dispatch to (maybe [])."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(caller, func.id)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "self":
                return self.resolve_self_call(caller, func.attr)
            if isinstance(value, ast.Call) and \
                    isinstance(value.func, ast.Name) and \
                    value.func.id == "super":
                return self.resolve_super_call(caller, func.attr)
            candidates = self._methods_by_name.get(func.attr, [])
            if 0 < len(candidates) <= ATTR_CANDIDATE_CAP:
                return list(candidates)
        return []

    def _resolve_name(self, caller: FunctionInfo,
                      name: str) -> List[FunctionInfo]:
        local = self._module_functions.get((caller.path, name))
        if local is not None:
            return [local]
        imported = self._imports.get(caller.path, {}).get(name)
        target = imported.split(".")[-1] if imported else name
        if target in self.classes:
            return []  # constructor call: not traversed
        matches = [f for f in self._by_simple_name.get(target, [])
                   if f.class_name is None]
        if imported is not None and matches:
            return matches[:1] if len(matches) == 1 else matches[:2]
        if len(matches) == 1:
            return matches
        return []

    def callees(self, func: FunctionInfo
                ) -> List[Tuple[ast.Call, Tuple[FunctionInfo, ...]]]:
        """Every call expression in *func* with its resolved targets."""
        cached = self._callee_cache.get(func.qualname)
        if cached is not None:
            return cached
        out: List[Tuple[ast.Call, Tuple[FunctionInfo, ...]]] = []
        for node in ast.walk(func.node):
            if isinstance(node, ast.Call):
                out.append((node, tuple(self.resolve_call(func, node))))
        self._callee_cache[func.qualname] = out
        return out

    # -- roots -------------------------------------------------------------
    def registered_entry_points(self) -> List[FunctionInfo]:
        """Functions registered through the project's registry decorators."""
        out: List[FunctionInfo] = []
        for func in sorted(self.functions.values(), key=lambda f: f.qualname):
            for decorator in func.decorators:
                if decorator.split(".")[-1] in REGISTRATION_DECORATORS:
                    out.append(func)
                    break
        return out

    # -- reachability ------------------------------------------------------
    def find_call_path(self, start: FunctionInfo,
                       is_target: Callable[[FunctionInfo], bool], *,
                       max_depth: int = 12
                       ) -> Optional[List[Tuple[FunctionInfo, int]]]:
        """Shortest call chain from *start* to a function matching
        *is_target*, as ``(function, call-site line)`` hops; the first hop
        carries the start's own definition line.
        """
        if is_target(start):
            return [(start, start.line)]
        queue: List[Tuple[FunctionInfo, List[Tuple[FunctionInfo, int]]]] = \
            [(start, [(start, start.line)])]
        seen: Set[str] = {start.qualname}
        depth = 0
        while queue and depth < max_depth:
            next_queue: List[
                Tuple[FunctionInfo, List[Tuple[FunctionInfo, int]]]] = []
            for func, chain in queue:
                for call, targets in self.callees(func):
                    for target in targets:
                        if target.qualname in seen:
                            continue
                        seen.add(target.qualname)
                        hop = chain + [(target, int(call.lineno))]
                        if is_target(target):
                            return hop
                        next_queue.append((target, hop))
            queue = next_queue
            depth += 1
        return None


_CACHE: "WeakKeyDictionary[Project, CallGraph]" = WeakKeyDictionary()


def get_callgraph(project: Project) -> CallGraph:
    """The (cached) call graph of *project* -- built once, shared by every
    flow rule of the same lint run."""
    graph = _CACHE.get(project)
    if graph is None:
        graph = CallGraph(project)
        _CACHE[project] = graph
    return graph
