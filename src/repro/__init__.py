"""repro -- Resilient preconditioned conjugate gradient solvers.

A reproduction of *"How to Make the Preconditioned Conjugate Gradient Method
Resilient Against Multiple Node Failures"* (Pachajoa, Levonyak, Gansterer,
Träff; ICPP 2019): the exact state reconstruction (ESR) approach extended to
tolerate multiple simultaneous or overlapping node failures, together with
every substrate needed to run and evaluate it on a single machine -- a
simulated distributed-memory cluster with fail-stop node failures and a
latency-bandwidth cost model, block-row distributed sparse linear algebra,
preconditioners, baselines, synthetic analogues of the paper's test matrices,
and a benchmark harness that regenerates each table and figure of the paper's
evaluation.

Quickstart
----------
>>> import repro
>>> a = repro.matrices.poisson_2d(48)              # SPD test matrix
>>> problem = repro.distribute_problem(a, n_nodes=8)
>>> result = repro.solve(
...     problem, phi=3, preconditioner="block_jacobi",
...     failures=[(20, [2, 3, 4])],                # 3 nodes fail at iteration 20
... )
>>> result.converged
True

``repro.solve`` is the single entry point: a :class:`~repro.core.spec.
SolveSpec` (with optional ``ResilienceSpec`` / ``BlockSpec`` extensions)
selects and configures the solver through the solver registry -- plain PCG,
the ESR-protected resilient PCG, or the multi-RHS block PCG (an ``(n, k)``
right-hand side dispatches there automatically).  Keyword arguments like
``phi=3`` above are shorthand overrides routed into the spec.
"""

from . import analysis  # noqa: F401  (re-exported subpackages)
from . import baselines  # noqa: F401
from . import cluster  # noqa: F401
from . import lint  # noqa: F401
from . import sanitizer  # noqa: F401
from . import core  # noqa: F401
from . import distributed  # noqa: F401
from . import failures  # noqa: F401
from . import harness  # noqa: F401
from . import matrices  # noqa: F401
from . import precond  # noqa: F401
from . import service  # noqa: F401
from . import solvers  # noqa: F401
from . import utils  # noqa: F401
from .cluster import (
    FailureEvent,
    FailureInjector,
    MachineModel,
    VirtualCluster,
)
from .core import (
    PLACEMENTS,
    REDUNDANCY_SCHEMES,
    SOLVERS,
    BackupPlacement,
    BlockPCG,
    BlockSolveResult,
    BlockSpec,
    DistributedPCG,
    DistributedProblem,
    DistributedSolveResult,
    ESRProtocol,
    ESRReconstructor,
    PlacementStrategy,
    RackLayout,
    RecoveryReport,
    RedundancyScheme,
    RedundancySchemeBase,
    RedundancySchemeRegistry,
    ResilienceSpec,
    ResilientBlockPCG,
    ResilientPCG,
    RSParityScheme,
    SolverRegistry,
    SolveSpec,
    build_redundancy_scheme,
    distribute_problem,
    reference_solve,
    register_placement,
    register_redundancy_scheme,
    register_solver,
    resilient_solve,
    solve,
    solve_with_failures,
)
from .failures import (
    FailureLocation,
    FailureScenario,
    FailureTrace,
    LifetimeModel,
    TraceSpec,
    generate_trace,
)
from .harness import CampaignSpec, run_campaign
from .precond import make_preconditioner
from .service import (
    BATCHING_POLICIES,
    BatchingPolicy,
    JobHandle,
    RequestResult,
    ServiceStats,
    SolverService,
    TrafficSpec,
    generate_traffic,
    register_batching_policy,
)
from .solvers import SolveResult, pcg

__version__ = "1.0.0"

# Opt-in runtime sanitizer: ``REPRO_SANITIZE=1`` (or a comma-separated
# detector list) activates SimSan for the whole process.  See
# :mod:`repro.sanitizer`.
sanitizer.enable_from_env()

__all__ = [
    "__version__",
    # substrates
    "VirtualCluster",
    "MachineModel",
    "FailureEvent",
    "FailureInjector",
    # core API
    "solve",
    "SolveSpec",
    "ResilienceSpec",
    "BlockSpec",
    "SOLVERS",
    "SolverRegistry",
    "register_solver",
    "DistributedPCG",
    "ResilientPCG",
    "ResilientBlockPCG",
    "BlockPCG",
    "BlockSolveResult",
    "DistributedSolveResult",
    "DistributedProblem",
    "ESRProtocol",
    "ESRReconstructor",
    "RecoveryReport",
    "RedundancyScheme",
    "RedundancySchemeBase",
    "RedundancySchemeRegistry",
    "REDUNDANCY_SCHEMES",
    "RSParityScheme",
    "register_redundancy_scheme",
    "build_redundancy_scheme",
    "BackupPlacement",
    "PLACEMENTS",
    "PlacementStrategy",
    "RackLayout",
    "register_placement",
    "distribute_problem",
    "reference_solve",
    "resilient_solve",
    "solve_with_failures",
    # scenarios / traces / campaigns
    "FailureScenario",
    "FailureLocation",
    "FailureTrace",
    "LifetimeModel",
    "TraceSpec",
    "generate_trace",
    "CampaignSpec",
    "run_campaign",
    "make_preconditioner",
    "SolveResult",
    "pcg",
    # serving layer
    "SolverService",
    "JobHandle",
    "RequestResult",
    "ServiceStats",
    "BATCHING_POLICIES",
    "BatchingPolicy",
    "register_batching_policy",
    "TrafficSpec",
    "generate_traffic",
]
