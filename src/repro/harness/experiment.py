"""Experiment runner mirroring the paper's evaluation methodology (Sec. 7.1).

The paper measures, per test matrix:

* ``t0`` -- the runtime of plain (non-resilient) PCG, averaged over >= 5 runs;
* the *undisturbed* overhead of the resilient solver keeping phi in {1, 3, 8}
  redundant copies but experiencing no failure;
* the *reconstruction time* and the *total overhead* when psi = phi nodes
  fail simultaneously at 20 %, 50 % or 80 % of the solver's progress, with the
  failed nodes clustered at the start or the center of the vector.

The functions here run exactly those configurations on the virtual cluster
(runtime = simulated time from the latency-bandwidth cost model; wall-clock is
recorded as well), repeat them with independent RNG streams, and aggregate
mean and standard deviation.  A :class:`MatrixStudy` bundles every run needed
for one matrix's rows in Tables 2/3 and its panels in Figures 1-4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..cluster.cost_model import MachineModel
from ..core.api import distribute_problem, solve
from ..core.block_pcg import BlockSolveResult
from ..core.metrics import relative_residual_difference, residual_difference_of
from ..core.pcg import DistributedSolveResult
from ..core.redundancy import BackupPlacement
from ..core.spec import BlockSpec, ResilienceSpec, SolveSpec
from ..failures.scenarios import (
    PAPER_FAILURE_COUNTS,
    PAPER_PROGRESS_FRACTIONS,
    FailureLocation,
    FailureScenario,
    resolve_events,
)
from ..matrices.suite import build_matrix
from ..utils.logging import get_logger
from ..utils.rng import as_rng, stable_hash_seed

logger = get_logger("harness.experiment")


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

@dataclass
class ExperimentConfig:
    """Configuration shared by all runs of one matrix study.

    A thin wrapper over the declarative solver configuration: the
    solver-facing fields compose into a :class:`~repro.core.spec.SolveSpec`
    (plus a :class:`~repro.core.spec.ResilienceSpec` for resilient runs, see
    :meth:`solve_spec`), which every run dispatches through
    :func:`repro.solve`; the remaining fields describe the study itself
    (which matrix, cluster size, repetitions, RNG seeding, machine
    calibration).
    """

    #: Suite matrix id ("M1" ... "M8"); ignored if ``matrix`` is given.
    matrix_id: str = "M5"
    #: Explicit matrix (overrides ``matrix_id``/``matrix_size``).
    matrix: Optional[sp.spmatrix] = None
    #: Target size of the synthetic analogue (None = suite default).
    matrix_size: Optional[int] = None
    #: Number of virtual compute nodes (the paper uses 128; scaled default 16).
    n_nodes: int = 16
    preconditioner: str = "block_jacobi"
    rtol: float = 1e-8
    max_iterations: Optional[int] = None
    #: Independent repetitions per configuration (>= 5 in the paper).
    repetitions: int = 3
    seed: int = 0
    #: Relative run-to-run noise of the simulated machine.
    jitter_rel_std: float = 0.02
    placement: BackupPlacement = BackupPlacement.PAPER
    local_solver_method: str = "pcg_ilu"
    local_rtol: float = 1e-14
    machine: Optional[MachineModel] = None
    #: Right-hand sides per solve: 1 runs the paper's single-vector solvers,
    #: ``k > 1`` composes a :class:`~repro.core.spec.BlockSpec` into the
    #: spec so runs dispatch to the multi-RHS block solvers.
    n_rhs: int = 1
    #: Rows per node the paper's experiments had (~10k for n~1.3M on 128
    #: nodes).  The machine model is scaled so a run on the scaled-down
    #: analogue reproduces the compute/latency balance of that regime; set to
    #: 0 to disable the calibration.
    target_rows_per_node: int = 8000

    def build_matrix(self) -> sp.csr_matrix:
        """The (cached) global system matrix for this study."""
        if self.matrix is not None:
            return sp.csr_matrix(self.matrix)
        return build_matrix(self.matrix_id, n=self.matrix_size, seed=self.seed)

    def build_machine(self, n: Optional[int] = None) -> MachineModel:
        """Machine model with the configured jitter (and size calibration)."""
        if self.machine is not None:
            return self.machine
        model = MachineModel(jitter_rel_std=self.jitter_rel_std)
        if n and self.target_rows_per_node:
            rows_per_node = max(n / self.n_nodes, 1.0)
            factor = max(self.target_rows_per_node / rows_per_node, 1.0)
            if factor > 1.0:
                model = model.scaled(factor)
        return model

    def label(self) -> str:
        if self.matrix is not None:
            return f"custom(n={self.matrix.shape[0]})"
        return self.matrix_id

    def solve_spec(self, *, phi: Optional[int] = None,
                   failures=()) -> SolveSpec:
        """The :class:`SolveSpec` for one run of this study.

        ``phi=None`` describes a reference (plain PCG) run; any other value
        attaches a :class:`ResilienceSpec` with this config's placement and
        local-solver options plus the given failure schedule.  With
        ``n_rhs > 1`` a :class:`BlockSpec` is attached as well, selecting the
        multi-RHS block solvers (``block_pcg`` / ``resilient_block_pcg``) --
        the harness-side composition the resilient-block benchmark drives.
        """
        resilience = None
        if phi is not None:
            resilience = ResilienceSpec(
                phi=phi, placement=self.placement, failures=tuple(failures),
                local_solver_method=self.local_solver_method,
                local_rtol=self.local_rtol,
            )
        block = BlockSpec(n_cols=self.n_rhs) if self.n_rhs > 1 else None
        if block is not None:
            solver = "block_pcg" if resilience is None \
                else "resilient_block_pcg"
        else:
            solver = "pcg" if resilience is None else "resilient_pcg"
        return SolveSpec(
            solver=solver,
            rtol=self.rtol, max_iterations=self.max_iterations,
            preconditioner=self.preconditioner, resilience=resilience,
            block=block,
        )


# ---------------------------------------------------------------------------
# per-run and aggregated results
# ---------------------------------------------------------------------------

@dataclass
class RepetitionResult:
    """Measurements of a single solver run."""

    simulated_time: float
    iteration_time: float
    recovery_time: float
    redundancy_time: float
    wallclock_time: float
    iterations: int
    converged: bool
    residual_deviation: float
    n_failures: int

    @classmethod
    def from_solve(cls, result, wallclock: float) -> "RepetitionResult":
        """Build from a single-vector or block solve result.

        Block results (:class:`~repro.core.block_pcg.BlockSolveResult`,
        produced by ``n_rhs > 1`` studies) carry per-column lists: the
        repetition records the lock-step outer iteration count, whether
        *every* column converged, and the worst per-column residual
        deviation (magnitude-signed, as in Table 3).
        """
        breakdown = result.time_breakdown
        if isinstance(result, BlockSolveResult):
            deviations = [
                relative_residual_difference(final, true)
                for final, true in zip(result.final_residual_norms,
                                       result.true_residual_norms)
            ]
            finite = [d for d in deviations if np.isfinite(d)]
            deviation = max(finite, key=abs) if finite else float("nan")
            iterations = int(result.global_iterations)
            converged = result.all_converged
        else:
            deviation = residual_difference_of(result)
            iterations = result.iterations
            converged = result.converged
        return cls(
            simulated_time=result.simulated_time,
            iteration_time=result.simulated_iteration_time,
            recovery_time=result.simulated_recovery_time,
            redundancy_time=breakdown.get("comm.redundancy", 0.0),
            wallclock_time=wallclock,
            iterations=iterations,
            converged=converged,
            residual_deviation=deviation,
            n_failures=result.n_failures_recovered,
        )


@dataclass
class ExperimentResult:
    """Aggregate of several repetitions of one configuration."""

    label: str
    repetitions: List[RepetitionResult] = field(default_factory=list)

    def _values(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.repetitions], dtype=float)

    # -- aggregate accessors -------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.repetitions)

    def mean(self, attr: str = "simulated_time") -> float:
        values = self._values(attr)
        return float(values.mean()) if values.size else float("nan")

    def std(self, attr: str = "simulated_time") -> float:
        values = self._values(attr)
        if values.size < 2:
            return 0.0
        return float(values.std(ddof=1))

    def times(self) -> List[float]:
        """Raw simulated runtimes (used for the box plots of Figs. 1-4)."""
        return [r.simulated_time for r in self.repetitions]

    @property
    def mean_iterations(self) -> float:
        return self.mean("iterations")

    @property
    def all_converged(self) -> bool:
        return all(r.converged for r in self.repetitions)

    def max_abs_residual_deviation(self) -> float:
        values = [r.residual_deviation for r in self.repetitions
                  if np.isfinite(r.residual_deviation)]
        if not values:
            return float("nan")
        return max(values, key=abs)

    def summary(self) -> Dict[str, float]:
        return {
            "label": self.label,
            "n": self.n,
            "mean_time": self.mean(),
            "std_time": self.std(),
            "mean_recovery_time": self.mean("recovery_time"),
            "mean_iterations": self.mean_iterations,
            "all_converged": self.all_converged,
        }


# ---------------------------------------------------------------------------
# running configurations
# ---------------------------------------------------------------------------

def _repetition_seed(config: ExperimentConfig, kind: str, phi: int,
                     scenario_key: str, rep: int) -> int:
    return stable_hash_seed(config.label(), kind, phi, scenario_key, rep,
                            base_seed=config.seed)


def _single_run(config: ExperimentConfig, matrix: sp.csr_matrix, *,
                phi: Optional[int], scenario: Optional[FailureScenario],
                reference_iterations: Optional[int], rep_seed: int
                ) -> DistributedSolveResult:
    """One solver run on a freshly built cluster, via the ``solve`` façade."""
    problem = distribute_problem(
        matrix, n_nodes=config.n_nodes,
        machine=config.build_machine(matrix.shape[0]),
        seed=rep_seed,
    )
    rhs = None
    if config.n_rhs > 1:
        # Block studies solve an (n, k) right-hand-side block whose first
        # column is the single-vector study's rhs (A @ ones) and whose
        # remaining columns are seeded per repetition, so block and
        # single-vector timings cover the same leading system.
        n = matrix.shape[0]
        rhs = np.empty((n, config.n_rhs))
        rhs[:, 0] = matrix @ np.ones(n)
        rhs[:, 1:] = as_rng(rep_seed).standard_normal((n, config.n_rhs - 1))
    failures = ()
    if scenario is not None:
        if reference_iterations is None:
            raise ValueError(
                "scenario runs need the reference iteration count to place "
                "the failure at the requested progress fraction"
            )
        failures = resolve_events(
            scenario, n_nodes=config.n_nodes,
            reference_iterations=reference_iterations,
            rng=as_rng(rep_seed),
        )
    return solve(problem, rhs,
                 spec=config.solve_spec(phi=phi, failures=failures))


def _run_many(config: ExperimentConfig, label: str, *, phi: Optional[int],
              scenario: Optional[FailureScenario],
              reference_iterations: Optional[int],
              kind: str) -> ExperimentResult:
    matrix = config.build_matrix()
    result = ExperimentResult(label=label)
    scenario_key = scenario.describe() if scenario is not None else "none"
    for rep in range(config.repetitions):
        rep_seed = _repetition_seed(config, kind, phi or 0, scenario_key, rep)
        start = time.perf_counter()
        solve_result = _single_run(
            config, matrix, phi=phi, scenario=scenario,
            reference_iterations=reference_iterations, rep_seed=rep_seed,
        )
        wallclock = time.perf_counter() - start
        result.repetitions.append(
            RepetitionResult.from_solve(solve_result, wallclock)
        )
        logger.info("%s rep %d/%d: %s", label, rep + 1, config.repetitions,
                    solve_result.summary())
    return result


def run_reference(config: ExperimentConfig) -> ExperimentResult:
    """Plain PCG runs -- the paper's reference time ``t0``."""
    return _run_many(config, f"{config.label()} reference", phi=None,
                     scenario=None, reference_iterations=None, kind="reference")


def run_failure_free(config: ExperimentConfig, phi: int) -> ExperimentResult:
    """Resilient solver with phi copies but no failures ("undisturbed")."""
    return _run_many(config, f"{config.label()} undisturbed phi={phi}", phi=phi,
                     scenario=None, reference_iterations=None, kind="undisturbed")


def run_with_failures(config: ExperimentConfig, phi: int,
                      scenario: FailureScenario,
                      reference_iterations: int) -> ExperimentResult:
    """Resilient solver with an injected failure scenario."""
    label = f"{config.label()} phi={phi} {scenario.describe()}"
    return _run_many(config, label, phi=phi, scenario=scenario,
                     reference_iterations=reference_iterations, kind="failures")


def run_experiment(config: ExperimentConfig, *, phi: Optional[int] = None,
                   scenario: Optional[FailureScenario] = None,
                   reference_iterations: Optional[int] = None
                   ) -> ExperimentResult:
    """Generic dispatcher used by the benchmarks."""
    if phi is None:
        return run_reference(config)
    if scenario is None:
        return run_failure_free(config, phi)
    if reference_iterations is None:
        reference = run_reference(config)
        reference_iterations = int(round(reference.mean_iterations))
    return run_with_failures(config, phi, scenario, reference_iterations)


# ---------------------------------------------------------------------------
# full per-matrix study (everything Table 2/3 and Figs. 1-4 need)
# ---------------------------------------------------------------------------

@dataclass
class MatrixStudy:
    """All runs for one matrix: reference, undisturbed, and failure runs."""

    config: ExperimentConfig
    reference: ExperimentResult
    #: phi -> failure-free resilient runs.
    undisturbed: Dict[int, ExperimentResult] = field(default_factory=dict)
    #: (phi, location) -> runs with psi = phi failures (all progress fractions).
    with_failures: Dict[Tuple[int, str], ExperimentResult] = field(default_factory=dict)

    # -- Table 2 quantities ------------------------------------------------------
    @property
    def t0(self) -> float:
        """Mean reference runtime."""
        return self.reference.mean()

    def undisturbed_overhead(self, phi: int) -> float:
        """Relative overhead of the undisturbed resilient solver (percent)."""
        return 100.0 * (self.undisturbed[phi].mean() - self.t0) / self.t0

    def reconstruction_time(self, phi: int, location: str) -> Tuple[float, float]:
        """Mean and std of the reconstruction time relative to t0 (percent)."""
        runs = self.with_failures[(phi, location)]
        values = 100.0 * runs._values("recovery_time") / self.t0
        std = float(values.std(ddof=1)) if values.size > 1 else 0.0
        return float(values.mean()), std

    def overhead_with_failures(self, phi: int, location: str) -> Tuple[float, float]:
        """Mean and std of the total overhead with failures relative to t0 (percent)."""
        runs = self.with_failures[(phi, location)]
        values = 100.0 * (runs._values("simulated_time") - self.t0) / self.t0
        std = float(values.std(ddof=1)) if values.size > 1 else 0.0
        return float(values.mean()), std

    # -- Table 3 quantities ----------------------------------------------------------
    def max_delta_esr(self) -> float:
        """Largest Eqn.-(7) deviation over all failure experiments."""
        values = []
        for runs in self.with_failures.values():
            v = runs.max_abs_residual_deviation()
            if np.isfinite(v):
                values.append(v)
        if not values:
            return float("nan")
        return max(values, key=abs)

    def delta_pcg(self) -> float:
        """Eqn.-(7) deviation of the reference runs."""
        return self.reference.max_abs_residual_deviation()


def run_matrix_study(config: ExperimentConfig, *,
                     phis: Sequence[int] = PAPER_FAILURE_COUNTS,
                     locations: Sequence[FailureLocation] = (
                         FailureLocation.START, FailureLocation.CENTER),
                     fractions: Sequence[float] = PAPER_PROGRESS_FRACTIONS
                     ) -> MatrixStudy:
    """Run every configuration needed for one matrix's Table-2/3 rows.

    ``phis`` values that are >= the node count are skipped (the scheme
    requires ``phi < N``), mirroring how the paper's phi = 8 column only makes
    sense on enough nodes.
    """
    phis = [phi for phi in phis if 0 < phi < config.n_nodes]
    reference = run_reference(config)
    reference_iterations = int(round(reference.mean_iterations))
    study = MatrixStudy(config=config, reference=reference)
    for phi in phis:
        study.undisturbed[phi] = run_failure_free(config, phi)
    for phi in phis:
        for location in locations:
            runs = ExperimentResult(
                label=f"{config.label()} phi={phi} failures at {location.value}"
            )
            for fraction in fractions:
                scenario = FailureScenario(
                    n_failures=phi, progress_fraction=fraction, location=location
                )
                partial = run_with_failures(config, phi, scenario,
                                            reference_iterations)
                runs.repetitions.extend(partial.repetitions)
            study.with_failures[(phi, location.value)] = runs
    return study
