"""Experiment harness: configuration, execution, aggregation, tables, figures."""

from .campaign import (
    OUTCOME_KINDS,
    CampaignResult,
    CampaignSpec,
    RunOutcome,
    run_campaign,
    run_single,
)
from .experiment import (
    ExperimentConfig,
    ExperimentResult,
    MatrixStudy,
    RepetitionResult,
    run_experiment,
    run_failure_free,
    run_matrix_study,
    run_reference,
    run_with_failures,
)
from .figures import BoxStats, FigureSeries, ProgressSweep, figure_series, progress_sweep
from .tables import (
    format_table,
    table1_rows,
    table2_rows,
    table3_rows,
    render_table1,
    render_table2,
    render_table3,
)

__all__ = [
    "OUTCOME_KINDS",
    "CampaignSpec",
    "CampaignResult",
    "RunOutcome",
    "run_campaign",
    "run_single",
    "ExperimentConfig",
    "ExperimentResult",
    "RepetitionResult",
    "MatrixStudy",
    "run_experiment",
    "run_reference",
    "run_failure_free",
    "run_with_failures",
    "run_matrix_study",
    "FigureSeries",
    "BoxStats",
    "ProgressSweep",
    "figure_series",
    "progress_sweep",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "render_table1",
    "render_table2",
    "render_table3",
    "format_table",
]
