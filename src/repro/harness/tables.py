"""Builders and plain-text renderers for the paper's tables.

* Table 1 -- the test matrices and their structural properties.
* Table 2 -- reference time ``t0``, undisturbed overhead per phi,
  reconstruction time and total overhead with psi = phi failures, per failure
  location.
* Table 3 -- the maximum relative residual deviation (Eqn. (7)) of the ESR
  runs versus the reference PCG runs.

The builders return plain lists of dictionaries so the benchmarks can assert
on them and users can post-process them; the ``render_*`` functions produce
aligned text tables comparable to the paper's layout.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..matrices.suite import suite_table
from .experiment import MatrixStudy


# ---------------------------------------------------------------------------
# generic text-table rendering
# ---------------------------------------------------------------------------

def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, title: str = "") -> str:
    """Render a list of rows as an aligned plain-text table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if not np.isfinite(value):
            return "n/a"
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.2e}"
        return f"{value:.2f}"
    return str(value)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

def table1_rows(ids: Optional[List[str]] = None, n: Optional[int] = None,
                seed: int = 0) -> List[Dict[str, object]]:
    """Rows of Table 1: original matrices and their synthetic analogues."""
    return suite_table(n=n, seed=seed, ids=ids)


def render_table1(rows: Optional[List[Dict[str, object]]] = None, **kwargs) -> str:
    rows = rows if rows is not None else table1_rows(**kwargs)
    headers = ["Id", "Name", "Problem type", "orig n", "orig NNZ",
               "analogue n", "analogue NNZ", "nnz/row"]
    body = [
        [r["id"], r["name"], r["problem_type"], f"{r['original_n']:,}",
         f"{r['original_nnz']:,}", f"{r['analogue_n']:,}",
         f"{r['analogue_nnz']:,}", f"{r['analogue_nnz_per_row']:.1f}"]
        for r in rows
    ]
    return format_table(headers, body,
                        title="Table 1: SPD test matrices (originals and analogues)")


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------

def table2_rows(studies: Sequence[MatrixStudy]) -> List[Dict[str, object]]:
    """Rows of Table 2, one per (matrix, failure location) pair."""
    rows: List[Dict[str, object]] = []
    for study in studies:
        phis = sorted(study.undisturbed.keys())
        locations = sorted({loc for (_phi, loc) in study.with_failures})
        for location in locations:
            row: Dict[str, object] = {
                "id": study.config.label(),
                "t0": study.t0,
                "location": location,
            }
            for phi in phis:
                row[f"undisturbed_overhead_phi{phi}"] = \
                    study.undisturbed_overhead(phi)
                if (phi, location) in study.with_failures:
                    mean_rec, std_rec = study.reconstruction_time(phi, location)
                    mean_tot, std_tot = study.overhead_with_failures(phi, location)
                    row[f"reconstruction_phi{phi}"] = mean_rec
                    row[f"reconstruction_phi{phi}_std"] = std_rec
                    row[f"overhead_failures_phi{phi}"] = mean_tot
                    row[f"overhead_failures_phi{phi}_std"] = std_tot
            rows.append(row)
    return rows


def render_table2(studies: Sequence[MatrixStudy]) -> str:
    rows = table2_rows(studies)
    if not rows:
        return "Table 2: (no studies)"
    phis = sorted({
        int(k.split("phi")[1]) for row in rows for k in row
        if k.startswith("undisturbed_overhead_phi")
    })
    headers = ["Id", "t0 [s]", "Location"]
    headers += [f"undist. ovh. phi={p} [%]" for p in phis]
    headers += [f"recon. phi={p} [%]" for p in phis]
    headers += [f"ovh. w/ fail. phi={p} [%]" for p in phis]
    body = []
    for row in rows:
        line: List[object] = [row["id"], f"{row['t0']:.4g}", row["location"]]
        for p in phis:
            line.append(_fmt_pct(row.get(f"undisturbed_overhead_phi{p}")))
        for p in phis:
            line.append(_fmt_pm(row.get(f"reconstruction_phi{p}"),
                                row.get(f"reconstruction_phi{p}_std")))
        for p in phis:
            line.append(_fmt_pm(row.get(f"overhead_failures_phi{p}"),
                                row.get(f"overhead_failures_phi{p}_std")))
        body.append(line)
    return format_table(
        headers, body,
        title="Table 2: runtime overheads of the resilient PCG solver",
    )


def _fmt_pct(value) -> str:
    if value is None or not np.isfinite(value):
        return "-"
    return f"{value:.1f}"


def _fmt_pm(mean, std) -> str:
    if mean is None or not np.isfinite(mean):
        return "-"
    if std is None or not np.isfinite(std):
        return f"{mean:.1f}"
    return f"{mean:.1f} +/- {std:.1f}"


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------

def table3_rows(studies: Sequence[MatrixStudy]) -> List[Dict[str, object]]:
    """Rows of Table 3: max Delta_ESR over failure runs vs. Delta_PCG."""
    rows = []
    for study in studies:
        rows.append({
            "id": study.config.label(),
            "max_delta_esr": study.max_delta_esr(),
            "delta_pcg": study.delta_pcg(),
        })
    return rows


def render_table3(studies: Sequence[MatrixStudy]) -> str:
    rows = table3_rows(studies)
    headers = ["Id", "max Delta_ESR", "Delta_PCG"]
    body = [
        [r["id"], f"{r['max_delta_esr']:.3e}", f"{r['delta_pcg']:.3e}"]
        for r in rows
    ]
    return format_table(
        headers, body,
        title="Table 3: relative residual deviation (Eqn. 7) after convergence",
    )
