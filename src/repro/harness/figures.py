"""Data series and text rendering for the paper's figures.

* Figures 1-3 (per-matrix panels): for each number of redundant copies
  phi in {1, 3, 8}, a box of runtimes of the *failure-free* resilient solver
  (blue boxes in the paper) next to a box of runtimes with psi = phi
  simultaneous failures (orange boxes), plus the reference-time band and the
  relative-overhead axis.
* Figure 4: total runtime as a function of the progress fraction (20/50/80 %)
  at which three node failures are introduced.

No plotting library is used; the series are returned as plain data (so tests
and users can post-process them) and can be rendered as ASCII box summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..failures.scenarios import FailureLocation, FailureScenario
from .experiment import (
    ExperimentConfig,
    ExperimentResult,
    MatrixStudy,
    run_reference,
    run_with_failures,
)


@dataclass
class BoxStats:
    """Five-number summary of a sample (the paper's box-and-whisker boxes)."""

    values: List[float]

    @property
    def median(self) -> float:
        return float(np.median(self.values)) if self.values else float("nan")

    @property
    def q1(self) -> float:
        return float(np.percentile(self.values, 25)) if self.values else float("nan")

    @property
    def q3(self) -> float:
        return float(np.percentile(self.values, 75)) if self.values else float("nan")

    @property
    def whisker_low(self) -> float:
        if not self.values:
            return float("nan")
        iqr = self.q3 - self.q1
        lo = self.q1 - 1.5 * iqr
        inside = [v for v in self.values if v >= lo]
        return float(min(inside)) if inside else float(min(self.values))

    @property
    def whisker_high(self) -> float:
        if not self.values:
            return float("nan")
        iqr = self.q3 - self.q1
        hi = self.q3 + 1.5 * iqr
        inside = [v for v in self.values if v <= hi]
        return float(max(inside)) if inside else float(max(self.values))

    def as_dict(self) -> Dict[str, float]:
        return {
            "median": self.median, "q1": self.q1, "q3": self.q3,
            "whisker_low": self.whisker_low, "whisker_high": self.whisker_high,
            "n": len(self.values),
        }


@dataclass
class FigureSeries:
    """Data behind one panel of Figures 1-3."""

    matrix_id: str
    location: str
    #: Mean and std of the reference runtime (the blue band in the paper).
    reference_mean: float
    reference_std: float
    #: phi -> box of failure-free resilient runtimes (blue boxes).
    undisturbed: Dict[int, BoxStats] = field(default_factory=dict)
    #: phi -> box of runtimes with psi = phi failures (orange boxes).
    with_failures: Dict[int, BoxStats] = field(default_factory=dict)

    def relative_overhead(self, phi: int, *, disturbed: bool = True) -> float:
        """Median relative overhead with respect to the reference mean."""
        box = self.with_failures.get(phi) if disturbed else self.undisturbed.get(phi)
        if box is None or not np.isfinite(self.reference_mean) \
                or self.reference_mean <= 0:
            return float("nan")
        return (box.median - self.reference_mean) / self.reference_mean

    def phis(self) -> List[int]:
        return sorted(set(self.undisturbed) | set(self.with_failures))

    def render(self) -> str:
        """ASCII rendering of the panel."""
        lines = [
            f"Figure panel: {self.matrix_id}, failures at {self.location}",
            f"reference time: {self.reference_mean:.4g} +/- "
            f"{self.reference_std:.2g} s",
            f"{'phi':>4}  {'undisturbed median [s]':>24}  "
            f"{'with failures median [s]':>26}  {'rel. overhead':>14}",
        ]
        for phi in self.phis():
            undist = self.undisturbed.get(phi)
            dist = self.with_failures.get(phi)
            lines.append(
                f"{phi:>4}  "
                f"{(undist.median if undist else float('nan')):>24.4g}  "
                f"{(dist.median if dist else float('nan')):>26.4g}  "
                f"{self.relative_overhead(phi):>13.1%}"
            )
        return "\n".join(lines)


def figure_series(study: MatrixStudy, location: FailureLocation
                  ) -> FigureSeries:
    """Build the Fig. 1/2/3 panel data from a completed matrix study."""
    series = FigureSeries(
        matrix_id=study.config.label(),
        location=location.value,
        reference_mean=study.reference.mean(),
        reference_std=study.reference.std(),
    )
    for phi, runs in study.undisturbed.items():
        series.undisturbed[phi] = BoxStats(runs.times())
    for (phi, loc), runs in study.with_failures.items():
        if loc == location.value:
            series.with_failures[phi] = BoxStats(runs.times())
    return series


@dataclass
class ProgressSweep:
    """Data behind Figure 4: runtime vs. progress-at-failure."""

    matrix_id: str
    location: str
    phi: int
    #: progress fraction -> box of total runtimes.
    boxes: Dict[float, BoxStats] = field(default_factory=dict)
    reference_mean: float = float("nan")

    def fractions(self) -> List[float]:
        return sorted(self.boxes)

    def medians(self) -> List[float]:
        return [self.boxes[f].median for f in self.fractions()]

    def spread(self) -> float:
        """Relative spread of the medians across progress fractions.

        The paper observes (Fig. 4) that the failure iteration has little
        influence on the total runtime; this is the quantity that statement
        is checked against.
        """
        med = self.medians()
        if not med or not np.isfinite(self.reference_mean) or \
                self.reference_mean <= 0:
            return float("nan")
        return (max(med) - min(med)) / self.reference_mean

    def render(self) -> str:
        lines = [
            f"Figure 4 panel: {self.matrix_id}, {self.phi} failures at "
            f"{self.location}",
            f"{'progress':>9}  {'median [s]':>12}  {'IQR [s]':>18}",
        ]
        for fraction in self.fractions():
            box = self.boxes[fraction]
            lines.append(
                f"{fraction:>8.0%}  {box.median:>12.4g}  "
                f"[{box.q1:.4g}, {box.q3:.4g}]"
            )
        return "\n".join(lines)


def progress_sweep(config: ExperimentConfig, *, phi: int = 3,
                   location: FailureLocation = FailureLocation.CENTER,
                   fractions: Sequence[float] = (0.2, 0.5, 0.8),
                   reference: Optional[ExperimentResult] = None
                   ) -> ProgressSweep:
    """Run the Figure-4 experiment: failures at several progress fractions."""
    reference = reference if reference is not None else run_reference(config)
    reference_iterations = int(round(reference.mean_iterations))
    sweep = ProgressSweep(
        matrix_id=config.label(), location=location.value, phi=phi,
        reference_mean=reference.mean(),
    )
    for fraction in fractions:
        scenario = FailureScenario(n_failures=phi, progress_fraction=fraction,
                                   location=location)
        runs = run_with_failures(config, phi, scenario, reference_iterations)
        sweep.boxes[fraction] = BoxStats(runs.times())
    return sweep
