"""Monte-Carlo reliability campaigns: thousands of seeded solve runs.

The single-run harness (:mod:`repro.harness.experiment`) measures one
deterministic failure scenario at a time; a *campaign* instead samples the
stochastic traces of :mod:`repro.failures.traces` across many seeded runs
and aggregates distributional answers:

* **survival probability** -- how often does the solver finish without an
  unrecoverable state loss,
* **overhead percentiles** -- p50/p99 simulated time relative to the
  failure-free baseline of the same configuration,
* **recovery counts** and **time to unrecoverable loss**.

Runs fan out over a ``multiprocessing`` pool (:func:`run_campaign`) with
per-run timeouts and crash isolation: a worker that raises, stalls, or dies
records a structured :class:`RunOutcome` (``"error"`` / ``"timeout"`` /
``"worker_crashed"``) instead of killing the campaign, and an exhausted
recovery (the typed :class:`~repro.cluster.errors.UnrecoverableStateError`)
is classified as ``"unrecoverable"`` -- never an unhandled exception.

Everything is reproducible from ``CampaignSpec.seed``: run ``i`` derives
its trace seed via :func:`repro.utils.rng.stable_hash_seed`, so aggregates
are bit-identical across invocations and worker counts (``workers=0`` runs
inline, useful for tests and debugging).
"""

from __future__ import annotations

import signal
import threading
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from ..cluster.errors import UnrecoverableStateError
from ..core.placement import placement_name
from ..core.redundancy import BackupPlacement
from ..core.spec import ResilienceSpec, SolveSpec
from ..failures.traces import TraceSpec, generate_trace
from ..utils.rng import stable_hash_seed

__all__ = [
    "OUTCOME_KINDS",
    "CampaignSpec",
    "RunOutcome",
    "CampaignResult",
    "run_campaign",
    "run_single",
]

#: Every terminal state a campaign run can end in.
OUTCOME_KINDS = ("converged", "not_converged", "unrecoverable", "timeout",
                 "error", "worker_crashed")


@dataclass(frozen=True)
class CampaignSpec:
    """One reliability campaign: solve configuration + trace + run count.

    JSON round-trips through ``to_dict``/``from_dict`` (the dictionary is
    also the payload shipped to pool workers, so a campaign is fully
    described by plain data).
    """

    #: Matrix family / size / seed fed to :func:`repro.matrices.build_matrix`.
    matrix_id: str = "M3"
    matrix_size: int = 160
    matrix_seed: int = 0
    n_nodes: int = 8
    #: Redundant copies per block (``0 <= phi < n_nodes``).
    phi: int = 3
    #: Placement strategy: enum member or registered name.
    placement: Union[BackupPlacement, str] = "paper"
    #: Rack size for the rack-aware placements (``None`` = default layout).
    rack_size: Optional[int] = None
    preconditioner: str = "block_jacobi"
    rtol: float = 1e-8
    max_iterations: Optional[int] = None
    #: Stochastic failure model sampled per run (``trace.n_nodes`` must
    #: match :attr:`n_nodes`).
    trace: TraceSpec = field(default_factory=TraceSpec)
    #: Number of seeded runs.
    n_runs: int = 64
    #: Campaign base seed; run ``i`` uses ``stable_hash_seed("campaign-run",
    #: i, base_seed=seed)``.
    seed: int = 0
    #: Per-run wallclock timeout in seconds (``0`` disables the alarm).
    timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if int(self.n_runs) < 1:
            raise ValueError(f"n_runs must be positive, got {self.n_runs}")
        if not 0 <= int(self.phi) < int(self.n_nodes):
            raise ValueError(
                f"phi must satisfy 0 <= phi < n_nodes, got phi={self.phi} "
                f"with n_nodes={self.n_nodes}")
        if float(self.timeout_s) < 0.0:
            raise ValueError(
                f"timeout_s must be non-negative, got {self.timeout_s}")
        if int(self.trace.n_nodes) != int(self.n_nodes):
            raise ValueError(
                f"trace.n_nodes={self.trace.n_nodes} does not match the "
                f"campaign's n_nodes={self.n_nodes}")

    # -- derived configuration -------------------------------------------------
    def solve_spec(self, failures: Tuple = ()) -> SolveSpec:
        """The :class:`SolveSpec` of one run carrying *failures*."""
        return SolveSpec(
            rtol=self.rtol, max_iterations=self.max_iterations,
            preconditioner=self.preconditioner,
            resilience=ResilienceSpec(
                phi=self.phi, placement=self.placement,
                rack_size=self.rack_size, failures=tuple(failures),
            ),
        )

    def run_seed(self, index: int) -> int:
        """The trace seed of run *index* (stable across invocations)."""
        return stable_hash_seed("campaign-run", int(index),
                                base_seed=int(self.seed))

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "matrix_id": self.matrix_id,
            "matrix_size": self.matrix_size,
            "matrix_seed": self.matrix_seed,
            "n_nodes": self.n_nodes,
            "phi": self.phi,
            "placement": placement_name(self.placement),
            "rack_size": self.rack_size,
            "preconditioner": self.preconditioner,
            "rtol": self.rtol,
            "max_iterations": self.max_iterations,
            "trace": self.trace.to_dict(),
            "n_runs": self.n_runs,
            "seed": self.seed,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        known = [f.name for f in fields(cls)]
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(f"unknown CampaignSpec keys {unknown}; "
                             f"known keys: {sorted(known)}")
        kwargs = dict(data)
        if isinstance(kwargs.get("trace"), Mapping):
            kwargs["trace"] = TraceSpec.from_dict(kwargs["trace"])
        return cls(**kwargs)


@dataclass(frozen=True)
class RunOutcome:
    """Structured terminal state of one campaign run (always JSON-able)."""

    index: int
    #: One of :data:`OUTCOME_KINDS`.
    kind: str
    iterations: Optional[int] = None
    simulated_time: Optional[float] = None
    #: Completed recovery episodes during the run.
    n_recoveries: int = 0
    #: Failure events / total node failures the trace injected.
    n_events: int = 0
    n_failures: int = 0
    #: Iteration at which recovery became impossible (``"unrecoverable"``).
    loss_iteration: Optional[int] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in OUTCOME_KINDS:
            raise ValueError(f"unknown outcome kind {self.kind!r}; "
                             f"known: {OUTCOME_KINDS}")

    @property
    def survived(self) -> bool:
        """True when the run finished without losing state or crashing."""
        return self.kind in ("converged", "not_converged")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "iterations": self.iterations,
            "simulated_time": self.simulated_time,
            "n_recoveries": self.n_recoveries,
            "n_events": self.n_events,
            "n_failures": self.n_failures,
            "loss_iteration": self.loss_iteration,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunOutcome":
        known = [f.name for f in fields(cls)]
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ValueError(f"unknown RunOutcome keys {unknown}; "
                             f"known keys: {sorted(known)}")
        return cls(**data)


# -- single-run execution (runs inside pool workers) ---------------------------

#: Matrices are deterministic in (id, n, seed); cache per worker process.
_MATRIX_CACHE: Dict[Tuple[str, int, int], Any] = {}


def _campaign_matrix(spec: CampaignSpec):
    key = (str(spec.matrix_id), int(spec.matrix_size), int(spec.matrix_seed))
    if key not in _MATRIX_CACHE:
        from ..matrices import build_matrix
        _MATRIX_CACHE[key] = build_matrix(key[0], n=key[1], seed=key[2])
    return _MATRIX_CACHE[key]


class _RunTimeout(Exception):
    """Raised by the SIGALRM handler when a run overruns its budget."""


def _alarm_handler(signum, frame):  # pragma: no cover - timing dependent
    raise _RunTimeout()


def _install_alarm(timeout_s: float):
    """Arm a per-run wallclock alarm; returns the restore handle (or None).

    Only available on platforms with ``SIGALRM`` and from the main thread;
    elsewhere the run executes without a timeout (the pool's crash
    isolation still bounds the damage).
    """
    if timeout_s <= 0.0 or not hasattr(signal, "SIGALRM") or \
            threading.current_thread() is not threading.main_thread():
        return None
    previous = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    return previous


def _clear_alarm(previous) -> None:
    if previous is None:
        return
    signal.setitimer(signal.ITIMER_REAL, 0.0)
    signal.signal(signal.SIGALRM, previous)


def _execute_run(spec: CampaignSpec, index: int) -> Dict[str, Any]:
    """One seeded solve; classifies unrecoverable loss as a typed outcome."""
    from ..core.api import solve

    trace = generate_trace(spec.trace, seed=spec.run_seed(index))
    events = trace.to_failure_events()
    outcome: Dict[str, Any] = {
        "index": int(index),
        "n_events": len(events),
        "n_failures": sum(len(e.ranks) for e in events),
    }
    matrix = _campaign_matrix(spec)
    try:
        result = solve(matrix, n_nodes=spec.n_nodes,
                       spec=spec.solve_spec(tuple(events)))
    except UnrecoverableStateError as exc:
        outcome.update(
            kind="unrecoverable",
            loss_iteration=getattr(exc, "iteration", None),
            detail=str(exc)[:200],
        )
        return outcome
    # Serialize through the result's own to_dict instead of hand-picking
    # attributes; the fields below are bit-identical to the originals.
    summary = result.to_dict(include_history=False)
    outcome.update(
        kind="converged" if summary["converged"] else "not_converged",
        iterations=int(summary["iterations"]),
        simulated_time=float(summary["simulated_time"]),
        n_recoveries=len(summary["recoveries"]),
    )
    return outcome


def run_single(payload: Mapping[str, Any], index: int) -> Dict[str, Any]:
    """Execute campaign run *index*; never raises.

    This is the function shipped to pool workers: *payload* is
    ``CampaignSpec.to_dict()`` output, the return value a
    :class:`RunOutcome` dictionary.  Timeouts, unrecoverable losses and
    arbitrary exceptions all come back as structured outcomes.
    """
    try:
        spec = CampaignSpec.from_dict(payload)
    except Exception as exc:
        return {"index": int(index), "kind": "error",
                "detail": f"{type(exc).__name__}: {exc}"[:200]}
    previous = _install_alarm(float(spec.timeout_s))
    try:
        return _execute_run(spec, index)
    except _RunTimeout:  # pragma: no cover - timing dependent
        return {"index": int(index), "kind": "timeout",
                "detail": f"run exceeded {spec.timeout_s:.1f}s"}
    except Exception as exc:
        return {"index": int(index), "kind": "error",
                "detail": f"{type(exc).__name__}: {exc}"[:200]}
    finally:
        _clear_alarm(previous)


def _baseline_outcome(spec: CampaignSpec) -> RunOutcome:
    """The failure-free reference run (same configuration, no events)."""
    from ..core.api import solve

    matrix = _campaign_matrix(spec)
    result = solve(matrix, n_nodes=spec.n_nodes, spec=spec.solve_spec(()))
    summary = result.to_dict(include_history=False)
    return RunOutcome(
        index=-1,
        kind="converged" if summary["converged"] else "not_converged",
        iterations=int(summary["iterations"]),
        simulated_time=float(summary["simulated_time"]),
    )


# -- campaign execution --------------------------------------------------------

#: Signature of an injectable run function (tests substitute this).
RunFn = Callable[[Mapping[str, Any], int], Dict[str, Any]]


def _default_workers() -> int:
    import os
    return max(1, min(8, (os.cpu_count() or 2) - 1))


def _crashed(index: int, exc: BaseException) -> Dict[str, Any]:
    return {"index": int(index), "kind": "worker_crashed",
            "detail": f"{type(exc).__name__}: {exc}"[:200]}


def run_campaign(spec: CampaignSpec, *, workers: Optional[int] = None,
                 run_fn: Optional[RunFn] = None) -> "CampaignResult":
    """Run the whole campaign; returns the aggregated :class:`CampaignResult`.

    ``workers=None`` picks a pool size from the CPU count; ``workers=0``
    runs everything inline in this process (bit-identical aggregates, used
    by the determinism tests).  *run_fn* substitutes the per-run function
    (crash-isolation tests inject misbehaving workers).

    Crash isolation is two-phase: all runs go through one shared pool
    first; any run whose future raises (a worker died and broke the pool,
    taking innocent pending futures with it) is retried in its own
    single-run pool, so exactly the misbehaving runs end up
    ``"worker_crashed"`` and the campaign always completes.
    """
    fn: RunFn = run_fn if run_fn is not None else run_single
    payload = spec.to_dict()
    baseline = _baseline_outcome(spec)
    outcomes: Dict[int, Dict[str, Any]] = {}
    if workers is None:
        workers = _default_workers()
    if workers <= 0:
        for index in range(spec.n_runs):
            try:
                outcomes[index] = fn(payload, index)
            except Exception as exc:
                outcomes[index] = _crashed(index, exc)
    else:
        retry: List[int] = []
        with ProcessPoolExecutor(max_workers=min(workers, spec.n_runs)) \
                as pool:
            futures = {pool.submit(fn, payload, index): index
                       for index in range(spec.n_runs)}
            for future in as_completed(futures):
                index = futures[future]
                try:
                    outcomes[index] = future.result()
                except Exception:
                    retry.append(index)
        for index in sorted(retry):
            with ProcessPoolExecutor(max_workers=1) as pool:
                try:
                    outcomes[index] = pool.submit(fn, payload, index).result()
                except Exception as exc:
                    outcomes[index] = _crashed(index, exc)
    ordered = tuple(
        RunOutcome.from_dict(outcomes[index]) for index in range(spec.n_runs)
    )
    return CampaignResult(spec=spec, baseline=baseline, outcomes=ordered)


# -- aggregation ---------------------------------------------------------------

def _percentile_stats(values: List[float]) -> Dict[str, float]:
    arr = np.asarray(values, dtype=float)
    return {
        "p50": float(np.percentile(arr, 50.0)),
        "p99": float(np.percentile(arr, 99.0)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }


@dataclass(frozen=True)
class CampaignResult:
    """All run outcomes of one campaign plus the aggregate statistics."""

    spec: CampaignSpec
    #: The failure-free reference run (overhead denominator).
    baseline: RunOutcome
    #: One outcome per run, in run-index order.
    outcomes: Tuple[RunOutcome, ...]

    def counts(self) -> Dict[str, int]:
        """Outcome counts per kind (every kind present, zero-filled)."""
        counts = {kind: 0 for kind in OUTCOME_KINDS}
        for outcome in self.outcomes:
            counts[outcome.kind] += 1
        return counts

    @property
    def n_runs(self) -> int:
        return len(self.outcomes)

    @property
    def survival_probability(self) -> float:
        """Fraction of runs that finished without losing state or crashing."""
        return sum(1 for o in self.outcomes if o.survived) / self.n_runs

    @property
    def unrecoverable_probability(self) -> float:
        return sum(1 for o in self.outcomes
                   if o.kind == "unrecoverable") / self.n_runs

    @property
    def converged_fraction(self) -> float:
        return sum(1 for o in self.outcomes
                   if o.kind == "converged") / self.n_runs

    def overhead_percentiles(self) -> Optional[Dict[str, float]]:
        """p50/p99/mean/max simulated-time overhead (%) vs. failure-free.

        Computed over the converged runs; ``None`` when no run converged or
        the baseline did not converge.
        """
        t0 = self.baseline.simulated_time
        if self.baseline.kind != "converged" or not t0:
            return None
        overheads = [
            100.0 * (o.simulated_time - t0) / t0
            for o in self.outcomes
            if o.kind == "converged" and o.simulated_time is not None
        ]
        if not overheads:
            return None
        return _percentile_stats(overheads)

    def loss_iteration_stats(self) -> Optional[Dict[str, float]]:
        """Time-to-unrecoverable-loss statistics (iterations), if any."""
        losses = [float(o.loss_iteration) for o in self.outcomes
                  if o.kind == "unrecoverable" and o.loss_iteration is not None]
        if not losses:
            return None
        return _percentile_stats(losses)

    def aggregate(self) -> Dict[str, Any]:
        """Deterministic JSON-able summary (bit-identical across reruns)."""
        recoveries = [o.n_recoveries for o in self.outcomes]
        return {
            "n_runs": self.n_runs,
            "counts": self.counts(),
            "survival_probability": self.survival_probability,
            "unrecoverable_probability": self.unrecoverable_probability,
            "converged_fraction": self.converged_fraction,
            "baseline": {
                "iterations": self.baseline.iterations,
                "simulated_time": self.baseline.simulated_time,
            },
            "overhead_pct": self.overhead_percentiles(),
            "recoveries": {
                "total": int(sum(recoveries)),
                "mean_per_run": float(sum(recoveries)) / self.n_runs,
                "max": int(max(recoveries, default=0)),
            },
            "failures_injected": {
                "events": int(sum(o.n_events for o in self.outcomes)),
                "node_failures": int(sum(o.n_failures for o in self.outcomes)),
            },
            "loss_iteration": self.loss_iteration_stats(),
        }

    def describe(self) -> str:
        counts = self.counts()
        parts = [f"{kind}={counts[kind]}" for kind in OUTCOME_KINDS
                 if counts[kind]]
        return (f"CampaignResult(n_runs={self.n_runs}, "
                f"survival={self.survival_probability:.3f}, "
                f"{', '.join(parts)})")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()
