"""SimSan -- a runtime sanitizer for the simulated cluster.

ASan for the virtual machine: where :mod:`repro.lint` enforces the
simulator's invariants statically, SimSan checks them *while the
simulation runs*.  The cluster substrate (:class:`~repro.cluster.node.
NodeMemory`, :class:`~repro.cluster.communicator.Communicator`,
:class:`~repro.cluster.cost_model.CostLedger`, the block stores) carries
cheap hook points that are inert until a sanitizer is activated; with one
active, four detectors watch every simulated operation:

``use_after_failure``
    Any *silent* read (``get``/``pop`` with a default) of a node-memory key
    that was lost in that node's failure and has not been freshly written
    since (i.e. the replacement rejoined but reconstruction never restored
    the block).  Without the sanitizer such a read returns the default as
    if the data had never existed.  Plain ``memory[key]`` reads are not
    hooked: a lost key raises a loud ``KeyError`` there, which callers
    handle deliberately (the SpMV engine's output-block probe).
``unmatched_send``
    Point-to-point traffic must quiesce at collective boundaries (ULFM
    semantics) and by sanitizer shutdown: a collective entered with
    sent-but-unreceived messages, or a sanitizer stopped over a communicator
    with pending mail, is flagged.
``allreduce_uniformity``
    All contributions to one allreduce must carry the *same shape* (the
    communicator itself only checks element counts; equal-size different-
    shape payloads broadcast-sum into silently wrong results).
``uncharged_op``
    Simulated operations that must book simulated cost open an *op window*
    (:func:`op_window`); a window that closes with zero ledger delta means
    an operation executed for free -- the exact bug class that invalidates
    every overhead number the harness reports.

One additional detector is opt-in (not armed by a plain
``REPRO_SANITIZE=1``, select it explicitly):

``hook_super``
    The dynamic cross-check of lint rule R010: a resilient solver
    iteration completing without the ESR mixin's ``_after_spmv`` hook
    having fired means an override somewhere in the MRO dropped the
    cooperative ``super()`` chain -- redundant copies silently stop being
    kept and the next failure is unrecoverable.

Violations raise :class:`SanitizerError` with structured rank / key /
iteration / phase context.

Activation is opt-in and cheap to leave off (one ``is None`` check per
hook):

* environment: ``REPRO_SANITIZE=1 pytest`` (honoured on ``import repro``;
  a comma-separated detector list such as
  ``REPRO_SANITIZE=use_after_failure,uncharged_op`` selects a subset);
* context manager: ``with repro.sanitizer.sanitized(): ...``;
* explicit: :func:`enable` / :func:`disable`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, FrozenSet, Iterable, Iterator, Optional, Tuple
from weakref import WeakKeyDictionary, WeakSet

import numpy as np

#: Every default detector, all enabled by a plain ``REPRO_SANITIZE=1``.
DETECTORS: Tuple[str, ...] = (
    "use_after_failure",
    "unmatched_send",
    "allreduce_uniformity",
    "uncharged_op",
)

#: Opt-in detectors: valid in explicit selections
#: (``REPRO_SANITIZE=hook_super`` or ``enable(DETECTORS + ("hook_super",))``)
#: but never armed by default -- ``hook_super`` intentionally trips on
#: solvers that are *built* to skip the resilience hooks (the baselines),
#: so it only makes sense on runs known to use the ESR solvers.
OPT_IN_DETECTORS: Tuple[str, ...] = (
    "hook_super",
)

#: The active sanitizer (``None`` = instrumentation inert).  Hook sites read
#: this attribute directly; everything else should go through the public
#: :func:`enable` / :func:`disable` / :func:`sanitized` API.
_ACTIVE: Optional["SimSan"] = None


class SanitizerError(RuntimeError):
    """A simulator invariant violated at runtime, with structured context.

    Parameters
    ----------
    detector:
        The detector that fired (one of :data:`DETECTORS`).
    message:
        Human-readable description of the violation.
    rank, key, op, phase, iteration:
        Structured context: the affected rank, the node-memory key, the
        simulated operation, the last charged ledger phase and the solver
        iteration (where known).
    """

    def __init__(self, detector: str, message: str, *,
                 rank: Optional[int] = None, key: Any = None,
                 op: Optional[str] = None, phase: Optional[str] = None,
                 iteration: Optional[int] = None):
        self.detector = detector
        self.rank = rank
        self.key = key
        self.op = op
        self.phase = phase
        self.iteration = iteration
        context = [f"{name}={value!r}" for name, value in (
            ("rank", rank), ("key", key), ("op", op),
            ("phase", phase), ("iteration", iteration),
        ) if value is not None]
        suffix = f" [{', '.join(context)}]" if context else ""
        super().__init__(f"SimSan:{detector}: {message}{suffix}")


class SimSan:
    """The sanitizer state machine behind the module-level hooks.

    One instance tracks tombstones of failed-and-wiped node-memory keys,
    the set of live communicators (weakly, so instrumentation never keeps
    a cluster alive), per-detector enablement, event counters in
    :attr:`stats`, and the rank/iteration/phase context attached to every
    :class:`SanitizerError`.
    """

    def __init__(self, detectors: Optional[Iterable[str]] = None):
        chosen = tuple(detectors) if detectors is not None else DETECTORS
        unknown = sorted(set(chosen) - set(DETECTORS) - set(OPT_IN_DETECTORS))
        if unknown:
            raise ValueError(
                f"unknown sanitizer detector(s) {unknown}; "
                f"available: {DETECTORS + OPT_IN_DETECTORS}")
        self.detectors: FrozenSet[str] = frozenset(chosen)
        #: ``NodeMemory -> {key, ...}`` of data lost in that node's failure
        #: and not rewritten since.
        self._tombstones: "WeakKeyDictionary[Any, set]" = WeakKeyDictionary()
        self._comms: "WeakSet[Any]" = WeakSet()
        self.stats: Dict[str, int] = {
            "memory_reads": 0,
            "memory_writes": 0,
            "node_failures": 0,
            "sends": 0,
            "collectives": 0,
            "op_windows": 0,
            "blocks_restored": 0,
            "resilience_hooks": 0,
        }
        self.context: Dict[str, Any] = {"iteration": None, "phase": None}
        #: ``solver -> {hook name, ...}`` fired since that solver's last
        #: ``note_iteration`` (weak: watching never keeps a solver alive).
        self._hook_watch: "WeakKeyDictionary[Any, set]" = WeakKeyDictionary()

    def enabled(self, detector: str) -> bool:
        return detector in self.detectors

    def _error(self, detector: str, message: str, **kwargs: Any
               ) -> SanitizerError:
        kwargs.setdefault("iteration", self.context.get("iteration"))
        kwargs.setdefault("phase", self.context.get("phase"))
        return SanitizerError(detector, message, **kwargs)

    # -- node-memory hooks (called from repro.cluster.node) ----------------
    def on_node_fail(self, node: Any) -> None:
        """Record which keys are about to be wiped by *node*'s failure."""
        self.stats["node_failures"] += 1
        memory = node.memory
        lost = self._tombstones.setdefault(memory, set())
        lost.update(memory.raw_keys())

    def on_memory_read(self, node: Any, key: Any) -> None:
        self.stats["memory_reads"] += 1
        if not self.enabled("use_after_failure"):
            return
        lost = self._tombstones.get(node.memory)
        if lost is not None and key in lost:
            raise self._error(
                "use_after_failure",
                f"silent read of key {key!r} on rank {node.rank}: the value "
                "was lost in that rank's failure and has not been "
                "reconstructed, yet the read would return a default as if "
                "it had never existed",
                rank=node.rank, key=key)

    def on_memory_write(self, node: Any, key: Any) -> None:
        """A fresh write resurrects *key*: clear its tombstone."""
        self.stats["memory_writes"] += 1
        lost = self._tombstones.get(node.memory)
        if lost is not None:
            lost.discard(key)

    def on_memory_invalidate(self, node: Any, key: Any) -> None:
        """An explicit driver-side scrub also clears the tombstone."""
        lost = self._tombstones.get(node.memory)
        if lost is not None:
            lost.discard(key)

    def tombstoned_keys(self, node: Any) -> Tuple[Any, ...]:
        """The keys currently tombstoned on *node* (diagnostics/tests)."""
        lost = self._tombstones.get(node.memory)
        if not lost:
            return ()
        return tuple(sorted(lost, key=repr))

    # -- communicator hooks (called from repro.cluster.communicator) -------
    def on_send(self, comm: Any, src: int, dst: int, tag: Any) -> None:
        self.stats["sends"] += 1
        self._comms.add(comm)

    def on_collective(self, comm: Any, op: str,
                      contributions: Optional[Dict[int, Any]] = None) -> None:
        """Boundary checks when *comm* enters the collective *op*."""
        self.stats["collectives"] += 1
        self._comms.add(comm)
        if self.enabled("unmatched_send"):
            pending = comm.pending_messages()
            if pending:
                raise self._error(
                    "unmatched_send",
                    f"collective {op!r} entered with {pending} "
                    "sent-but-unreceived point-to-point message(s); "
                    "p2p traffic must quiesce at collective boundaries",
                    op=op)
        if contributions and self.enabled("allreduce_uniformity"):
            shapes = {rank: np.shape(value)
                      for rank, value in contributions.items()}
            if len(set(shapes.values())) > 1:
                detail = ", ".join(
                    f"rank {rank}: {shape}"
                    for rank, shape in sorted(shapes.items()))
                raise self._error(
                    "allreduce_uniformity",
                    f"{op} contributions have non-uniform shapes "
                    f"({detail}); equal-size different-shape payloads "
                    "broadcast-sum into wrong results",
                    op=op)

    # -- block-store hooks (called from repro.distributed.blockstore) ------
    def on_block_restored(self, rank: int, key: Any) -> None:
        self.stats["blocks_restored"] += 1

    # -- ledger hooks (called from repro.cluster.cost_model) ---------------
    def on_charge(self, phase: str) -> None:
        self.context["phase"] = phase

    # -- solver hooks (called from the PCG drivers) ------------------------
    def note_iteration(self, iteration: int, solver: Any = None) -> None:
        """Record the solver iteration; with ``hook_super`` armed and a
        *solver* passed, also verify the previous iteration ran the ESR
        resilience hooks (only solvers carrying ESR state -- an ``esr``
        attribute -- are subject)."""
        self.context["iteration"] = iteration
        if solver is None or not self.enabled("hook_super"):
            return
        fired = self._hook_watch.get(solver)
        if fired is not None and hasattr(solver, "esr") and \
                "after_spmv" not in fired:
            raise self._error(
                "hook_super",
                f"{type(solver).__name__} completed an iteration without "
                "the ESR after_spmv hook firing; an override in the MRO "
                "dropped the cooperative super() chain (lint rule R010), "
                "so redundant copies are no longer being kept",
                iteration=iteration)
        self._hook_watch[solver] = set()

    def on_resilience_hook(self, solver: Any, name: str) -> None:
        """A resilience-mixin hook ran for *solver* (records protocol
        liveness for the ``hook_super`` detector)."""
        self.stats["resilience_hooks"] += 1
        fired = self._hook_watch.get(solver)
        if fired is not None:
            fired.add(name)

    # -- shutdown checks ---------------------------------------------------
    def final_checks(self) -> None:
        """Run end-of-session checks (pending mail on live communicators)."""
        if not self.enabled("unmatched_send"):
            return
        for comm in list(self._comms):
            pending = comm.pending_messages()
            if pending:
                raise self._error(
                    "unmatched_send",
                    f"sanitizer stopped with {pending} sent-but-unreceived "
                    "message(s) still buffered on a communicator")


# ---------------------------------------------------------------------------
# activation API
# ---------------------------------------------------------------------------

def active() -> Optional[SimSan]:
    """The currently active sanitizer, or ``None``."""
    return _ACTIVE


def is_active() -> bool:
    return _ACTIVE is not None


def enable(detectors: Optional[Iterable[str]] = None) -> SimSan:
    """Activate SimSan process-wide (idempotent while already active)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = SimSan(detectors)
    return _ACTIVE


def disable(*, run_final_checks: bool = False) -> None:
    """Deactivate SimSan (optionally running the shutdown checks first)."""
    global _ACTIVE
    san, _ACTIVE = _ACTIVE, None
    if run_final_checks and san is not None:
        san.final_checks()


@contextmanager
def sanitized(detectors: Optional[Iterable[str]] = None
              ) -> Iterator[SimSan]:
    """Run a block under SimSan; restores the previous state on exit.

    The shutdown checks (pending point-to-point mail) run on clean exit --
    not when the block is already raising, so the original error wins.
    """
    global _ACTIVE
    previous = _ACTIVE
    san = SimSan(detectors) if previous is None else previous
    _ACTIVE = san
    try:
        yield san
    except BaseException:
        _ACTIVE = previous
        raise
    else:
        _ACTIVE = previous
        if previous is None:
            san.final_checks()


@contextmanager
def op_window(op: str, ledger: Any, *, required: bool = True,
              **context: Any) -> Iterator[None]:
    """Declare one simulated operation that must charge the ledger.

    Wrap the code that simulates *op* against *ledger*; when the
    ``uncharged_op`` detector is active and *required* is true, the window
    closing with neither simulated time nor message traffic booked raises
    :class:`SanitizerError`.  Inert (zero snapshot cost) when no sanitizer
    is active.
    """
    san = _ACTIVE
    if san is None or not required or not san.enabled("uncharged_op"):
        yield
        return
    san.stats["op_windows"] += 1
    time_before = ledger.total_time()
    messages_before = ledger.total_messages()
    yield
    if ledger.total_time() == time_before and \
            ledger.total_messages() == messages_before:
        raise san._error(
            "uncharged_op",
            f"op window {op!r} closed with zero ledger delta; every "
            "simulated operation must book simulated cost",
            op=op, **context)


def _env_detectors(value: str) -> Optional[Tuple[str, ...]]:
    """Parse ``REPRO_SANITIZE`` into a detector selection (``None`` = all)."""
    lowered = value.strip().lower()
    if lowered in ("1", "true", "yes", "on", "all", ""):
        return None
    return tuple(part.strip() for part in lowered.split(",") if part.strip())


def enable_from_env(environ: Optional[Dict[str, str]] = None
                    ) -> Optional[SimSan]:
    """Honour ``REPRO_SANITIZE`` (called from ``import repro``)."""
    env = os.environ if environ is None else environ
    value = env.get("REPRO_SANITIZE")
    if value is None or value.strip().lower() in ("0", "false", "no", "off"):
        return None
    return enable(_env_detectors(value))
