"""Local subsystem solver used by the ESR reconstruction.

Lines 6 and 8 of the reconstruction (Alg. 2) require solving linear systems
with the submatrices ``P_{I_f, I_f}`` and ``A_{I_f, I_f}``.  These systems are
small compared to the global problem (``|I_f| = psi * n / N``), SPD and full
rank, so the paper solves them either directly or with an inner PCG using an
ILU-preconditioned block Jacobi and a very tight tolerance (residual
reduction by 1e14) so that the reconstruction error stays negligible
(Sec. 6, "Avoiding loss of orthogonality").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu, spilu

from ..distributed.partition import BlockRowPartition
from ..precond.base import Preconditioner
from .cg import pcg
from .result import SolveResult

#: Supported methods for the reconstruction subsystems.
LOCAL_SOLVER_METHODS = ("direct", "pcg_ilu", "pcg_jacobi")


@dataclass
class LocalSolveStats:
    """Statistics of one local subsystem solve (for the cost model/reports)."""

    method: str
    size: int
    nnz: int
    iterations: int
    residual_norm: float
    #: Approximate flop count charged to the recovery-compute phase.
    work_flops: float

    def to_dict(self) -> dict:
        """JSON-serializable dictionary of the stats."""
        return {
            "method": self.method,
            "size": int(self.size),
            "nnz": int(self.nnz),
            "iterations": int(self.iterations),
            "residual_norm": float(self.residual_norm),
            "work_flops": float(self.work_flops),
        }


class _IluPreconditioner(Preconditioner):
    """Thin ILU wrapper so the inner PCG can use scipy's spilu.

    Natural ordering and no diagonal pivoting keep the factorisation close to
    symmetric (CG needs an SPD preconditioner); a small drop tolerance with a
    generous fill factor makes the factor accurate enough that the inner PCG
    reaches the 1e-14 reconstruction tolerance in a handful of iterations.
    """

    name = "ilu"

    def __init__(self, drop_tol: float = 1e-4, fill_factor: float = 10.0):
        super().__init__()
        self.drop_tol = drop_tol
        self.fill_factor = fill_factor
        self._ilu = None

    def _setup_impl(self) -> None:
        self._ilu = spilu(self.matrix.tocsc(), drop_tol=self.drop_tol,
                          fill_factor=self.fill_factor,
                          permc_spec="NATURAL", diag_pivot_thresh=0.0)

    def apply(self, residual: np.ndarray) -> np.ndarray:
        return self._ilu.solve(residual)

    def work_nnz(self) -> int:
        return int(self.matrix.nnz)


class LocalSubsystemSolver:
    """Solver for the small SPD systems arising during reconstruction.

    Parameters
    ----------
    method:
        ``"direct"`` (sparse LU -- exact), ``"pcg_ilu"`` (inner PCG with an
        ILU(0)-block-Jacobi preconditioner, the paper's choice), or
        ``"pcg_jacobi"`` (inner PCG with point Jacobi).
    rtol:
        Relative residual reduction for the iterative methods.  The paper
        uses ``1e-14`` so that the reconstructed state is exact to near
        machine precision.
    max_iterations:
        Iteration cap for the inner PCG (default 200).  The reconstruction
        subsystems are small and well preconditioned, so they normally
        converge in a handful of iterations; if the cap is hit without
        reaching an acceptable residual the solver falls back to a direct
        factorisation rather than burning time on a stagnating iteration.
    block_partition:
        Optional partition of the subsystem unknowns used to build a block
        Jacobi/ILU preconditioner matching the replacement nodes' index sets
        (the paper preconditions the inner solve "with blocks matching the
        process' index set").
    """

    def __init__(self, method: str = "pcg_ilu", *, rtol: float = 1e-14,
                 max_iterations: Optional[int] = 200,
                 block_partition: Optional[BlockRowPartition] = None):
        if method not in LOCAL_SOLVER_METHODS:
            raise ValueError(
                f"method must be one of {LOCAL_SOLVER_METHODS}, got {method!r}"
            )
        self.method = method
        self.rtol = rtol
        self.max_iterations = max_iterations
        self.block_partition = block_partition
        self.last_stats: Optional[LocalSolveStats] = None
        #: Per-column statistics of the most recent :meth:`solve_block`.
        self.last_column_stats: list = []

    # -- shared-factorization core ------------------------------------------
    def _lu_of(self, a: sp.csr_matrix, shared: dict):
        """The (shared) sparse LU of *a*; ``True`` iff this call built it."""
        lu = shared.get("lu")
        if lu is not None:
            return lu, False
        lu = splu(a.tocsc())
        shared["lu"] = lu
        return lu, True

    def _solve_one(self, a: sp.csr_matrix, b: np.ndarray, shared: dict
                   ) -> tuple:
        """Solve ``a @ x = b``, reusing the factorizations cached in *shared*.

        *shared* carries the expensive, rhs-independent pieces (the sparse LU
        for ``"direct"`` and the direct fallback, the set-up ILU/Jacobi
        preconditioner for the inner-PCG methods) across the columns of a
        multi-RHS solve.  Factorizations of the same matrix are
        deterministic, so reusing them keeps every column bit-identical to a
        standalone :meth:`solve` of that column; only the factorization work
        is charged once instead of per column.
        """
        n = a.shape[0]
        if self.method == "direct":
            lu, factored = self._lu_of(a, shared)
            x = lu.solve(b)
            residual = float(np.linalg.norm(b - a @ x))
            # LU factorisation work estimate: ~ c * nnz(A) * average
            # bandwidth, charged once per factorization; each triangular
            # solve costs ~ 2 nnz.
            work = (10.0 * a.nnz if factored else 0.0) + 2.0 * a.nnz
            return x, LocalSolveStats(
                self.method, n, int(a.nnz), 1, residual, work
            )

        preconditioner = shared.get("preconditioner")
        if preconditioner is None:
            if self.method == "pcg_ilu":
                preconditioner = _IluPreconditioner()
            else:
                from ..precond.jacobi import JacobiPreconditioner

                preconditioner = JacobiPreconditioner()
            preconditioner.setup(a, self.block_partition)
            shared["preconditioner"] = preconditioner
        result: SolveResult = pcg(
            a, b, preconditioner=preconditioner, rtol=self.rtol,
            max_iterations=self.max_iterations,
        )
        work = 2.0 * a.nnz * max(result.iterations, 1) \
            + 2.0 * preconditioner.work_nnz() * max(result.iterations, 1)
        rhs_norm = float(np.linalg.norm(b))
        stagnated = rhs_norm > 0 and \
            result.final_residual_norm > max(1e-8 * rhs_norm, self.rtol * rhs_norm * 1e4)
        if stagnated:
            # The inexact preconditioner can (rarely) make the inner PCG
            # stagnate; the reconstruction must stay exact, so fall back to a
            # direct solve and account for both attempts.
            lu, factored = self._lu_of(a, shared)
            x = lu.solve(b)
            residual = float(np.linalg.norm(b - a @ x))
            work += (10.0 * a.nnz if factored else 0.0) + 2.0 * a.nnz
            return x, LocalSolveStats(
                f"{self.method}+direct_fallback", n, int(a.nnz),
                result.iterations, residual, work,
            )
        return result.x, LocalSolveStats(
            self.method, n, int(a.nnz), result.iterations,
            result.final_residual_norm, work,
        )

    # -- public entry points -------------------------------------------------
    def solve(self, matrix, rhs: np.ndarray) -> np.ndarray:
        """Solve ``matrix @ x = rhs`` and record statistics."""
        a = sp.csr_matrix(matrix).astype(np.float64)
        b = np.asarray(rhs, dtype=np.float64)
        if a.shape[0] == 0:
            self.last_stats = LocalSolveStats(self.method, 0, 0, 0, 0.0, 0.0)
            return np.zeros(0)
        x, self.last_stats = self._solve_one(a, b, {})
        return x

    def solve_block(self, matrix, rhs_block: np.ndarray) -> np.ndarray:
        """Solve ``matrix @ X = B`` for an ``(n, k)`` block of right-hand sides.

        The multi-RHS entry point of the block ESR reconstruction: the
        factorization (sparse LU for ``"direct"``/the direct fallback, the
        ILU/Jacobi setup for the inner-PCG methods) is computed **once** and
        amortized over all ``k`` column solves, while each column's solution
        stays bit-identical to a standalone :meth:`solve` call on that column
        (the factors of a fixed matrix are deterministic).  ``last_stats``
        aggregates the block -- total work, total inner iterations, worst
        residual -- and :attr:`last_column_stats` keeps the per-column
        records.
        """
        a = sp.csr_matrix(matrix).astype(np.float64)
        b = np.asarray(rhs_block, dtype=np.float64)
        if b.ndim != 2:
            raise ValueError(
                f"solve_block expects an (n, k) right-hand-side block, "
                f"got shape {b.shape}"
            )
        n, k = b.shape
        if n == 0 or k == 0:
            self.last_column_stats = [
                LocalSolveStats(self.method, 0, 0, 0, 0.0, 0.0)
                for _ in range(k)
            ]
            self.last_stats = LocalSolveStats(self.method, 0, 0, 0, 0.0, 0.0)
            return np.zeros((n, k))
        shared: dict = {}
        columns = []
        stats = []
        for j in range(k):
            x, column_stats = self._solve_one(a, b[:, j], shared)
            columns.append(x)
            stats.append(column_stats)
        self.last_column_stats = stats
        methods = {s.method for s in stats}
        self.last_stats = LocalSolveStats(
            method=stats[0].method if len(methods) == 1
            else "+".join(sorted(methods)),
            size=n,
            nnz=int(a.nnz),
            iterations=int(sum(s.iterations for s in stats)),
            residual_norm=float(max(s.residual_norm for s in stats)),
            work_flops=float(sum(s.work_flops for s in stats)),
        )
        return np.column_stack(columns)

    def work_flops(self) -> float:
        """Flops of the most recent solve (0 before any solve)."""
        return self.last_stats.work_flops if self.last_stats else 0.0
