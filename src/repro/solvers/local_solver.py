"""Local subsystem solver used by the ESR reconstruction.

Lines 6 and 8 of the reconstruction (Alg. 2) require solving linear systems
with the submatrices ``P_{I_f, I_f}`` and ``A_{I_f, I_f}``.  These systems are
small compared to the global problem (``|I_f| = psi * n / N``), SPD and full
rank, so the paper solves them either directly or with an inner PCG using an
ILU-preconditioned block Jacobi and a very tight tolerance (residual
reduction by 1e14) so that the reconstruction error stays negligible
(Sec. 6, "Avoiding loss of orthogonality").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu, spilu

from ..distributed.partition import BlockRowPartition
from ..precond.base import Preconditioner
from .cg import pcg
from .result import SolveResult

#: Supported methods for the reconstruction subsystems.
LOCAL_SOLVER_METHODS = ("direct", "pcg_ilu", "pcg_jacobi")


@dataclass
class LocalSolveStats:
    """Statistics of one local subsystem solve (for the cost model/reports)."""

    method: str
    size: int
    nnz: int
    iterations: int
    residual_norm: float
    #: Approximate flop count charged to the recovery-compute phase.
    work_flops: float


class _IluPreconditioner(Preconditioner):
    """Thin ILU wrapper so the inner PCG can use scipy's spilu.

    Natural ordering and no diagonal pivoting keep the factorisation close to
    symmetric (CG needs an SPD preconditioner); a small drop tolerance with a
    generous fill factor makes the factor accurate enough that the inner PCG
    reaches the 1e-14 reconstruction tolerance in a handful of iterations.
    """

    name = "ilu"

    def __init__(self, drop_tol: float = 1e-4, fill_factor: float = 10.0):
        super().__init__()
        self.drop_tol = drop_tol
        self.fill_factor = fill_factor
        self._ilu = None

    def _setup_impl(self) -> None:
        self._ilu = spilu(self.matrix.tocsc(), drop_tol=self.drop_tol,
                          fill_factor=self.fill_factor,
                          permc_spec="NATURAL", diag_pivot_thresh=0.0)

    def apply(self, residual: np.ndarray) -> np.ndarray:
        return self._ilu.solve(residual)

    def work_nnz(self) -> int:
        return int(self.matrix.nnz)


class LocalSubsystemSolver:
    """Solver for the small SPD systems arising during reconstruction.

    Parameters
    ----------
    method:
        ``"direct"`` (sparse LU -- exact), ``"pcg_ilu"`` (inner PCG with an
        ILU(0)-block-Jacobi preconditioner, the paper's choice), or
        ``"pcg_jacobi"`` (inner PCG with point Jacobi).
    rtol:
        Relative residual reduction for the iterative methods.  The paper
        uses ``1e-14`` so that the reconstructed state is exact to near
        machine precision.
    max_iterations:
        Iteration cap for the inner PCG (default 200).  The reconstruction
        subsystems are small and well preconditioned, so they normally
        converge in a handful of iterations; if the cap is hit without
        reaching an acceptable residual the solver falls back to a direct
        factorisation rather than burning time on a stagnating iteration.
    block_partition:
        Optional partition of the subsystem unknowns used to build a block
        Jacobi/ILU preconditioner matching the replacement nodes' index sets
        (the paper preconditions the inner solve "with blocks matching the
        process' index set").
    """

    def __init__(self, method: str = "pcg_ilu", *, rtol: float = 1e-14,
                 max_iterations: Optional[int] = 200,
                 block_partition: Optional[BlockRowPartition] = None):
        if method not in LOCAL_SOLVER_METHODS:
            raise ValueError(
                f"method must be one of {LOCAL_SOLVER_METHODS}, got {method!r}"
            )
        self.method = method
        self.rtol = rtol
        self.max_iterations = max_iterations
        self.block_partition = block_partition
        self.last_stats: Optional[LocalSolveStats] = None

    def solve(self, matrix, rhs: np.ndarray) -> np.ndarray:
        """Solve ``matrix @ x = rhs`` and record statistics."""
        a = sp.csr_matrix(matrix).astype(np.float64)
        b = np.asarray(rhs, dtype=np.float64)
        n = a.shape[0]
        if n == 0:
            self.last_stats = LocalSolveStats(self.method, 0, 0, 0, 0.0, 0.0)
            return np.zeros(0)

        if self.method == "direct":
            lu = splu(a.tocsc())
            x = lu.solve(b)
            residual = float(np.linalg.norm(b - a @ x))
            # LU factorisation work estimate: ~ c * nnz(A) * average bandwidth
            work = 10.0 * a.nnz + 2.0 * a.nnz
            self.last_stats = LocalSolveStats(
                self.method, n, int(a.nnz), 1, residual, work
            )
            return x

        if self.method == "pcg_ilu":
            preconditioner = _IluPreconditioner()
        else:
            from ..precond.jacobi import JacobiPreconditioner

            preconditioner = JacobiPreconditioner()
        preconditioner.setup(a, self.block_partition)
        result: SolveResult = pcg(
            a, b, preconditioner=preconditioner, rtol=self.rtol,
            max_iterations=self.max_iterations,
        )
        work = 2.0 * a.nnz * max(result.iterations, 1) \
            + 2.0 * preconditioner.work_nnz() * max(result.iterations, 1)
        rhs_norm = float(np.linalg.norm(b))
        stagnated = rhs_norm > 0 and \
            result.final_residual_norm > max(1e-8 * rhs_norm, self.rtol * rhs_norm * 1e4)
        if stagnated:
            # The inexact preconditioner can (rarely) make the inner PCG
            # stagnate; the reconstruction must stay exact, so fall back to a
            # direct solve and account for both attempts.
            lu = splu(a.tocsc())
            x = lu.solve(b)
            residual = float(np.linalg.norm(b - a @ x))
            work += 12.0 * a.nnz
            self.last_stats = LocalSolveStats(
                f"{self.method}+direct_fallback", n, int(a.nnz),
                result.iterations, residual, work,
            )
            return x
        self.last_stats = LocalSolveStats(
            self.method, n, int(a.nnz), result.iterations,
            result.final_residual_norm, work,
        )
        return result.x

    def work_flops(self) -> float:
        """Flops of the most recent solve (0 before any solve)."""
        return self.last_stats.work_flops if self.last_stats else 0.0
