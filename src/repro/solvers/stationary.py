"""Stationary iterative methods: Jacobi, Gauss-Seidel, SOR, SSOR.

Chen's original ESR paper covers these methods as well, and the paper under
reproduction notes that its multi-failure extension carries over to them
(Sec. 1).  They double as smoothers/inner solvers elsewhere in the library.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from .result import SolveResult


def _prepare(matrix, rhs):
    a = sp.csr_matrix(matrix).astype(np.float64)
    b = np.asarray(rhs, dtype=np.float64)
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got {a.shape}")
    if b.shape != (a.shape[0],):
        raise ValueError(f"rhs has shape {b.shape}, expected ({a.shape[0]},)")
    return a, b


def _finalize(a, b, x, history, converged, iterations) -> SolveResult:
    r = b - a @ x
    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        residual_norms=history,
        final_residual_norm=history[-1],
        true_residual_norm=float(np.linalg.norm(r)),
        solver_residual=r,
    )


def jacobi_method(matrix, rhs, *, rtol: float = 1e-8,
                  max_iterations: int = 10_000,
                  x0: Optional[np.ndarray] = None) -> SolveResult:
    """Weighted-free point Jacobi iteration ``x <- x + D^{-1} (b - A x)``."""
    a, b = _prepare(matrix, rhs)
    diag = a.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("Jacobi iteration requires a zero-free diagonal")
    inv_diag = 1.0 / diag
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - a @ x
    r0 = float(np.linalg.norm(r))
    threshold = rtol * r0
    history = [r0]
    converged = r0 <= threshold
    it = 0
    while not converged and it < max_iterations:
        x = x + inv_diag * r
        r = b - a @ x
        it += 1
        norm = float(np.linalg.norm(r))
        history.append(norm)
        converged = norm <= threshold
    return _finalize(a, b, x, history, converged, it)


def sor_method(matrix, rhs, *, omega: float = 1.0, rtol: float = 1e-8,
               max_iterations: int = 10_000,
               x0: Optional[np.ndarray] = None) -> SolveResult:
    """Successive over-relaxation; ``omega = 1`` gives Gauss-Seidel."""
    if not 0.0 < omega < 2.0:
        raise ValueError(f"omega must lie in (0, 2), got {omega}")
    a, b = _prepare(matrix, rhs)
    diag = a.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("SOR requires a zero-free diagonal")
    lower = sp.tril(a, k=-1).tocsr()
    upper = sp.triu(a, k=1).tocsr()
    d = sp.diags(diag)
    # (D/omega + L) x_new = b - (U + (1 - 1/omega) D) x_old
    lhs = (d / omega + lower).tocsr()
    rhs_op = (upper + (1.0 - 1.0 / omega) * d).tocsr()

    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - a @ x
    r0 = float(np.linalg.norm(r))
    threshold = rtol * r0
    history = [r0]
    converged = r0 <= threshold
    it = 0
    while not converged and it < max_iterations:
        x = spsolve_triangular(lhs, b - rhs_op @ x, lower=True)
        r = b - a @ x
        it += 1
        norm = float(np.linalg.norm(r))
        history.append(norm)
        converged = norm <= threshold
    return _finalize(a, b, x, history, converged, it)


def gauss_seidel_method(matrix, rhs, **kwargs) -> SolveResult:
    """Gauss-Seidel iteration (SOR with ``omega = 1``)."""
    kwargs.pop("omega", None)
    return sor_method(matrix, rhs, omega=1.0, **kwargs)


def ssor_method(matrix, rhs, *, omega: float = 1.0, rtol: float = 1e-8,
                max_iterations: int = 10_000,
                x0: Optional[np.ndarray] = None) -> SolveResult:
    """Symmetric SOR: a forward SOR sweep followed by a backward sweep."""
    if not 0.0 < omega < 2.0:
        raise ValueError(f"omega must lie in (0, 2), got {omega}")
    a, b = _prepare(matrix, rhs)
    diag = a.diagonal()
    if np.any(diag == 0.0):
        raise ValueError("SSOR requires a zero-free diagonal")
    lower = sp.tril(a, k=-1).tocsr()
    upper = sp.triu(a, k=1).tocsr()
    d = sp.diags(diag)
    forward_lhs = (d / omega + lower).tocsr()
    forward_rhs = (upper + (1.0 - 1.0 / omega) * d).tocsr()
    backward_lhs = (d / omega + upper).tocsr()
    backward_rhs = (lower + (1.0 - 1.0 / omega) * d).tocsr()

    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - a @ x
    r0 = float(np.linalg.norm(r))
    threshold = rtol * r0
    history = [r0]
    converged = r0 <= threshold
    it = 0
    while not converged and it < max_iterations:
        x = spsolve_triangular(forward_lhs, b - forward_rhs @ x, lower=True)
        x = spsolve_triangular(backward_lhs, b - backward_rhs @ x, lower=False)
        r = b - a @ x
        it += 1
        norm = float(np.linalg.norm(r))
        history.append(norm)
        converged = norm <= threshold
    return _finalize(a, b, x, history, converged, it)
