"""Sequential preconditioned BiCGSTAB.

The paper states (Sec. 1) that its multi-failure ESR extension also applies to
the preconditioned BiCGSTAB method.  This sequential implementation is the
numerical reference for the resilient distributed BiCGSTAB variant in
:mod:`repro.core.resilient_bicgstab`.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from .cg import _as_apply
from .result import SolveResult


def bicgstab(matrix, rhs: np.ndarray, *, preconditioner=None,
             rtol: float = 1e-8, atol: float = 0.0,
             max_iterations: Optional[int] = None,
             x0: Optional[np.ndarray] = None,
             callback: Optional[Callable[[int, np.ndarray, np.ndarray], None]] = None
             ) -> SolveResult:
    """Preconditioned bi-conjugate gradient stabilised method.

    Uses right preconditioning; works for general (non-symmetric) matrices
    but in this library it is mainly exercised on the SPD test problems.
    """
    a = matrix if not isinstance(matrix, np.ndarray) else sp.csr_matrix(matrix)
    b = np.asarray(rhs, dtype=np.float64)
    n = b.shape[0]
    apply_m = _as_apply(preconditioner)
    max_iterations = max_iterations if max_iterations is not None else 10 * n

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    r = b - a @ x
    r_hat = r.copy()
    rho_prev = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)

    r0_norm = float(np.linalg.norm(r))
    threshold = max(rtol * r0_norm, atol)
    history = [r0_norm]
    converged = r0_norm <= threshold
    iterations = 0
    breakdown = False

    while not converged and iterations < max_iterations and not breakdown:
        rho = float(r_hat @ r)
        if rho == 0.0:
            breakdown = True
            break
        if iterations == 0:
            p = r.copy()
        else:
            beta = (rho / rho_prev) * (alpha / omega)
            p = r + beta * (p - omega * v)
        p_hat = apply_m(p)
        v = a @ p_hat
        denom = float(r_hat @ v)
        if denom == 0.0:
            breakdown = True
            break
        alpha = rho / denom
        s = r - alpha * v
        s_norm = float(np.linalg.norm(s))
        if s_norm <= threshold:
            x = x + alpha * p_hat
            r = s
            iterations += 1
            history.append(s_norm)
            converged = True
            break
        s_hat = apply_m(s)
        t = a @ s_hat
        tt = float(t @ t)
        if tt == 0.0:
            breakdown = True
            break
        omega = float(t @ s) / tt
        x = x + alpha * p_hat + omega * s_hat
        r = s - omega * t
        rho_prev = rho
        iterations += 1
        r_norm = float(np.linalg.norm(r))
        history.append(r_norm)
        if callback is not None:
            callback(iterations, x, r)
        converged = r_norm <= threshold
        if omega == 0.0:
            breakdown = True

    true_residual = float(np.linalg.norm(b - a @ x))
    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        residual_norms=history,
        final_residual_norm=history[-1],
        true_residual_norm=true_residual,
        solver_residual=r,
        info={"breakdown": breakdown, "threshold": threshold},
    )
