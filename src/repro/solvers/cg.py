"""Sequential reference implementations of CG and PCG (Alg. 1 of the paper).

These run on a single process with plain NumPy/SciPy and serve three
purposes: (i) a ground truth the distributed solver is verified against
iterate-for-iterate, (ii) the reference ``Delta_PCG`` runs of Table 3, and
(iii) building blocks for the reconstruction subsystem solver and the
baselines.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from ..precond.base import Preconditioner
from ..precond.identity import IdentityPreconditioner
from .result import SolveResult

ApplyFn = Callable[[np.ndarray], np.ndarray]


def _as_apply(preconditioner) -> ApplyFn:
    """Normalise the preconditioner argument to a callable ``r -> z``."""
    if preconditioner is None:
        return lambda r: r.copy()
    if isinstance(preconditioner, Preconditioner):
        return preconditioner.apply
    if callable(preconditioner):
        return preconditioner
    raise TypeError(
        "preconditioner must be None, a Preconditioner or a callable, "
        f"got {type(preconditioner).__name__}"
    )


def pcg(matrix, rhs: np.ndarray, *, preconditioner=None,
        rtol: float = 1e-8, atol: float = 0.0, max_iterations: Optional[int] = None,
        x0: Optional[np.ndarray] = None,
        callback: Optional[Callable[[int, np.ndarray, np.ndarray], None]] = None
        ) -> SolveResult:
    """Preconditioned conjugate gradient method (Alg. 1).

    Parameters
    ----------
    matrix:
        SPD matrix (sparse or dense, anything supporting ``@``).
    rhs:
        Right-hand side ``b``.
    preconditioner:
        ``None``, a :class:`~repro.precond.base.Preconditioner`, or a callable
        applying ``M^{-1}``.
    rtol, atol:
        Stop when ``||r|| <= max(rtol * ||r0||, atol)`` -- the paper uses a
        relative reduction of ``1e-8``.
    max_iterations:
        Iteration cap; defaults to ``10 n``.
    x0:
        Initial guess (zero vector by default).
    callback:
        Called as ``callback(j, x, r)`` after each iteration.
    """
    a = sp.csr_matrix(matrix) if sp.issparse(matrix) or isinstance(
        matrix, np.ndarray) else matrix
    b = np.asarray(rhs, dtype=np.float64)
    n = b.shape[0]
    apply_m = _as_apply(preconditioner)
    max_iterations = max_iterations if max_iterations is not None else 10 * n

    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
    r = b - a @ x
    z = apply_m(r)
    p = z.copy()
    rz = float(r @ z)
    r0_norm = float(np.linalg.norm(r))
    threshold = max(rtol * r0_norm, atol)

    history = [r0_norm]
    converged = r0_norm <= threshold
    iterations = 0

    while not converged and iterations < max_iterations:
        ap = a @ p
        pap = float(p @ ap)
        if pap <= 0.0:
            # Loss of positive definiteness (numerically); stop defensively.
            break
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        z = apply_m(r)
        rz_next = float(r @ z)
        beta = rz_next / rz
        p = z + beta * p
        rz = rz_next
        iterations += 1
        r_norm = float(np.linalg.norm(r))
        history.append(r_norm)
        if callback is not None:
            callback(iterations, x, r)
        converged = r_norm <= threshold

    true_residual = float(np.linalg.norm(b - a @ x))
    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        residual_norms=history,
        final_residual_norm=history[-1],
        true_residual_norm=true_residual,
        solver_residual=r,
        info={"rtol": rtol, "atol": atol, "threshold": threshold},
    )


def cg(matrix, rhs: np.ndarray, **kwargs) -> SolveResult:
    """Unpreconditioned conjugate gradient (PCG with the identity)."""
    kwargs.pop("preconditioner", None)
    return pcg(matrix, rhs, preconditioner=IdentityPreconditioner(), **kwargs)


def pcg_iteration_count_estimate(condition_number: float,
                                 relative_tolerance: float) -> int:
    """Classical CG iteration bound ``~ 0.5 sqrt(kappa) ln(2/eps)``.

    Used only for sanity checks and documentation -- real iteration counts
    are measured.
    """
    if condition_number < 1.0 or relative_tolerance <= 0.0:
        raise ValueError("need kappa >= 1 and tolerance > 0")
    return int(np.ceil(
        0.5 * np.sqrt(condition_number) * np.log(2.0 / relative_tolerance)
    ))
