"""Sequential reference solvers and the reconstruction subsystem solver."""

from .bicgstab import bicgstab
from .cg import cg, pcg, pcg_iteration_count_estimate
from .local_solver import LOCAL_SOLVER_METHODS, LocalSolveStats, LocalSubsystemSolver
from .result import SolveResult
from .stationary import (
    gauss_seidel_method,
    jacobi_method,
    sor_method,
    ssor_method,
)

__all__ = [
    "SolveResult",
    "cg",
    "pcg",
    "pcg_iteration_count_estimate",
    "bicgstab",
    "jacobi_method",
    "gauss_seidel_method",
    "sor_method",
    "ssor_method",
    "LocalSubsystemSolver",
    "LocalSolveStats",
    "LOCAL_SOLVER_METHODS",
]
