"""Common result container for all solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class SolveResult:
    """Outcome of an iterative linear solve.

    Attributes
    ----------
    x:
        Final iterate.
    converged:
        True if the stopping criterion was met within the iteration budget.
    iterations:
        Number of iterations performed.
    residual_norms:
        History of (solver) residual norms, one entry per iteration starting
        with the initial residual.
    final_residual_norm:
        Solver residual norm at termination (``||r^(j)||_2``).
    true_residual_norm:
        Explicitly recomputed ``||b - A x||_2`` at termination -- in exact
        arithmetic equal to ``final_residual_norm``, in floating point
        slightly different (the basis of the paper's Eqn. (7) metric).
    solver_residual:
        The solver's internal residual vector ``r`` at termination (needed to
        evaluate Eqn. (7)); may be ``None`` for solvers that do not carry one.
    info:
        Free-form extra data (timings, recovery statistics, ...).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: List[float] = field(default_factory=list)
    final_residual_norm: float = np.nan
    true_residual_norm: float = np.nan
    solver_residual: Optional[np.ndarray] = None
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def relative_residual_deviation(self) -> float:
        """The paper's Eqn. (7): ``(||r|| - ||b - A x||) / ||b - A x||``.

        Requires both residual norms to be present; ``nan`` otherwise.
        """
        if not np.isfinite(self.final_residual_norm) or \
                not np.isfinite(self.true_residual_norm) or \
                self.true_residual_norm == 0.0:
            return float("nan")
        return (self.final_residual_norm - self.true_residual_norm) \
            / self.true_residual_norm

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "converged" if self.converged else "NOT converged"
        return (
            f"{status} in {self.iterations} iterations, "
            f"||r|| = {self.final_residual_norm:.3e}, "
            f"||b - Ax|| = {self.true_residual_norm:.3e}"
        )
