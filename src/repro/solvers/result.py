"""Common result container for all solvers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np


def jsonify(value: Any) -> Any:
    """Recursively convert a value into plain JSON-serializable types.

    numpy scalars become Python scalars, numpy arrays become (nested) lists,
    mappings and sequences are converted element-wise, and objects exposing
    their own ``to_dict`` delegate to it.  Anything already JSON-native
    (str/int/float/bool/None) passes through unchanged.
    """
    if value is None or isinstance(value, (str, bool, int, float)):
        return value
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, dict):
        return {str(k): jsonify(value[k]) for k in value}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return repr(value)


@dataclass
class SolveResult:
    """Outcome of an iterative linear solve.

    Attributes
    ----------
    x:
        Final iterate.
    converged:
        True if the stopping criterion was met within the iteration budget.
    iterations:
        Number of iterations performed.
    residual_norms:
        History of (solver) residual norms, one entry per iteration starting
        with the initial residual.
    final_residual_norm:
        Solver residual norm at termination (``||r^(j)||_2``).
    true_residual_norm:
        Explicitly recomputed ``||b - A x||_2`` at termination -- in exact
        arithmetic equal to ``final_residual_norm``, in floating point
        slightly different (the basis of the paper's Eqn. (7) metric).
    solver_residual:
        The solver's internal residual vector ``r`` at termination (needed to
        evaluate Eqn. (7)); may be ``None`` for solvers that do not carry one.
    info:
        Free-form extra data (timings, recovery statistics, ...).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: List[float] = field(default_factory=list)
    final_residual_norm: float = np.nan
    true_residual_norm: float = np.nan
    solver_residual: Optional[np.ndarray] = None
    info: Dict[str, object] = field(default_factory=dict)

    @property
    def relative_residual_deviation(self) -> float:
        """The paper's Eqn. (7): ``(||r|| - ||b - A x||) / ||b - A x||``.

        Requires both residual norms to be present; ``nan`` otherwise.
        """
        if not np.isfinite(self.final_residual_norm) or \
                not np.isfinite(self.true_residual_norm) or \
                self.true_residual_norm == 0.0:
            return float("nan")
        return (self.final_residual_norm - self.true_residual_norm) \
            / self.true_residual_norm

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "converged" if self.converged else "NOT converged"
        return (
            f"{status} in {self.iterations} iterations, "
            f"||r|| = {self.final_residual_norm:.3e}, "
            f"||b - Ax|| = {self.true_residual_norm:.3e}"
        )

    def to_dict(self, *, include_solution: bool = False,
                include_history: bool = True) -> Dict[str, Any]:
        """JSON-serializable dictionary of the result.

        The solution vector and the internal solver residual are large and
        excluded unless ``include_solution`` is set; the per-iteration
        residual history is included unless ``include_history`` is cleared.
        Subclasses extend the dictionary with their extra fields, so service
        responses and campaign outputs can serialize any result uniformly
        instead of hand-picking attributes.
        """
        data: Dict[str, Any] = {
            "converged": bool(self.converged),
            "iterations": int(self.iterations),
            "final_residual_norm": float(self.final_residual_norm),
            "true_residual_norm": float(self.true_residual_norm),
            "relative_residual_deviation": float(
                self.relative_residual_deviation),
            "info": jsonify(self.info),
        }
        if include_history:
            data["residual_norms"] = [float(v) for v in self.residual_norms]
        if include_solution:
            data["x"] = jsonify(self.x)
            if self.solver_residual is not None:
                data["solver_residual"] = jsonify(self.solver_residual)
        return data
