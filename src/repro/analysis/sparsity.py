"""Sparsity-pattern analysis relevant to the ESR overhead (Sec. 5).

Sec. 5 of the paper shows that the redundancy scheme is cheap exactly when
the matrix already forces each search-direction element to be communicated to
at least ``phi`` other nodes, and that no extra *latency* is incurred when
every submatrix ``A_{I_{d_ik}, I_i}`` has at least one non-zero (i.e. ``A`` is
"not too sparse within a bandwidth of ceil(phi*n/(2N)) around the diagonal").
These helpers evaluate both conditions for a concrete matrix and partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.redundancy import BackupPlacement, RedundancyScheme, backup_targets
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix


@dataclass
class SparsityReport:
    """Summary of how a matrix's pattern interacts with the ESR scheme."""

    phi: int
    n_nodes: int
    #: Histogram of the multiplicity m_i(s) over all elements (index = m).
    multiplicity_histogram: List[int]
    #: Fraction of elements with m_i(s) >= phi (no extra copies needed).
    natural_coverage: float
    #: Fraction of (owner, round) pairs whose extras can piggyback on SpMV.
    piggyback_fraction: float
    #: Whether the Sec. 5 band condition holds for every (i, k) pair.
    band_condition: bool
    #: Per-owner count of elements never sent anywhere (Chen's R^c_i sizes).
    unsent_per_owner: Dict[int, int]

    def as_dict(self) -> Dict[str, object]:
        return {
            "phi": self.phi,
            "n_nodes": self.n_nodes,
            "multiplicity_histogram": list(self.multiplicity_histogram),
            "natural_coverage": self.natural_coverage,
            "piggyback_fraction": self.piggyback_fraction,
            "band_condition": self.band_condition,
        }


def multiplicity_histogram(context: CommunicationContext,
                           max_bins: int = 32) -> List[int]:
    """Histogram of ``m_i(s)`` over all owners and elements."""
    counts = np.zeros(max_bins + 1, dtype=np.int64)
    for owner in range(context.partition.n_parts):
        m = context.multiplicity(owner)
        clipped = np.minimum(m, max_bins)
        counts += np.bincount(clipped, minlength=max_bins + 1)
    # Trim trailing zeros but keep at least the 0 bin.
    last = int(np.max(np.nonzero(counts)[0])) if counts.any() else 0
    return counts[:last + 1].tolist()


def natural_coverage_fraction(context: CommunicationContext, phi: int) -> float:
    """Fraction of all elements with at least *phi* natural copies."""
    n = context.partition.n
    if n == 0:
        return 1.0
    covered = sum(
        context.natural_copy_count(owner, phi)
        for owner in range(context.partition.n_parts)
    )
    return covered / n


def band_condition_holds(matrix: DistributedMatrix, phi: int, *,
                         placement: BackupPlacement = BackupPlacement.PAPER
                         ) -> bool:
    """Check the Sec. 5 no-extra-latency condition.

    For all owners ``i`` and rounds ``k``: the submatrix
    ``A_{I_{d_ik}, I_i}`` must contain at least one non-zero -- then the
    extras of round ``k`` always piggyback on an SpMV message and no extra
    latency is ever paid.
    """
    context = CommunicationContext.from_matrix(matrix)
    n_nodes = matrix.partition.n_parts
    for owner in range(n_nodes):
        targets = backup_targets(owner, phi, n_nodes, placement)
        for target in targets:
            # A_{I_target, I_owner} has a non-zero exactly when the SpMV sends
            # at least one element from owner to target.
            if context.send_count(owner, target) == 0:
                return False
    return True


def piggyback_fraction(scheme: RedundancyScheme) -> float:
    """Fraction of (owner, round) extra transfers that ride on SpMV messages."""
    total = 0
    piggybacked = 0
    for owner in range(scheme.partition.n_parts):
        info = scheme.owner(owner)
        for k0, target in enumerate(info.targets):
            if info.extra_counts[k0] == 0:
                continue
            total += 1
            if scheme.context.send_count(owner, target) > 0:
                piggybacked += 1
    return piggybacked / total if total else 1.0


def sparsity_report(matrix: DistributedMatrix, phi: int, *,
                    placement: BackupPlacement = BackupPlacement.PAPER,
                    context: Optional[CommunicationContext] = None
                    ) -> SparsityReport:
    """Produce a :class:`SparsityReport` for one matrix/partition/phi."""
    context = context if context is not None else \
        CommunicationContext.from_matrix(matrix)
    scheme = RedundancyScheme(context, phi, placement=placement)
    unsent = {
        owner: int(context.unsent_indices(owner).size)
        for owner in range(context.partition.n_parts)
    }
    return SparsityReport(
        phi=phi,
        n_nodes=context.partition.n_parts,
        multiplicity_histogram=multiplicity_histogram(context),
        natural_coverage=natural_coverage_fraction(context, phi),
        piggyback_fraction=piggyback_fraction(scheme),
        band_condition=band_condition_holds(matrix, phi, placement=placement),
        unsent_per_owner=unsent,
    )
