"""Communication-overhead analysis of the redundancy scheme (Sec. 4.2).

The paper bounds the per-iteration overhead ``O`` of distributing ``phi``
redundant copies of the search direction by

``0 <= max_i sum_k |R^c_ik| mu <= O <= phi * (lambda_max + ceil(n/N) * mu)``

where the lower end is reached when every extra element piggybacks on an SpMV
message and the upper end corresponds to completely unshared, full-block
messages in every round.  :func:`analyze_overhead` evaluates the exact
per-round quantities for a given matrix/partition/phi and checks where the
scheme lands inside those bounds; the ``A3`` benchmark uses it to validate
the cost model against the analytic expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster.cost_model import MachineModel
from ..cluster.network import Topology
from ..core.redundancy import BackupPlacement, RedundancyScheme
from ..distributed.comm_context import CommunicationContext
from ..distributed.dmatrix import DistributedMatrix


@dataclass
class OverheadAnalysis:
    """Result of :func:`analyze_overhead` for one (matrix, N, phi) setting."""

    phi: int
    n_nodes: int
    block_size_max: int
    #: ``max_i |R^c_ik|`` per round k.
    max_extras_per_round: List[int]
    #: Total extra elements shipped per iteration (all nodes, all rounds).
    total_extra_elements: int
    #: Number of extra messages per iteration that cannot piggyback on SpMV.
    extra_messages: int
    #: Simulated per-iteration redundancy time.
    per_iteration_time: float
    #: Sec. 4.2 lower bound on the per-iteration overhead.
    lower_bound: float
    #: Sec. 4.2 upper bound on the per-iteration overhead.
    upper_bound: float
    #: Fraction of elements that already have >= phi natural copies.
    natural_coverage: float
    #: Baseline per-iteration halo traffic (elements), for relative comparisons.
    halo_elements: int
    per_owner_extras: Dict[int, int] = field(default_factory=dict)

    @property
    def within_bounds(self) -> bool:
        """Whether the modelled overhead respects the analytic bounds."""
        eps = 1e-12
        return (self.lower_bound - eps) <= self.per_iteration_time \
            <= (self.upper_bound + eps)

    @property
    def relative_extra_traffic(self) -> float:
        """Extra redundancy elements relative to the natural halo traffic."""
        if self.halo_elements == 0:
            return float("inf") if self.total_extra_elements else 0.0
        return self.total_extra_elements / self.halo_elements

    def as_dict(self) -> Dict[str, object]:
        return {
            "phi": self.phi,
            "n_nodes": self.n_nodes,
            "max_extras_per_round": list(self.max_extras_per_round),
            "total_extra_elements": self.total_extra_elements,
            "extra_messages": self.extra_messages,
            "per_iteration_time": self.per_iteration_time,
            "lower_bound": self.lower_bound,
            "upper_bound": self.upper_bound,
            "within_bounds": self.within_bounds,
            "natural_coverage": self.natural_coverage,
            "halo_elements": self.halo_elements,
        }


def per_round_extras(scheme: RedundancyScheme) -> List[int]:
    """``max_i |R^c_ik|`` for each round ``k`` (Sec. 4.2)."""
    return scheme.max_extra_per_round()


def overhead_bounds(scheme: RedundancyScheme, topology: Topology,
                    model: MachineModel) -> Tuple[float, float]:
    """The Sec. 4.2 lower/upper bounds on the per-iteration overhead."""
    return scheme.overhead_bounds(topology, model)


def analyze_overhead(matrix: DistributedMatrix, phi: int, *,
                     placement: BackupPlacement = BackupPlacement.PAPER,
                     topology: Optional[Topology] = None,
                     model: Optional[MachineModel] = None,
                     context: Optional[CommunicationContext] = None,
                     scheme: Optional[RedundancyScheme] = None
                     ) -> OverheadAnalysis:
    """Full Sec. 4.2-style analysis for one distributed matrix and ``phi``."""
    context = context if context is not None else \
        CommunicationContext.from_matrix(matrix)
    scheme = scheme if scheme is not None else RedundancyScheme(
        context, phi, placement=placement
    )
    topology = topology if topology is not None else matrix.cluster.topology
    model = model if model is not None else matrix.cluster.machine

    n_nodes = matrix.partition.n_parts
    lower, upper = scheme.overhead_bounds(topology, model)
    messages, elements = scheme.extra_traffic_per_iteration()
    per_iteration_time = scheme.per_iteration_overhead_time(topology, model)

    total_elements = matrix.partition.n
    covered = sum(
        context.natural_copy_count(owner, phi) for owner in range(n_nodes)
    )
    per_owner = {
        owner: scheme.owner(owner).total_extra for owner in range(n_nodes)
    }
    return OverheadAnalysis(
        phi=phi,
        n_nodes=n_nodes,
        block_size_max=matrix.partition.max_block_size(),
        max_extras_per_round=per_round_extras(scheme),
        total_extra_elements=scheme.total_extra_elements(),
        extra_messages=messages,
        per_iteration_time=per_iteration_time,
        lower_bound=lower,
        upper_bound=upper,
        natural_coverage=covered / total_elements if total_elements else 1.0,
        halo_elements=context.total_exchanged_elements(),
        per_owner_extras=per_owner,
    )


def overhead_sweep(matrix: DistributedMatrix, phis,
                   placement: BackupPlacement = BackupPlacement.PAPER
                   ) -> List[OverheadAnalysis]:
    """Analyse several redundancy levels on the same matrix (Fig. 3 style)."""
    context = CommunicationContext.from_matrix(matrix)
    return [
        analyze_overhead(matrix, int(phi), placement=placement, context=context)
        for phi in phis
    ]
