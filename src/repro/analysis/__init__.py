"""Communication-overhead and sparsity-pattern analysis (Secs. 4.2 and 5).

Populated by :mod:`repro.analysis.overhead` and
:mod:`repro.analysis.sparsity`.
"""

from .overhead import (
    OverheadAnalysis,
    analyze_overhead,
    overhead_bounds,
    per_round_extras,
)
from .sparsity import (
    SparsityReport,
    band_condition_holds,
    multiplicity_histogram,
    natural_coverage_fraction,
    sparsity_report,
)

__all__ = [
    "OverheadAnalysis",
    "analyze_overhead",
    "overhead_bounds",
    "per_round_extras",
    "SparsityReport",
    "sparsity_report",
    "multiplicity_histogram",
    "natural_coverage_fraction",
    "band_condition_holds",
]
