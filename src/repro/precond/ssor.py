"""SSOR and split (incomplete Cholesky) preconditioners.

The paper notes (Sec. 1) that its algorithmic modifications also apply to the
Jacobi, Gauss-Seidel, SOR, SSOR and split-preconditioner CG variants of the
ESR approach.  These two classes provide the corresponding sequential
preconditioners:

* :class:`SSORPreconditioner` -- the symmetric successive over-relaxation
  operator ``M = (D/w + L) (w/(2-w)) D^{-1} (D/w + U)``.
* :class:`SplitCholeskyPreconditioner` -- ``M = L L^T`` with ``L`` from an
  incomplete Cholesky factorisation, the canonical split preconditioner of
  [23, Alg. 5].
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spsolve_triangular

from .base import Preconditioner, PreconditionerForm, as_indices
from .ichol import ic0, ic0_solve


class SSORPreconditioner(Preconditioner):
    """Symmetric successive over-relaxation preconditioner.

    Parameters
    ----------
    omega:
        Relaxation factor in ``(0, 2)``; ``omega = 1`` gives symmetric
        Gauss-Seidel.
    """

    name = "ssor"

    def __init__(self, omega: float = 1.0) -> None:
        super().__init__()
        if not 0.0 < omega < 2.0:
            raise ValueError(f"omega must lie in (0, 2), got {omega}")
        self.omega = omega
        self._lower: Optional[sp.csr_matrix] = None
        self._upper: Optional[sp.csr_matrix] = None
        self._diag: Optional[np.ndarray] = None

    def _setup_impl(self) -> None:
        a = self.matrix
        diag = a.diagonal().astype(np.float64)
        if np.any(diag == 0.0):
            raise ValueError("SSOR requires a zero-free diagonal")
        self._diag = diag
        w = self.omega
        d_over_w = sp.diags(diag / w)
        self._lower = (d_over_w + sp.tril(a, k=-1)).tocsr()
        self._upper = (d_over_w + sp.triu(a, k=1)).tocsr()

    def apply(self, residual: np.ndarray) -> np.ndarray:
        """``z = M^{-1} r`` via forward and backward triangular solves.

        ``M = (D/w + L) [(w/(2-w)) D^{-1}] (D/w + U)``, so the application
        factors into a forward solve, a diagonal scaling and a backward solve.
        """
        w = self.omega
        residual = np.asarray(residual, dtype=np.float64)
        y = spsolve_triangular(self._lower, residual, lower=True)
        t = ((2.0 - w) / w) * self._diag * y
        return spsolve_triangular(self._upper, t, lower=False)

    def work_nnz(self) -> int:
        return int(self._lower.nnz + self._upper.nnz)

    @property
    def form(self) -> PreconditionerForm:
        return PreconditionerForm.FORWARD

    def forward_matrix(self) -> sp.csr_matrix:
        """The explicit SSOR operator ``M`` (small problems / tests only)."""
        w = self.omega
        middle = sp.diags((w / (2.0 - w)) / self._diag)
        return sp.csr_matrix(self._lower @ middle @ self._upper)

    def forward_rows(self, indices: np.ndarray) -> sp.csr_matrix:
        idx = as_indices(indices)
        return self.forward_matrix()[idx, :]


class SplitCholeskyPreconditioner(Preconditioner):
    """Split preconditioner ``M = L L^T`` from incomplete Cholesky IC(0)."""

    name = "split_ic0"

    def __init__(self, *, shift: float = 0.0) -> None:
        super().__init__()
        self.shift = shift
        self._factor: Optional[sp.csr_matrix] = None

    def _setup_impl(self) -> None:
        self._factor = ic0(self.matrix, shift=self.shift)

    def apply(self, residual: np.ndarray) -> np.ndarray:
        return ic0_solve(self._factor, np.asarray(residual, dtype=np.float64))

    def work_nnz(self) -> int:
        return int(2 * self._factor.nnz)

    @property
    def form(self) -> PreconditionerForm:
        return PreconditionerForm.SPLIT

    def split_factor(self) -> sp.csr_matrix:
        if self._factor is None:
            raise RuntimeError("setup() has not been called")
        return self._factor

    def forward_rows(self, indices: np.ndarray) -> sp.csr_matrix:
        idx = as_indices(indices)
        m = sp.csr_matrix(self._factor @ self._factor.T)
        return m[idx, :]
