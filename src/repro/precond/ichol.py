"""Incomplete Cholesky factorisation IC(0).

``ic0`` computes a lower-triangular factor ``L`` with the sparsity pattern of
the lower triangle of ``A`` such that ``L L^T ~= A``.  It backs the split
preconditioner (``M = L L^T``) and can serve as the inner solver of the block
Jacobi preconditioner, mirroring the ILU-based local solves the paper uses
for the reconstruction subsystem (Sec. 6).
"""

from __future__ import annotations


import numpy as np
import scipy.sparse as sp


class FactorizationError(RuntimeError):
    """Raised when an incomplete factorisation breaks down."""


def ic0(matrix, *, shift: float = 0.0, max_shift_attempts: int = 8
        ) -> sp.csr_matrix:
    """Incomplete Cholesky factorisation with zero fill-in.

    Parameters
    ----------
    matrix:
        SPD sparse matrix.
    shift:
        Initial diagonal shift ``alpha`` applied as ``A + alpha*diag(A)``.
        If a pivot breaks down, the shift is increased geometrically up to
        ``max_shift_attempts`` times (the standard "shifted IC" remedy).

    Returns
    -------
    scipy.sparse.csr_matrix
        Lower-triangular factor ``L`` with ``L L^T ~= A``.
    """
    a = sp.csr_matrix(matrix).astype(np.float64)
    if a.shape[0] != a.shape[1]:
        raise ValueError(f"matrix must be square, got {a.shape}")
    base_diag = a.diagonal()
    # Shift relative to the typical diagonal magnitude so rows with a
    # (near-)zero diagonal entry still get a meaningful boost.
    scale = np.maximum(np.abs(base_diag), float(np.mean(np.abs(base_diag))) or 1.0)
    attempt_shift = shift
    for _attempt in range(max_shift_attempts + 1):
        try:
            return _ic0_once(a, attempt_shift * scale)
        except FactorizationError:
            attempt_shift = max(attempt_shift * 4.0, 1e-3)
    raise FactorizationError(
        f"IC(0) broke down even with diagonal shift {attempt_shift:g}"
    )


def _ic0_once(a: sp.csr_matrix, diag_shift: np.ndarray) -> sp.csr_matrix:
    """One IC(0) attempt with a fixed diagonal shift (may raise)."""
    n = a.shape[0]
    lower = sp.tril(a, k=0).tocsr()
    if diag_shift is not None and np.any(diag_shift != 0.0):
        lower = (lower + sp.diags(diag_shift)).tocsr()
    lower.sort_indices()
    indptr, indices, data = lower.indptr, lower.indices, lower.data.copy()

    # Row-based up-looking IC(0): for each row i, update entries (i, j<=i)
    # using previously computed rows, keeping only existing non-zeros.
    # Dense work row keeps the implementation simple and O(nnz * row_nnz).
    row_values = {}
    for i in range(n):
        start, stop = indptr[i], indptr[i + 1]
        cols = indices[start:stop]
        vals = data[start:stop].copy()
        if cols.size == 0 or cols[-1] != i:
            raise FactorizationError(f"row {i} has no diagonal entry")
        entries = dict(zip(cols.tolist(), vals.tolist()))
        for pos, j in enumerate(cols[:-1]):
            # L[i, j] = (A[i, j] - sum_k L[i, k] L[j, k]) / L[j, j]
            lj = row_values[j]
            s = entries[j]
            for k, lik in list(entries.items()):
                if k >= j:
                    continue
                ljk = lj.get(k)
                if ljk is not None:
                    s -= lik * ljk
            ljj = lj[j]
            entries[j] = s / ljj
        # Diagonal entry.
        s = entries[i]
        for k, lik in entries.items():
            if k < i:
                s -= lik * lik
        if s <= 0.0:
            raise FactorizationError(f"non-positive pivot at row {i}: {s:g}")
        entries[i] = np.sqrt(s)
        row_values[i] = entries
        data[start:stop] = [entries[int(c)] for c in cols]

    return sp.csr_matrix((data, indices, indptr), shape=(n, n))


def ic0_solve(factor: sp.csr_matrix, rhs: np.ndarray) -> np.ndarray:
    """Solve ``L L^T x = rhs`` for a lower-triangular IC(0) factor."""
    from scipy.sparse.linalg import spsolve_triangular

    y = spsolve_triangular(factor, rhs, lower=True)
    return spsolve_triangular(factor.T.tocsr(), y, lower=False)


def factorization_residual(matrix, factor: sp.csr_matrix) -> float:
    """Relative Frobenius residual ``||A - L L^T||_F / ||A||_F`` (diagnostic)."""
    a = sp.csr_matrix(matrix)
    approx = factor @ factor.T
    num = sp.linalg.norm(a - approx)
    den = sp.linalg.norm(a)
    return float(num / den) if den > 0 else float(num)
