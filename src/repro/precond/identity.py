"""Identity (no-op) preconditioner: plain CG."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .base import Preconditioner, PreconditionerForm, as_indices


class IdentityPreconditioner(Preconditioner):
    """``M = I``: turns PCG into unpreconditioned CG.

    Useful as a baseline and in tests; the ESR reconstruction simplifies
    because ``z = r`` (no local solve is needed to recover the residual).
    """

    name = "identity"

    def apply(self, residual: np.ndarray) -> np.ndarray:
        return np.array(residual, dtype=np.float64, copy=True)

    def apply_block(self, rank: int, residual_block: np.ndarray) -> np.ndarray:
        # Shape-agnostic copy: works for (n_i,) blocks and (n_i, k)
        # multi-RHS blocks alike.
        return np.array(residual_block, dtype=np.float64, copy=True)

    @property
    def is_block_diagonal(self) -> bool:
        return True

    @property
    def form(self) -> PreconditionerForm:
        return PreconditionerForm.IDENTITY

    def work_nnz(self) -> int:
        return int(self.matrix.shape[0]) if self.is_set_up else 0

    def forward_rows(self, indices: np.ndarray) -> sp.csr_matrix:
        idx = as_indices(indices)
        n = self.matrix.shape[0]
        return sp.csr_matrix(
            (np.ones(idx.size), (np.arange(idx.size), idx)), shape=(idx.size, n)
        )

    def inverse_rows(self, indices: np.ndarray) -> sp.csr_matrix:
        return self.forward_rows(indices)

    def split_factor(self) -> sp.csr_matrix:
        return sp.identity(self.matrix.shape[0], format="csr")
