"""Preconditioners for the (resilient) PCG solver."""

from .base import Preconditioner, PreconditionerForm
from .block_jacobi import BlockJacobiPreconditioner
from .factory import (
    describe_all,
    make_preconditioner,
    register_preconditioner,
    registered_preconditioners,
)
from .ichol import FactorizationError, factorization_residual, ic0, ic0_solve
from .identity import IdentityPreconditioner
from .jacobi import JacobiPreconditioner
from .ssor import SplitCholeskyPreconditioner, SSORPreconditioner

__all__ = [
    "Preconditioner",
    "PreconditionerForm",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "SSORPreconditioner",
    "SplitCholeskyPreconditioner",
    "make_preconditioner",
    "register_preconditioner",
    "registered_preconditioners",
    "describe_all",
    "PRECONDITIONERS",
    "ic0",
    "ic0_solve",
    "factorization_residual",
    "FactorizationError",
]


def __getattr__(name: str):
    # ``PRECONDITIONERS`` is a live view of the factory registry (so names
    # added via ``register_preconditioner`` after import show up); delegate
    # instead of snapshotting at package import.
    if name == "PRECONDITIONERS":
        from . import factory
        return factory.PRECONDITIONERS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
