"""Preconditioners for the (resilient) PCG solver."""

from .base import Preconditioner, PreconditionerForm
from .block_jacobi import BlockJacobiPreconditioner
from .factory import PRECONDITIONERS, describe_all, make_preconditioner
from .ichol import FactorizationError, factorization_residual, ic0, ic0_solve
from .identity import IdentityPreconditioner
from .jacobi import JacobiPreconditioner
from .ssor import SplitCholeskyPreconditioner, SSORPreconditioner

__all__ = [
    "Preconditioner",
    "PreconditionerForm",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "SSORPreconditioner",
    "SplitCholeskyPreconditioner",
    "make_preconditioner",
    "describe_all",
    "PRECONDITIONERS",
    "ic0",
    "ic0_solve",
    "factorization_residual",
    "FactorizationError",
]
