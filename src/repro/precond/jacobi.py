"""Point Jacobi (diagonal) preconditioner."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .base import Preconditioner, PreconditionerForm, as_indices


class JacobiPreconditioner(Preconditioner):
    """``M = diag(A)``: the simplest preconditioner.

    It is block-diagonal for every partition (each element only needs its own
    diagonal entry), so its application is embarrassingly parallel; both ``M``
    and ``P = M^{-1}`` rows are trivially available for the reconstruction.
    """

    name = "jacobi"

    def __init__(self) -> None:
        super().__init__()
        self._diag: np.ndarray | None = None
        self._inv_diag: np.ndarray | None = None

    def _setup_impl(self) -> None:
        diag = self.matrix.diagonal().astype(np.float64)
        if np.any(diag == 0.0):
            raise ValueError(
                "Jacobi preconditioner requires a zero-free diagonal"
            )
        self._diag = diag
        self._inv_diag = 1.0 / diag

    # -- action -----------------------------------------------------------
    def apply(self, residual: np.ndarray) -> np.ndarray:
        return residual * self._inv_diag

    def apply_block(self, rank: int, residual_block: np.ndarray) -> np.ndarray:
        if self.partition is None:
            raise RuntimeError("apply_block requires a partition at setup()")
        start, stop = self.partition.range_of(rank)
        inv = self._inv_diag[start:stop]
        residual_block = np.asarray(residual_block, dtype=np.float64)
        if residual_block.ndim == 2:
            # Multi-RHS block: scale every column elementwise (bit-identical
            # per column to the 1-D path).
            return residual_block * inv[:, None]
        return residual_block * inv

    @property
    def is_block_diagonal(self) -> bool:
        return True

    def work_nnz(self) -> int:
        return int(self.matrix.shape[0])

    # -- ESR structural access ------------------------------------------------
    @property
    def form(self) -> PreconditionerForm:
        return PreconditionerForm.INVERSE

    @property
    def diagonal(self) -> np.ndarray:
        if self._diag is None:
            raise RuntimeError("setup() has not been called")
        return self._diag

    def forward_rows(self, indices: np.ndarray) -> sp.csr_matrix:
        idx = as_indices(indices)
        n = self.matrix.shape[0]
        return sp.csr_matrix(
            (self._diag[idx], (np.arange(idx.size), idx)), shape=(idx.size, n)
        )

    def inverse_rows(self, indices: np.ndarray) -> sp.csr_matrix:
        idx = as_indices(indices)
        n = self.matrix.shape[0]
        return sp.csr_matrix(
            (self._inv_diag[idx], (np.arange(idx.size), idx)), shape=(idx.size, n)
        )

    def split_factor(self) -> sp.csr_matrix:
        return sp.diags(np.sqrt(self.diagonal), format="csr")
