"""Construction helpers for preconditioners by name.

The experiment harness and the examples refer to preconditioners by short
string identifiers (``"block_jacobi"``, ``"jacobi"``, ...); this module maps
those names to configured instances.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .base import Preconditioner
from .block_jacobi import BlockJacobiPreconditioner
from .identity import IdentityPreconditioner
from .jacobi import JacobiPreconditioner
from .ssor import SplitCholeskyPreconditioner, SSORPreconditioner

#: Registered preconditioner names.
PRECONDITIONERS = (
    "identity",
    "none",
    "jacobi",
    "block_jacobi",
    "block_jacobi_ilu",
    "block_jacobi_ic",
    "ssor",
    "split_ic0",
)


def make_preconditioner(name: str, **kwargs: Any) -> Preconditioner:
    """Build a preconditioner instance from its registered *name*.

    Keyword arguments are forwarded to the underlying constructor (e.g.
    ``omega`` for SSOR, ``n_blocks`` for block Jacobi).
    """
    key = name.lower()
    if key in ("identity", "none"):
        return IdentityPreconditioner()
    if key == "jacobi":
        return JacobiPreconditioner()
    if key == "block_jacobi":
        return BlockJacobiPreconditioner(block_solver="direct", **kwargs)
    if key == "block_jacobi_ilu":
        return BlockJacobiPreconditioner(block_solver="ilu", **kwargs)
    if key == "block_jacobi_ic":
        return BlockJacobiPreconditioner(block_solver="ic", **kwargs)
    if key == "ssor":
        return SSORPreconditioner(**kwargs)
    if key == "split_ic0":
        return SplitCholeskyPreconditioner(**kwargs)
    raise ValueError(
        f"unknown preconditioner {name!r}; available: {PRECONDITIONERS}"
    )


def describe_all() -> Dict[str, str]:
    """Short description of every registered preconditioner (for --help text)."""
    return {
        "identity": "No preconditioning (plain CG).",
        "jacobi": "Point Jacobi: M = diag(A).",
        "block_jacobi": "Block Jacobi over the node partition, exact block solves "
                        "(the paper's setting).",
        "block_jacobi_ilu": "Block Jacobi with ILU(0) block solves.",
        "block_jacobi_ic": "Block Jacobi with IC(0) block solves.",
        "ssor": "Symmetric successive over-relaxation (sequential).",
        "split_ic0": "Split preconditioner M = L L^T from incomplete Cholesky.",
    }
