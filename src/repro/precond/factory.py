"""Construction helpers for preconditioners by name.

The experiment harness, the :class:`~repro.core.spec.SolveSpec` configuration
layer and the examples refer to preconditioners by short string identifiers
(``"block_jacobi"``, ``"jacobi"``, ...); this module maps those names to
configured instances through a small name registry -- the same pattern
:class:`~repro.core.registry.SolverRegistry` uses for solvers.  New
preconditioners plug in with :func:`register_preconditioner`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from .base import Preconditioner
from .block_jacobi import BlockJacobiPreconditioner
from .identity import IdentityPreconditioner
from .jacobi import JacobiPreconditioner
from .ssor import SplitCholeskyPreconditioner, SSORPreconditioner

#: ``name -> (builder, description)``; populated via ``register_preconditioner``.
_REGISTRY: Dict[str, Tuple[Callable[..., Preconditioner], str]] = {}


def register_preconditioner(name: str, description: str = ""
                            ) -> Callable[[Callable[..., Preconditioner]],
                                          Callable[..., Preconditioner]]:
    """Decorator registering a preconditioner builder under *name*."""
    key = str(name).lower()

    def decorator(builder: Callable[..., Preconditioner]
                  ) -> Callable[..., Preconditioner]:
        _REGISTRY[key] = (builder, description)
        return builder

    return decorator


def registered_preconditioners() -> Tuple[str, ...]:
    """The registered preconditioner names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_preconditioner(name: str, **kwargs: Any) -> Preconditioner:
    """Build a preconditioner instance from its registered *name*.

    Keyword arguments are forwarded to the underlying constructor (e.g.
    ``omega`` for SSOR, ``n_blocks`` for block Jacobi).  An unknown name
    raises ``ValueError`` listing every registered name.
    """
    if not isinstance(name, str):
        # ``str(None) == 'None'`` would silently hit the registered "none"
        # alias and run unpreconditioned; demand an explicit string.
        raise TypeError(
            f"preconditioner name must be a string, got {name!r}")
    key = name.lower()
    try:
        builder, _ = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown preconditioner {name!r}; available: "
            f"{registered_preconditioners()}"
        ) from None
    return builder(**kwargs)


def describe_all() -> Dict[str, str]:
    """Short description of every registered preconditioner (for --help text)."""
    return {name: description for name, (_, description)
            in sorted(_REGISTRY.items())}


@register_preconditioner("identity", "No preconditioning (plain CG).")
def _build_identity(**kwargs: Any) -> Preconditioner:
    return IdentityPreconditioner(**kwargs)


@register_preconditioner("none", "No preconditioning (alias of 'identity').")
def _build_none(**kwargs: Any) -> Preconditioner:
    return IdentityPreconditioner(**kwargs)


@register_preconditioner("jacobi", "Point Jacobi: M = diag(A).")
def _build_jacobi(**kwargs: Any) -> Preconditioner:
    return JacobiPreconditioner(**kwargs)


@register_preconditioner(
    "block_jacobi",
    "Block Jacobi over the node partition, exact block solves "
    "(the paper's setting).")
def _build_block_jacobi(**kwargs: Any) -> Preconditioner:
    return BlockJacobiPreconditioner(block_solver="direct", **kwargs)


@register_preconditioner("block_jacobi_ilu",
                         "Block Jacobi with ILU(0) block solves.")
def _build_block_jacobi_ilu(**kwargs: Any) -> Preconditioner:
    return BlockJacobiPreconditioner(block_solver="ilu", **kwargs)


@register_preconditioner("block_jacobi_ic",
                         "Block Jacobi with IC(0) block solves.")
def _build_block_jacobi_ic(**kwargs: Any) -> Preconditioner:
    return BlockJacobiPreconditioner(block_solver="ic", **kwargs)


@register_preconditioner("ssor",
                         "Symmetric successive over-relaxation (sequential).")
def _build_ssor(**kwargs: Any) -> Preconditioner:
    return SSORPreconditioner(**kwargs)


@register_preconditioner(
    "split_ic0",
    "Split preconditioner M = L L^T from incomplete Cholesky.")
def _build_split_ic0(**kwargs: Any) -> Preconditioner:
    return SplitCholeskyPreconditioner(**kwargs)


def __getattr__(name: str) -> Tuple[str, ...]:
    # Live view of the registered names (kept for back-compat; prefer
    # ``registered_preconditioners()``).  Computed on access so names added
    # through ``register_preconditioner`` after import are included.
    if name == "PRECONDITIONERS":
        return registered_preconditioners()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
