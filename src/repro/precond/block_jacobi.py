"""Block Jacobi preconditioner.

This is the preconditioner used in the paper's experiments (Sec. 6): the
preconditioner matrix is the block-diagonal part of ``A`` defined by the node
partition, ``M = blkdiag(A_{I_1,I_1}, ..., A_{I_N,I_N})``, and each block is
solved either exactly (sparse LU, the paper's choice during regular solver
operation) or approximately via ILU(0)/IC(0) (the paper's choice for the
reconstruction subsystem).

Being block-diagonal with respect to the partition, applying it requires no
communication, and its rows ``M_{I_f, I}`` vanish outside the failed blocks --
which is what makes the ESR reconstruction of the residual cheap.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import spilu, splu

from ..distributed.partition import BlockRowPartition
from .base import Preconditioner, PreconditionerForm, as_indices
from .ichol import ic0, ic0_solve

#: Supported inner solvers for the diagonal blocks.
BLOCK_SOLVERS = ("direct", "ilu", "ic")


class BlockJacobiPreconditioner(Preconditioner):
    """Block Jacobi preconditioner over a block-row partition.

    Parameters
    ----------
    n_blocks:
        Number of diagonal blocks.  If a partition is supplied at
        :meth:`setup`, that partition's block count takes precedence (the
        blocks then coincide with the node subdomains, as in the paper).
    block_solver:
        ``"direct"`` (sparse LU, exact solves), ``"ilu"`` (ILU(0) via
        :func:`scipy.sparse.linalg.spilu` with zero fill), or ``"ic"``
        (incomplete Cholesky IC(0)).
    drop_tol:
        Drop tolerance forwarded to ILU (ignored otherwise).
    """

    name = "block_jacobi"

    def __init__(self, n_blocks: Optional[int] = None, *,
                 block_solver: str = "direct", drop_tol: float = 1e-4,
                 fill_factor: float = 10.0) -> None:
        super().__init__()
        if block_solver not in BLOCK_SOLVERS:
            raise ValueError(
                f"block_solver must be one of {BLOCK_SOLVERS}, got {block_solver!r}"
            )
        self.requested_blocks = n_blocks
        self.block_solver = block_solver
        self.drop_tol = drop_tol
        self.fill_factor = fill_factor
        self._blocks: Dict[int, sp.csr_matrix] = {}
        self._solvers: Dict[int, Callable[[np.ndarray], np.ndarray]] = {}
        self._block_partition: Optional[BlockRowPartition] = None

    # -- setup ----------------------------------------------------------------
    def _setup_impl(self) -> None:
        n = self.matrix.shape[0]
        if self.partition is not None:
            block_partition = self.partition
        else:
            n_blocks = self.requested_blocks or max(1, min(16, n // 64))
            block_partition = BlockRowPartition(n, n_blocks)
        self._block_partition = block_partition
        self._blocks.clear()
        self._solvers.clear()
        for rank in range(block_partition.n_parts):
            start, stop = block_partition.range_of(rank)
            block = self.matrix[start:stop, start:stop].tocsc()
            self._blocks[rank] = block.tocsr()
            self._solvers[rank] = self._make_solver(block)

    def _make_solver(self, block: sp.csc_matrix
                     ) -> Callable[[np.ndarray], np.ndarray]:
        if self.block_solver == "direct":
            lu = splu(block)
            return lu.solve
        if self.block_solver == "ilu":
            ilu = spilu(block, drop_tol=self.drop_tol,
                        fill_factor=self.fill_factor,
                        permc_spec="NATURAL", diag_pivot_thresh=0.0)
            return ilu.solve
        factor = ic0(block)
        return lambda rhs: ic0_solve(factor, rhs)

    @property
    def block_partition(self) -> BlockRowPartition:
        if self._block_partition is None:
            raise RuntimeError("setup() has not been called")
        return self._block_partition

    def diagonal_block(self, rank: int) -> sp.csr_matrix:
        """The block ``A_{I_i, I_i}`` this preconditioner uses for *rank*."""
        return self._blocks[rank]

    # -- action -------------------------------------------------------------------
    def apply(self, residual: np.ndarray) -> np.ndarray:
        out = np.empty_like(residual, dtype=np.float64)
        for rank in range(self.block_partition.n_parts):
            start, stop = self.block_partition.range_of(rank)
            out[start:stop] = self._solvers[rank](residual[start:stop])
        return out

    def apply_block(self, rank: int, residual_block: np.ndarray) -> np.ndarray:
        expected = self.block_partition.size_of(rank)
        residual_block = np.asarray(residual_block, dtype=np.float64)
        if residual_block.ndim == 2:
            # Multi-RHS block: one inner solve per column through the
            # generic column path (bit-identical per column to the 1-D
            # path; a multi-RHS sparse-LU solve could round differently).
            if residual_block.shape[0] != expected:
                raise ValueError(
                    f"block for rank {rank} must have {expected} rows, "
                    f"got {residual_block.shape}"
                )
            return self._apply_block_columns(rank, residual_block)
        if residual_block.shape != (expected,):
            raise ValueError(
                f"block for rank {rank} must have shape ({expected},), "
                f"got {residual_block.shape}"
            )
        return self._solvers[rank](residual_block)

    @property
    def is_block_diagonal(self) -> bool:
        return True

    # -- cost accounting -------------------------------------------------------------
    def work_nnz(self) -> int:
        return int(sum(block.nnz for block in self._blocks.values()))

    def block_work_nnz(self, rank: int) -> int:
        return int(self._blocks[rank].nnz)

    # -- ESR structural access -----------------------------------------------------------
    @property
    def form(self) -> PreconditionerForm:
        return PreconditionerForm.FORWARD

    def forward_rows(self, indices: np.ndarray) -> sp.csr_matrix:
        """Rows of ``M = blkdiag(A_{I_i,I_i})`` at the given global indices.

        With inexact inner solves (ILU/IC) the operator actually applied is
        only an approximation of this ``M``; the reconstruction is then
        approximate as well, consistent with the finite-precision discussion
        in Sec. 6 of the paper.
        """
        idx = as_indices(indices)
        n = self.matrix.shape[0]
        rows = []
        for gi in idx:
            rank = self.block_partition.owner_of_scalar(int(gi))
            start, stop = self.block_partition.range_of(rank)
            local_row = self._blocks[rank][int(gi) - start, :]
            padded = sp.csr_matrix(
                (local_row.data, local_row.indices + start,
                 np.array([0, local_row.nnz])),
                shape=(1, n),
            )
            rows.append(padded)
        if not rows:
            return sp.csr_matrix((0, n))
        return sp.vstack(rows, format="csr")

    def inverse_rows(self, indices: np.ndarray) -> sp.csr_matrix:
        """Rows of ``P = M^{-1}`` (computed per block by solving unit systems).

        Only practical for moderate block sizes; the resilient solver prefers
        the FORWARD form, this method mainly supports testing the INVERSE
        reconstruction path (Alg. 2 verbatim).
        """
        idx = as_indices(indices)
        n = self.matrix.shape[0]
        rows = []
        by_rank: Dict[int, List[int]] = {}
        for gi in idx:
            rank = self.block_partition.owner_of_scalar(int(gi))
            by_rank.setdefault(rank, []).append(int(gi))
        row_map: Dict[int, sp.csr_matrix] = {}
        for rank, global_rows in by_rank.items():
            start, stop = self.block_partition.range_of(rank)
            block = self._blocks[rank].toarray()
            inv = np.linalg.inv(block)
            for gi in global_rows:
                data = inv[gi - start, :]
                padded = sp.csr_matrix(
                    (data, (np.zeros(data.size, dtype=int),
                            np.arange(start, stop))),
                    shape=(1, n),
                )
                row_map[gi] = padded
        rows = [row_map[int(gi)] for gi in idx]
        if not rows:
            return sp.csr_matrix((0, n))
        return sp.vstack(rows, format="csr")
