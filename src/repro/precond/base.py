"""Preconditioner interface.

The PCG method (Alg. 1) only ever needs the *action* ``z = M^{-1} r`` of the
preconditioner.  The ESR reconstruction, however, needs structural access as
well (Alg. 2 and its variants in [23]): depending on whether ``P = M^{-1}``,
``M`` itself, or a split factor ``L`` with ``M = L L^T`` is explicitly
available, a different reconstruction formula applies.  The interface below
therefore exposes

* ``apply`` / ``apply_block`` -- the action, globally or per partition block
  (block-diagonal preconditioners such as (block) Jacobi apply locally with no
  communication, which is why the paper uses them);
* ``forward_rows`` / ``inverse_rows`` -- rows of ``M`` or of ``P = M^{-1}``
  restricted to a set of global indices, used by the reconstruction;
* ``work_nnz`` -- an operation count for the cost model.
"""

from __future__ import annotations

import abc
import enum
from typing import Iterable, Optional

import numpy as np
import scipy.sparse as sp

from ..distributed.partition import BlockRowPartition


class PreconditionerForm(enum.Enum):
    """Which representation of the preconditioner is explicitly available."""

    #: No preconditioning (M = I); reconstruction needs no solve for ``r``.
    IDENTITY = "identity"
    #: ``P = M^{-1}`` is available row-wise (Alg. 2 of the paper).
    INVERSE = "inverse"
    #: ``M`` is available row-wise ([23, Alg. 3]).
    FORWARD = "forward"
    #: A split factor ``L`` with ``M = L L^T`` is available ([23, Alg. 5]).
    SPLIT = "split"


class Preconditioner(abc.ABC):
    """Abstract base class of all preconditioners."""

    #: Short identifier used in reports.
    name: str = "preconditioner"

    def __init__(self) -> None:
        self._matrix: Optional[sp.csr_matrix] = None
        self._partition: Optional[BlockRowPartition] = None
        self._max_block_work_nnz: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------
    def setup(self, matrix, partition: Optional[BlockRowPartition] = None) -> None:
        """Prepare the preconditioner for *matrix* (factorisations etc.)."""
        self._matrix = sp.csr_matrix(matrix)
        self._partition = partition
        self._max_block_work_nnz = None
        self._setup_impl()

    def _setup_impl(self) -> None:
        """Hook for subclasses; called after the matrix has been stored."""

    @property
    def matrix(self) -> sp.csr_matrix:
        if self._matrix is None:
            raise RuntimeError(f"{self.name}: setup() has not been called")
        return self._matrix

    @property
    def partition(self) -> Optional[BlockRowPartition]:
        return self._partition

    @property
    def is_set_up(self) -> bool:
        return self._matrix is not None

    # -- action ------------------------------------------------------------
    @abc.abstractmethod
    def apply(self, residual: np.ndarray) -> np.ndarray:
        """Return ``z = M^{-1} r`` for a global residual vector."""

    def apply_block(self, rank: int, residual_block: np.ndarray) -> np.ndarray:
        """Apply the preconditioner to one partition block.

        Only meaningful for block-diagonal preconditioners (the application
        then needs no communication).  The default raises.

        Block-diagonal implementations accept both a single residual block
        of shape ``(n_i,)`` and a 2-D multi-RHS block of shape ``(n_i, k)``
        (one independent application per column); the 2-D path is what
        :class:`~repro.core.block_pcg.BlockPCG` drives once per iteration
        for all ``k`` recurrences.  Column ``j`` of a 2-D application must
        be bit-identical to the 1-D application of column ``j`` alone --
        subclasses without a natively elementwise kernel should delegate to
        :meth:`_apply_block_columns`.
        """
        raise NotImplementedError(
            f"{self.name} is not block-diagonal; apply_block is unavailable"
        )

    def _apply_block_columns(self, rank: int,
                             residual_block: np.ndarray) -> np.ndarray:
        """Generic 2-D ``apply_block`` path: one 1-D application per column.

        Each column is handed to the single-vector path as a fresh
        contiguous array, which guarantees the per-column bit-identity the
        block-Krylov equivalence contract requires (a strided view could
        take a different BLAS kernel and round differently).
        """
        out = np.empty_like(residual_block, dtype=np.float64)
        for j in range(residual_block.shape[1]):
            out[:, j] = self.apply_block(
                rank, np.ascontiguousarray(residual_block[:, j])
            )
        return out

    @property
    def is_block_diagonal(self) -> bool:
        """True if the preconditioner decouples across partition blocks."""
        return False

    # -- cost accounting ------------------------------------------------------
    def work_nnz(self) -> int:
        """Approximate non-zero operations per global application."""
        return int(self.matrix.shape[0])

    def block_work_nnz(self, rank: int) -> int:
        """Approximate non-zero operations to apply the block of *rank*."""
        if self._partition is None:
            return self.work_nnz()
        size = self._partition.size_of(rank)
        return int(round(self.work_nnz() * size / max(self._partition.n, 1)))

    def max_block_work_nnz(self) -> int:
        """Worst-rank ``block_work_nnz`` (cached; static after ``setup``).

        The distributed solvers charge every block-local application with
        the slowest rank's work; since the per-block work never changes
        between ``setup`` calls, the max over ranks is computed once here
        instead of per iteration.
        """
        if self._max_block_work_nnz is None:
            if self._partition is None:
                self._max_block_work_nnz = self.work_nnz()
            else:
                self._max_block_work_nnz = max(
                    self.block_work_nnz(rank)
                    for rank in range(self._partition.n_parts)
                )
        return self._max_block_work_nnz

    # -- ESR structural access --------------------------------------------------
    @property
    def form(self) -> PreconditionerForm:
        """The representation the ESR reconstruction should use."""
        return PreconditionerForm.FORWARD

    def forward_rows(self, indices: np.ndarray) -> sp.csr_matrix:
        """Rows ``M[indices, :]`` of the preconditioner operator."""
        raise NotImplementedError(
            f"{self.name} does not expose rows of M"
        )

    def inverse_rows(self, indices: np.ndarray) -> sp.csr_matrix:
        """Rows ``P[indices, :]`` of the inverse operator ``P = M^{-1}``."""
        raise NotImplementedError(
            f"{self.name} does not expose rows of M^-1"
        )

    def split_factor(self) -> sp.csr_matrix:
        """The lower-triangular factor ``L`` with ``M = L L^T`` (if available)."""
        raise NotImplementedError(
            f"{self.name} does not expose a split factor"
        )

    # -- misc -----------------------------------------------------------------------
    def describe(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()


def as_indices(indices: Iterable[int]) -> np.ndarray:
    """Normalise an index collection to a sorted unique int64 array."""
    return np.unique(np.asarray(list(indices), dtype=np.int64))
