"""Compute nodes of the virtual distributed-memory machine.

A :class:`Node` models one compute node of the parallel computer described in
Sec. 1.1 of the paper: it has a private memory (shared by its ``m`` local
processors, which the simulation does not need to distinguish further), it can
*fail* -- losing all dynamic data stored in that memory -- and it can later be
re-initialised as a *replacement node* that takes over the failed node's rank.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator

import numpy as np

from .. import sanitizer as _sanitizer
from .errors import NodeFailedError


class NodeStatus(enum.Enum):
    """Lifecycle states of a virtual compute node."""

    #: Healthy node participating in the computation.
    ALIVE = "alive"
    #: Node that failed; its memory contents are gone.
    FAILED = "failed"
    #: Node brought in to take over a failed node's rank (Sec. 1.1).  It is
    #: functionally alive but flagged so the recovery logic and statistics can
    #: distinguish it from nodes that never failed.
    REPLACEMENT = "replacement"


class NodeMemory:
    """Private key/value memory of one node.

    Every read or write checks the owning node's status, so any attempt to use
    data that should have been lost in a failure raises
    :class:`~repro.cluster.errors.NodeFailedError`.
    """

    def __init__(self, node: "Node"):
        self._node = node
        self._store: Dict[Any, Any] = {}

    # -- guarded dict-like interface -------------------------------------
    def _check(self) -> None:
        if self._node.status is NodeStatus.FAILED:
            raise NodeFailedError(self._node.rank)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._check()
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_memory_write(self._node, key)
        self._store[key] = value

    def __getitem__(self, key: Any) -> Any:
        # No use-after-failure hook here: a lost key raises a loud KeyError,
        # which callers (e.g. the SpMV engine's output-block probe) handle
        # deliberately.  The sanitizer targets the *silent* paths below.
        self._check()
        return self._store[key]

    def __delitem__(self, key: Any) -> None:
        self._check()
        del self._store[key]

    def __contains__(self, key: Any) -> bool:
        self._check()
        return key in self._store

    def __len__(self) -> int:
        self._check()
        return len(self._store)

    def __iter__(self) -> Iterator[Any]:
        self._check()
        return iter(list(self._store.keys()))

    def get(self, key: Any, default: Any = None) -> Any:
        self._check()
        if _sanitizer._ACTIVE is not None and key not in self._store:
            # About to silently return the default for a key that may have
            # been lost in a failure -- the use-after-failure hazard.
            _sanitizer._ACTIVE.on_memory_read(self._node, key)
        return self._store.get(key, default)

    def pop(self, key: Any, *default: Any) -> Any:
        self._check()
        if _sanitizer._ACTIVE is not None and default \
                and key not in self._store:
            _sanitizer._ACTIVE.on_memory_read(self._node, key)
        return self._store.pop(key, *default)

    def keys(self):
        self._check()
        return list(self._store.keys())

    def raw_keys(self):
        """Keys currently in the raw store, without the liveness check.

        Introspection hook for the runtime sanitizer, which must enumerate
        the contents of a memory *while its node is failing* (i.e. exactly
        when the guarded interface refuses access).
        """
        return list(self._store.keys())

    def clear(self) -> None:
        """Erase everything (used when the node fails)."""
        self._store.clear()

    def invalidate(self, key: Any) -> bool:
        """Remove *key* from the raw store without the liveness check.

        Driver-side maintenance hook for metadata operations (vector renames
        and swaps) that must not leave stale blocks behind on failed nodes:
        a node that is later restored -- or wrongly declared dead and rejoins
        without a scrub -- must not expose data that predates the operation
        under a now-reassigned key.  Returns True if the key was present.
        """
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_memory_invalidate(self._node, key)
        return self._store.pop(key, None) is not None

    def nbytes(self) -> int:
        """Approximate memory footprint of stored NumPy data (for statistics)."""
        self._check()
        total = 0
        for value in self._store.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif hasattr(value, "data") and hasattr(value.data, "nbytes"):
                # scipy sparse matrices
                total += value.data.nbytes
                for attr in ("indices", "indptr"):
                    arr = getattr(value, attr, None)
                    if arr is not None:
                        total += arr.nbytes
        return total


@dataclass
class Node:
    """One compute node of the virtual cluster.

    Parameters
    ----------
    rank:
        Global rank (0-based) of the node.  The paper indexes nodes
        ``1..N``; ranks map to that numbering shifted by one.
    n_processors:
        Number of processors sharing the node's memory (``m`` in Sec. 1.1).
        The simulation treats the node as the unit of failure and of data
        ownership, matching the paper's experiments (one process per node).
    """

    rank: int
    n_processors: int = 1
    status: NodeStatus = NodeStatus.ALIVE
    #: Number of times this rank has failed during the simulation.
    failure_count: int = 0
    memory: NodeMemory = field(init=False)

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative, got {self.rank}")
        if self.n_processors < 1:
            raise ValueError(
                f"n_processors must be at least 1, got {self.n_processors}"
            )
        self.memory = NodeMemory(self)

    # -- status helpers ---------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True for ``ALIVE`` and ``REPLACEMENT`` nodes."""
        return self.status is not NodeStatus.FAILED

    @property
    def is_failed(self) -> bool:
        return self.status is NodeStatus.FAILED

    # -- failure / replacement lifecycle ----------------------------------
    def fail(self) -> None:
        """Fail-stop this node: erase its memory and mark it failed."""
        if _sanitizer._ACTIVE is not None:
            # Tombstones must be recorded before the wipe below.
            _sanitizer._ACTIVE.on_node_fail(self)
        self.memory.clear()
        self.status = NodeStatus.FAILED
        self.failure_count += 1

    def replace(self) -> None:
        """Bring in a replacement node for this rank.

        The replacement starts with an *empty* memory -- it has to obtain all
        data it needs through the recovery procedure (reliable storage for
        static data, redundant copies on surviving nodes for dynamic data).
        """
        if self.status is not NodeStatus.FAILED:
            raise ValueError(
                f"node {self.rank} is not failed; cannot install a replacement"
            )
        self.memory.clear()
        self.status = NodeStatus.REPLACEMENT

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Node(rank={self.rank}, status={self.status.value}, "
            f"failures={self.failure_count})"
        )
