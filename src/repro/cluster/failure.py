"""Fail-stop node failures and the ULFM-like recovery runtime.

Two pieces live here:

* :class:`FailureInjector` -- turns a declarative schedule of
  :class:`FailureEvent` objects ("at iteration 120, ranks {4, 5, 6} fail")
  into actual node failures on the virtual cluster, at the right point of the
  solver's progress.  Overlapping failures (a second event that strikes while
  reconstruction of a first one is still running, Sec. 4.1) are expressed by
  events carrying ``during_recovery_of`` references.
* :class:`UlfmRuntime` -- models the fault-tolerance features the paper
  assumes from the MPI runtime (Sec. 1.1.1): detection of failures,
  notification of the surviving nodes, and provisioning of replacement nodes
  that take over the failed ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..utils.validation import ValidationError, check_rank_list
from .node import Node, NodeStatus


@dataclass(frozen=True)
class FailureEvent:
    """A single (possibly multi-node) failure event.

    Parameters
    ----------
    iteration:
        Solver iteration *before* which the event strikes.  All ranks listed
        in ``ranks`` fail simultaneously at that point.
    ranks:
        The node ranks that fail together.
    during_recovery_of:
        If not ``None``, the event does not strike at an iteration boundary
        but *while the recovery from the referenced event index is running*
        (overlapping failures, Sec. 4.1).  The reconstruction must then be
        restarted including the newly failed ranks.
    label:
        Optional human-readable tag used in reports.
    """

    iteration: int
    ranks: Tuple[int, ...]
    during_recovery_of: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValidationError(
                f"failure iteration must be >= 0, got {self.iteration}"
            )
        if not self.ranks:
            raise ValidationError("a failure event needs at least one rank")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValidationError(f"duplicate ranks in failure event: {self.ranks}")
        object.__setattr__(self, "ranks", tuple(int(r) for r in self.ranks))

    @property
    def n_failures(self) -> int:
        return len(self.ranks)


class FailureInjector:
    """Executes a failure schedule against the nodes of a cluster."""

    def __init__(self, events: Sequence[FailureEvent] = ()):
        self._events: List[FailureEvent] = sorted(
            events, key=lambda e: (e.iteration, e.during_recovery_of is not None)
        )
        self._triggered: Set[int] = set()

    @property
    def events(self) -> List[FailureEvent]:
        return list(self._events)

    def add_event(self, event: FailureEvent) -> None:
        self._events.append(event)
        self._events.sort(key=lambda e: (e.iteration, e.during_recovery_of is not None))

    def pending_events(self) -> List[FailureEvent]:
        """Events that have not been triggered yet."""
        return [e for i, e in enumerate(self._events) if i not in self._triggered]

    def events_due(self, iteration: int, *, overlapping: bool = False
                   ) -> List[Tuple[int, FailureEvent]]:
        """Events that should strike at (or before) *iteration*.

        ``overlapping`` selects the events flagged with ``during_recovery_of``
        (queried by the recovery driver), the default selects iteration-boundary
        events (queried by the solver loop).
        """
        due = []
        for idx, event in enumerate(self._events):
            if idx in self._triggered:
                continue
            is_overlap = event.during_recovery_of is not None
            if is_overlap != overlapping:
                continue
            if event.iteration <= iteration:
                due.append((idx, event))
        return due

    def trigger(self, idx: int, nodes: Sequence[Node]) -> FailureEvent:
        """Fire event *idx*: fail the listed nodes and mark the event done.

        Ranks that are already failed when the event strikes (possible with
        stochastic schedules: two generated events can name the same rank
        before a recovery replaced it) are skipped deterministically -- a
        node only fails once per episode, so ``failure_count`` and the
        cleared memory reflect real transitions, never double-kills.  The
        event is marked triggered either way.
        """
        if idx in self._triggered:
            raise ValidationError(f"failure event {idx} already triggered")
        event = self._events[idx]
        check_rank_list(event.ranks, len(nodes), "failure ranks")
        for rank in event.ranks:
            if not nodes[rank].is_failed:
                nodes[rank].fail()
        self._triggered.add(idx)
        return event

    def all_triggered(self) -> bool:
        return len(self._triggered) == len(self._events)

    def max_simultaneous_failures(self) -> int:
        """Largest number of ranks failing in one event (lower bound for phi)."""
        return max((e.n_failures for e in self._events), default=0)


@dataclass
class RecoveryRecord:
    """Bookkeeping for one recovery episode (possibly spanning overlaps)."""

    start_iteration: int
    failed_ranks: List[int] = field(default_factory=list)
    restarts: int = 0
    simulated_time: float = 0.0
    wallclock_time: float = 0.0


class UlfmRuntime:
    """Failure detection, notification and node replacement.

    The real counterpart is the MPI ULFM extension: failures are detected,
    surviving processes are notified which ranks died, and the application
    obtains replacement processes.  Here detection is exact and immediate (the
    paper does not study detection latency), and replacements reuse the failed
    rank's slot with a wiped memory, matching the simulation methodology of
    Sec. 6 of the paper.
    """

    def __init__(self, nodes: Sequence[Node]):
        self._nodes = list(nodes)
        self._known_failed: Set[int] = set()
        self.recoveries: List[RecoveryRecord] = []

    # -- detection / notification -------------------------------------------
    def detect_failures(self) -> List[int]:
        """Return newly failed ranks since the last call (and remember them)."""
        current = {n.rank for n in self._nodes if n.is_failed}
        new = sorted(current - self._known_failed)
        self._known_failed |= set(new)
        return new

    def known_failed(self) -> List[int]:
        """Ranks currently known to be failed and not yet replaced."""
        return sorted(
            r for r in self._known_failed if self._nodes[r].is_failed
        )

    def notify_survivors(self, failed_ranks: Iterable[int]) -> Dict[int, List[int]]:
        """Deliver the failure notification to every surviving rank.

        Returns a map ``surviving rank -> list of failed ranks`` (what each
        survivor now knows), mirroring ULFM's revoke/agree pattern.
        """
        failed = sorted(set(failed_ranks))
        return {
            node.rank: list(failed)
            for node in self._nodes
            if node.is_alive
        }

    # -- replacement ----------------------------------------------------------
    def provide_replacements(self, failed_ranks: Iterable[int]) -> List[int]:
        """Install replacement nodes for *failed_ranks*; return their ranks."""
        replaced = []
        for rank in sorted(set(failed_ranks)):
            node = self._nodes[rank]
            if node.status is not NodeStatus.FAILED:
                raise ValidationError(
                    f"rank {rank} is not failed; nothing to replace"
                )
            node.replace()
            self._known_failed.discard(rank)
            replaced.append(rank)
        return replaced

    def begin_recovery(self, iteration: int, failed_ranks: Iterable[int]
                       ) -> RecoveryRecord:
        """Open a recovery record (used by the resilient solver driver)."""
        record = RecoveryRecord(
            start_iteration=iteration, failed_ranks=sorted(set(failed_ranks))
        )
        self.recoveries.append(record)
        return record

    def total_recoveries(self) -> int:
        return len(self.recoveries)
