"""The :class:`VirtualCluster` facade.

A ``VirtualCluster`` bundles everything the distributed solvers need from the
machine: the nodes with their private memories, the interconnect topology, the
latency-bandwidth cost model with its ledger, the MPI-like communicator, the
ULFM-like failure runtime and the reliable storage for static data.  It is
the single object that experiment code constructs and passes around.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..utils.rng import RandomState, as_rng
from .communicator import Communicator
from .cost_model import CostLedger, MachineModel
from .errors import ClusterError
from .failure import FailureInjector, UlfmRuntime
from .network import Topology, UniformTopology, default_topology
from .node import Node
from .reliable_storage import ReliableStorage


class VirtualCluster:
    """A simulated distributed-memory parallel computer.

    Parameters
    ----------
    n_nodes:
        Number of compute nodes ``N``.
    machine:
        Performance parameters; defaults to :class:`MachineModel` defaults.
    topology:
        Interconnect; defaults to a fat tree sized for ``n_nodes``.
    processors_per_node:
        ``m`` of Sec. 1.1 -- kept for reporting; the node is the unit of
        failure either way.
    seed:
        Seed for the cost model's run-to-run jitter (only used if the machine
        model has ``jitter_rel_std > 0``).
    """

    def __init__(self, n_nodes: int, *, machine: Optional[MachineModel] = None,
                 topology: Optional[Topology] = None, processors_per_node: int = 1,
                 seed: Optional[int] = None):
        if n_nodes < 1:
            raise ClusterError(f"a cluster needs at least one node, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.machine = machine if machine is not None else MachineModel()
        self.topology = topology if topology is not None else default_topology(
            n_nodes, self.machine.latency_intra, self.machine.latency_inter
        )
        if self.topology.n_nodes != self.n_nodes:
            raise ClusterError(
                f"topology is sized for {self.topology.n_nodes} nodes, "
                f"cluster has {self.n_nodes}"
            )
        self._rng: Optional[RandomState] = (
            as_rng(seed) if self.machine.jitter_rel_std > 0 else
            (as_rng(seed) if seed is not None else None)
        )
        self.nodes: List[Node] = [
            Node(rank=r, n_processors=processors_per_node)
            for r in range(self.n_nodes)
        ]
        self.ledger = CostLedger(model=self.machine, rng=self._rng)
        self.comm = Communicator(self.nodes, self.topology, self.ledger)
        self.storage = ReliableStorage(self.ledger)
        self.ulfm = UlfmRuntime(self.nodes)

    # -- node queries -----------------------------------------------------
    def node(self, rank: int) -> Node:
        """The node object at *rank* (alive or failed)."""
        if not 0 <= rank < self.n_nodes:
            raise ClusterError(f"rank {rank} out of range [0, {self.n_nodes})")
        return self.nodes[rank]

    def alive_ranks(self) -> List[int]:
        return [n.rank for n in self.nodes if n.is_alive]

    def failed_ranks(self) -> List[int]:
        return [n.rank for n in self.nodes if n.is_failed]

    @property
    def any_failed(self) -> bool:
        return any(n.is_failed for n in self.nodes)

    # -- failure handling ---------------------------------------------------
    def fail_nodes(self, ranks: Iterable[int]) -> List[int]:
        """Fail the listed ranks immediately (bypassing a schedule)."""
        failed = []
        for rank in ranks:
            self.node(rank).fail()
            failed.append(int(rank))
        self.comm.drop_messages_to_failed()
        return failed

    def replace_nodes(self, ranks: Iterable[int]) -> List[int]:
        """Install replacement nodes for the given failed ranks."""
        return self.ulfm.provide_replacements(ranks)

    def attach_failure_schedule(self, events) -> FailureInjector:
        """Convenience: build a :class:`FailureInjector` for this cluster."""
        return FailureInjector(events)

    # -- time accounting ------------------------------------------------------
    def simulated_time(self) -> float:
        """Total simulated time accumulated so far (seconds)."""
        return self.ledger.total_time()

    def reset_costs(self) -> None:
        """Clear the ledger (e.g. between the setup phase and the timed run)."""
        self.ledger.reset()

    # -- reporting --------------------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable description (used by examples and logs)."""
        topo = type(self.topology).__name__
        return (
            f"VirtualCluster(N={self.n_nodes}, topology={topo}, "
            f"alive={len(self.alive_ranks())}, failed={len(self.failed_ranks())})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()


def make_cluster(n_nodes: int, *, uniform_latency: Optional[float] = None,
                 machine: Optional[MachineModel] = None,
                 seed: Optional[int] = None) -> VirtualCluster:
    """Shorthand used heavily in tests: build a small cluster quickly.

    ``uniform_latency`` switches to a :class:`UniformTopology` (simplest
    latency structure); otherwise the default fat tree is used.
    """
    topology = None
    if uniform_latency is not None:
        topology = UniformTopology(n_nodes, latency=uniform_latency)
    return VirtualCluster(n_nodes, machine=machine, topology=topology, seed=seed)
