"""Exceptions raised by the virtual-cluster substrate."""

from __future__ import annotations

from typing import Iterable, Optional


class ClusterError(RuntimeError):
    """Base class for all virtual-cluster errors."""


class NodeFailedError(ClusterError):
    """Raised when code touches the memory of a failed node.

    This is the mechanism that makes the failure simulation honest: any
    algorithm that tries to read data that was lost in a node failure gets
    this exception instead of stale values, so recovery procedures can only
    rely on redundant copies held by surviving nodes or on reliable storage.
    """

    def __init__(self, rank: int, detail: str = ""):
        self.rank = rank
        message = f"node {rank} has failed and its memory is unavailable"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class CommunicationError(ClusterError):
    """Raised when a point-to-point or collective operation cannot complete."""

    def __init__(self, message: str, failed_ranks: Optional[Iterable[int]] = None):
        self.failed_ranks = sorted(set(failed_ranks)) if failed_ranks else []
        if self.failed_ranks:
            message = f"{message} [failed ranks: {self.failed_ranks}]"
        super().__init__(message)


class UnrecoverableStateError(ClusterError):
    """Raised when recovery is impossible (e.g. more failures than redundancy).

    The resilient solvers translate this into an explicit, reportable outcome
    rather than silently producing wrong results.
    """
