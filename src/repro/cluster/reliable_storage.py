"""Reliable external storage for static problem data.

Sec. 1.1.2 of the paper assumes that the *static* input data -- the system
matrix ``A``, the right-hand side ``b`` and the preconditioner ``M`` -- can be
retrieved from reliable external storage after a node failure (e.g. from a
checkpoint taken before entering the solver), so it never has to be protected
by the ESR scheme.  :class:`ReliableStorage` models exactly that: a key/value
store that survives any number of node failures, whose reads are charged to
the recovery phase of the cost ledger.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .cost_model import CostLedger, Phase


def _element_count(value: Any) -> int:
    """Number of stored scalar elements in *value* (for retrieval cost)."""
    if isinstance(value, np.ndarray):
        return int(value.size)
    if sp.issparse(value):
        return int(value.nnz)
    if isinstance(value, (int, float, complex, np.generic)):
        return 1
    if isinstance(value, (list, tuple)):
        return sum(_element_count(v) for v in value)
    return 1


class ReliableStorage:
    """Failure-proof store for static data blocks.

    Keys are arbitrary hashables; by convention the library uses
    ``(name, rank)`` tuples for per-node blocks (e.g. ``("A_rows", 3)``) and
    plain strings for global items (e.g. ``"b"``).
    """

    def __init__(self, ledger: Optional[CostLedger] = None):
        self._store: Dict[Any, Any] = {}
        self._ledger = ledger
        self.retrieval_count = 0

    # -- population (free: happens before the solver starts) ---------------
    def put(self, key: Any, value: Any) -> None:
        """Store *value* under *key* (no cost: done during problem setup)."""
        self._store[key] = value

    def put_block(self, name: str, rank: int, value: Any) -> None:
        """Store a per-node block under the conventional ``(name, rank)`` key."""
        self.put((name, rank), value)

    def __contains__(self, key: Any) -> bool:
        return key in self._store

    def keys(self) -> Iterable[Any]:
        return list(self._store.keys())

    # -- retrieval (charged to recovery) ------------------------------------
    def retrieve(self, key: Any, charge: bool = True) -> Any:
        """Fetch the value stored under *key*.

        Parameters
        ----------
        charge:
            If true (the default), the read is charged to the
            ``recovery.storage`` phase of the ledger -- retrieval only happens
            during reconstruction after a failure.
        """
        if key not in self._store:
            raise KeyError(f"reliable storage has no entry for {key!r}")
        value = self._store[key]
        if charge and self._ledger is not None:
            n_elem = _element_count(value)
            self._ledger.add_time(
                Phase.STORAGE_RETRIEVE,
                self._ledger.model.storage_retrieve_time(n_elem),
            )
            self._ledger.add_traffic(Phase.STORAGE_RETRIEVE, 1, n_elem)
        self.retrieval_count += 1
        return value

    def retrieve_block(self, name: str, rank: int, charge: bool = True) -> Any:
        """Fetch a per-node block stored via :meth:`put_block`."""
        return self.retrieve((name, rank), charge=charge)

    def attach_ledger(self, ledger: CostLedger) -> None:
        """Bind (or rebind) the cost ledger that retrievals are charged to."""
        self._ledger = ledger

    def stored_element_count(self) -> int:
        """Total number of scalar elements held (for reporting)."""
        return sum(_element_count(v) for v in self._store.values())

    def items(self) -> Iterable[Tuple[Any, Any]]:
        return list(self._store.items())
