"""Latency-bandwidth cost model and simulated-time bookkeeping.

The paper analyses the overhead of the resilient PCG solver in a classical
latency-bandwidth model (Sec. 4.2): sending ``k`` vector elements from one
node to another costs ``lambda + k * mu`` where ``lambda`` is a per-message
latency (which may differ between node pairs, e.g. within/between switches of
a fat tree) and ``mu`` is the per-element transfer cost.  Computation is
charged per floating-point operation with different effective rates for
memory-bound sparse kernels and cache-friendly vector operations.

The solvers in :mod:`repro.core` execute *numerically* on the driver process
but charge every operation to a :class:`CostLedger` using a bulk-synchronous
model: for each logical step the maximum cost over all participating nodes is
added to the simulated clock.  The relative overheads reported by the
benchmark harness (Table 2, Figures 1-4) are ratios of these simulated times,
mirroring the quantities the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from .. import sanitizer as _sanitizer
from ..utils.rng import RandomState, jittered
from ..utils.validation import check_nonnegative, check_positive


class Phase:
    """Canonical phase names used when charging costs to the ledger."""

    SPMV_COMPUTE = "compute.spmv"
    VECTOR_COMPUTE = "compute.vector"
    PRECOND_COMPUTE = "compute.precond"
    HALO_COMM = "comm.halo"
    REDUNDANCY_COMM = "comm.redundancy"
    ALLREDUCE_COMM = "comm.allreduce"
    RECOVERY_COMM = "recovery.comm"
    RECOVERY_COMPUTE = "recovery.compute"
    STORAGE_RETRIEVE = "recovery.storage"
    CHECKPOINT = "checkpoint"

    #: Phases that make up the failure-free iteration cost.
    ITERATION_PHASES = (
        SPMV_COMPUTE,
        VECTOR_COMPUTE,
        PRECOND_COMPUTE,
        HALO_COMM,
        REDUNDANCY_COMM,
        ALLREDUCE_COMM,
        CHECKPOINT,
    )
    #: Phases attributed to recovery after node failures.
    RECOVERY_PHASES = (RECOVERY_COMM, RECOVERY_COMPUTE, STORAGE_RETRIEVE)


@dataclass(frozen=True)
class MachineModel:
    """Performance parameters of the simulated parallel computer.

    The defaults are loosely modelled on a commodity cluster of the VSC3 era
    (the machine used in the paper): InfiniBand-class latencies, a few GB/s of
    usable point-to-point bandwidth, and SpMV throughput limited by memory
    bandwidth rather than peak FLOP rate.  Absolute values only set the time
    unit; the benchmark harness reports *relative* overheads.

    Parameters
    ----------
    latency_intra:
        Message latency (seconds) between nodes connected to the same switch.
    latency_inter:
        Message latency (seconds) between nodes under different switches.
    element_transfer_time:
        ``mu``: time (seconds) to transfer one 8-byte vector element.
    spmv_flop_rate:
        Effective flop/s for sparse matrix-vector products (memory bound).
    vector_flop_rate:
        Effective flop/s for streaming vector operations (axpy, dot, ...).
    precond_flop_rate:
        Effective flop/s for applying the preconditioner.
    storage_latency / storage_element_time:
        Cost of retrieving static data (matrix/vector blocks) from reliable
        external storage during recovery.
    allreduce_term_latency:
        Per-tree-level latency of an allreduce/reduction (the familiar
        ``ceil(log2 N)`` model of collective communication).
    jitter_rel_std:
        Relative standard deviation of multiplicative noise applied to every
        charged cost, emulating run-to-run variability of a real machine.
    """

    latency_intra: float = 1.5e-6
    latency_inter: float = 3.5e-6
    element_transfer_time: float = 1.6e-9
    spmv_flop_rate: float = 2.0e9
    vector_flop_rate: float = 6.0e9
    precond_flop_rate: float = 2.5e9
    storage_latency: float = 5.0e-4
    storage_element_time: float = 4.0e-9
    allreduce_term_latency: float = 2.0e-6
    jitter_rel_std: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.latency_intra, "latency_intra")
        check_positive(self.latency_inter, "latency_inter")
        check_positive(self.element_transfer_time, "element_transfer_time")
        check_positive(self.spmv_flop_rate, "spmv_flop_rate")
        check_positive(self.vector_flop_rate, "vector_flop_rate")
        check_positive(self.precond_flop_rate, "precond_flop_rate")
        check_nonnegative(self.storage_latency, "storage_latency")
        check_nonnegative(self.storage_element_time, "storage_element_time")
        check_positive(self.allreduce_term_latency, "allreduce_term_latency")
        check_nonnegative(self.jitter_rel_std, "jitter_rel_std")

    def scaled(self, factor: float) -> "MachineModel":
        """A machine model emulating problems *factor* times larger per node.

        The benchmark harness runs scaled-down analogues of the paper's
        matrices (a few thousand rows per node instead of ~10 000).  To keep
        the compute/latency balance of the original experiments, each
        simulated row is treated as standing for *factor* real rows: per-row
        compute and per-element transfer costs grow by *factor* while
        per-message latencies stay fixed.  Relative overheads (the quantities
        the paper reports) then land in the same regime as on the real
        machine.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return MachineModel(
            latency_intra=self.latency_intra,
            latency_inter=self.latency_inter,
            element_transfer_time=self.element_transfer_time * factor,
            spmv_flop_rate=self.spmv_flop_rate / factor,
            vector_flop_rate=self.vector_flop_rate / factor,
            precond_flop_rate=self.precond_flop_rate / factor,
            storage_latency=self.storage_latency,
            storage_element_time=self.storage_element_time * factor,
            allreduce_term_latency=self.allreduce_term_latency,
            jitter_rel_std=self.jitter_rel_std,
        )

    # -- elementary cost formulas -----------------------------------------
    def message_time(self, latency: float, n_elements: int) -> float:
        """Cost of one point-to-point message with *n_elements* vector entries."""
        if n_elements <= 0:
            return 0.0
        return latency + n_elements * self.element_transfer_time

    def spmv_time(self, nnz: int) -> float:
        """Compute time of a local SpMV with *nnz* stored non-zeros (2 flops/nnz)."""
        return 2.0 * max(nnz, 0) / self.spmv_flop_rate

    def split_spmv_time(self, halo_time: float, diag_nnz: int,
                        offdiag_nnz: int) -> float:
        """Per-rank time of one split-phase SpMV with comm/compute overlap.

        Models the PETSc-style ``VecScatterBegin -> A_diag @ x_own ->
        VecScatterEnd -> += A_offdiag @ x_ghost`` execution: the halo exchange
        proceeds concurrently with the diagonal-block product, so the rank
        pays ``max(halo, diag) + offdiag``.  With ``halo_time`` set to the
        rank's full serialized halo cost this is always at most the
        serialized ``halo + diag + offdiag`` charge.
        """
        return max(halo_time, self.spmv_time(diag_nnz)) + \
            self.spmv_time(offdiag_nnz)

    def vector_op_time(self, n_elements: int, flops_per_element: float = 2.0) -> float:
        """Compute time of a streaming vector operation over *n_elements*."""
        return flops_per_element * max(n_elements, 0) / self.vector_flop_rate

    def precond_apply_time(self, work_nnz: int) -> float:
        """Compute time of applying a preconditioner with *work_nnz* non-zeros."""
        return 2.0 * max(work_nnz, 0) / self.precond_flop_rate

    def allreduce_time(self, n_nodes: int, n_scalars: int = 1) -> float:
        """Cost of an allreduce over *n_nodes* of *n_scalars* doubles.

        Batched reductions (the ``k`` per-column dots of a multi-RHS block,
        or a ``k x k`` Gram matrix) pass ``n_scalars = k`` or ``k^2``: every
        tree hop remains **one** message paying the per-level latency once,
        and only the per-hop volume term scales with the payload width --
        the same message-count-invariant scaling ``halo_exchange_cost``
        applies to multi-RHS halo exchanges.  Since the latency term
        dominates for the few-scalar reductions of (block-)PCG, a ``k``-wide
        reduction costs far less than ``k`` scalar ones.
        """
        if n_nodes <= 1:
            return 0.0
        levels = math.ceil(math.log2(n_nodes))
        per_level = self.allreduce_term_latency + n_scalars * self.element_transfer_time
        # reduce + broadcast (or equivalently a butterfly of 2*levels stages)
        return 2.0 * levels * per_level

    def storage_retrieve_time(self, n_elements: int) -> float:
        """Cost of pulling *n_elements* values from reliable external storage."""
        if n_elements <= 0:
            return 0.0
        return self.storage_latency + n_elements * self.storage_element_time


@dataclass
class CostLedger:
    """Accumulates simulated time (and traffic counters) per phase.

    The ledger is the single source of truth for "how long did this run
    take" in simulated time.  It also tracks message and element counters so
    the analysis module can validate the Sec. 4.2 bounds independently of the
    time accounting.
    """

    model: MachineModel
    rng: Optional[RandomState] = None
    times: Dict[str, float] = field(default_factory=dict)
    messages: Dict[str, int] = field(default_factory=dict)
    elements: Dict[str, int] = field(default_factory=dict)

    # -- charging ----------------------------------------------------------
    def add_time(self, phase: str, seconds: float) -> float:
        """Charge *seconds* of simulated time to *phase* (with optional jitter)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds} to {phase}")
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_charge(phase)
        actual = jittered(self.rng, seconds, self.model.jitter_rel_std)
        self.times[phase] = self.times.get(phase, 0.0) + actual
        return actual

    def add_overlapped(self, comm_phase: str, compute_phase: str,
                       compute_time: float, total_time: float) -> float:
        """Charge an overlapped communication/compute step.

        *total_time* is the bulk-synchronous wall time of the whole step
        (e.g. ``max_i(max(halo_i, diag_i) + offdiag_i)`` for a split-phase
        SpMV) and *compute_time* the part attributable to pure compute
        (``max_i(diag_i + offdiag_i)``).  The compute phase is charged in
        full and the communication phase only the *exposed* remainder
        ``total_time - compute_time``, so the per-phase breakdown still sums
        to the overlapped wall time.  Returns the total charged time
        (including jitter, when enabled).
        """
        if total_time < compute_time:
            raise ValueError(
                f"overlapped total time {total_time} is smaller than its "
                f"compute part {compute_time}"
            )
        charged = self.add_time(compute_phase, compute_time)
        charged += self.add_time(comm_phase, total_time - compute_time)
        return charged

    def add_traffic(self, phase: str, n_messages: int, n_elements: int) -> None:
        """Record *n_messages* messages totalling *n_elements* vector entries."""
        if n_messages:
            self.messages[phase] = self.messages.get(phase, 0) + int(n_messages)
        if n_elements:
            self.elements[phase] = self.elements.get(phase, 0) + int(n_elements)

    # -- queries -----------------------------------------------------------
    def total_time(self, phases: Optional[Iterable[str]] = None) -> float:
        """Total simulated time, optionally restricted to *phases*."""
        if phases is None:
            return float(sum(self.times.values()))
        wanted = set(phases)
        return float(sum(t for p, t in self.times.items() if p in wanted))

    def iteration_time(self) -> float:
        """Simulated time spent in failure-free iteration phases."""
        return self.total_time(Phase.ITERATION_PHASES)

    def recovery_time(self) -> float:
        """Simulated time spent recovering from node failures."""
        return self.total_time(Phase.RECOVERY_PHASES)

    def breakdown(self) -> Dict[str, float]:
        """Copy of the per-phase time map (sorted by phase name)."""
        return {k: self.times[k] for k in sorted(self.times)}

    def total_messages(self, phases: Optional[Iterable[str]] = None) -> int:
        if phases is None:
            return int(sum(self.messages.values()))
        wanted = set(phases)
        return int(sum(v for p, v in self.messages.items() if p in wanted))

    def total_elements(self, phases: Optional[Iterable[str]] = None) -> int:
        if phases is None:
            return int(sum(self.elements.values()))
        wanted = set(phases)
        return int(sum(v for p, v in self.elements.items() if p in wanted))

    # -- snapshots ---------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Immutable copy of the current per-phase times (for differencing)."""
        return dict(self.times)

    def since(self, snapshot: Mapping[str, float],
              phases: Optional[Iterable[str]] = None) -> float:
        """Time accumulated since *snapshot*, optionally restricted to *phases*."""
        keys = set(self.times) | set(snapshot)
        if phases is not None:
            keys &= set(phases)
        # Accumulate in sorted-key order: set iteration is hash-randomised
        # per process, and a float sum in hash order is bit-unstable across
        # otherwise identical runs (R005).
        return float(
            sum(self.times.get(k, 0.0) - snapshot.get(k, 0.0)
                for k in sorted(keys))
        )

    def reset(self) -> None:
        """Clear all accumulated costs."""
        self.times.clear()
        self.messages.clear()
        self.elements.clear()

    def merge(self, other: "CostLedger") -> None:
        """Add another ledger's accumulators into this one."""
        for k, v in other.times.items():
            self.times[k] = self.times.get(k, 0.0) + v
        for k, v in other.messages.items():
            self.messages[k] = self.messages.get(k, 0) + v
        for k, v in other.elements.items():
            self.elements[k] = self.elements.get(k, 0) + v


def max_over_nodes(values: Iterable[float]) -> float:
    """Bulk-synchronous reduction helper: the slowest node sets the pace."""
    values = list(values)
    return float(max(values)) if values else 0.0


def sum_over_nodes(values: Iterable[float]) -> float:
    """Aggregate helper for quantities that add up across nodes (e.g. traffic)."""
    return float(np.sum(list(values))) if values else 0.0
