"""MPI-like communication layer of the virtual cluster.

The solver code is written against this class the same way an MPI code is
written against a communicator: point-to-point sends/receives plus the
collective operations the PCG method needs (allreduce for dot products,
broadcast, gather, allgather).  Two things distinguish it from a real MPI:

* Data movement is simulated -- payloads are handed over by reference on the
  driver process -- but every operation charges the latency-bandwidth cost
  model and updates traffic counters, which is what the paper's analysis
  (Sec. 4.2) and experiments measure.
* The communicator is *fault aware* in the spirit of ULFM (Sec. 1.1.1): an
  operation that involves a failed node raises
  :class:`~repro.cluster.errors.CommunicationError` unless the caller
  explicitly asks for the surviving-subset semantics (``alive_only=True``),
  which models a shrunken/repaired communicator after failure notification.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import sanitizer as _sanitizer
from .cost_model import CostLedger, Phase
from .errors import CommunicationError, NodeFailedError
from .network import Topology
from .node import Node


class Communicator:
    """Simulated communicator over the nodes of a :class:`VirtualCluster`."""

    def __init__(self, nodes: Sequence[Node], topology: Topology,
                 ledger: CostLedger):
        if len(nodes) != topology.n_nodes:
            raise ValueError(
                f"{len(nodes)} nodes but topology has {topology.n_nodes}"
            )
        self._nodes = list(nodes)
        self._topology = topology
        self._ledger = ledger
        #: In-flight point-to-point messages: (dst, tag) -> list of (src, payload)
        self._mailboxes: Dict[Tuple[int, Any], List[Tuple[int, Any]]] = {}

    # -- basic queries ------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of ranks (alive or failed)."""
        return len(self._nodes)

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def ledger(self) -> CostLedger:
        return self._ledger

    def alive_ranks(self) -> List[int]:
        """Ranks whose nodes are currently alive (including replacements)."""
        return [n.rank for n in self._nodes if n.is_alive]

    def failed_ranks(self) -> List[int]:
        """Ranks whose nodes are currently failed."""
        return [n.rank for n in self._nodes if n.is_failed]

    def node(self, rank: int) -> Node:
        return self._nodes[rank]

    def _require_alive(self, ranks: Iterable[int], op: str) -> None:
        failed = [r for r in ranks if self._nodes[r].is_failed]
        if failed:
            raise CommunicationError(
                f"{op} involves failed node(s)", failed_ranks=failed
            )

    # -- cost helpers ---------------------------------------------------------
    def _charge_message(self, src: int, dst: int, n_elements: int,
                        phase: str) -> float:
        latency = self._topology.latency(src, dst)
        cost = self._ledger.model.message_time(latency, n_elements)
        self._ledger.add_time(phase, cost)
        self._ledger.add_traffic(phase, 1, n_elements)
        return cost

    # -- point-to-point -------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any, *, tag: Any = None,
             n_elements: Optional[int] = None, phase: str = Phase.HALO_COMM,
             charge: bool = True) -> None:
        """Send *payload* from rank *src* to rank *dst*.

        ``n_elements`` overrides the element count used for cost accounting
        (by default the payload's ``size``/length is used).  The payload is
        buffered until the matching :meth:`recv`.
        """
        self._require_alive([src, dst], "send")
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_send(self, src, dst, tag)
        if charge:
            if n_elements is None:
                n_elements = _payload_elements(payload)
            self._charge_message(src, dst, n_elements, phase)
        self._mailboxes.setdefault((dst, tag), []).append((src, payload))

    def recv(self, dst: int, src: Optional[int] = None, *, tag: Any = None) -> Any:
        """Receive a message addressed to *dst* (optionally from a given *src*)."""
        if self._nodes[dst].is_failed:
            raise NodeFailedError(dst, "cannot receive on a failed node")
        box = self._mailboxes.get((dst, tag), [])
        for idx, (sender, payload) in enumerate(box):
            if src is None or sender == src:
                box.pop(idx)
                if not box:
                    self._mailboxes.pop((dst, tag), None)
                return payload
        raise CommunicationError(
            f"no matching message for rank {dst} (src={src}, tag={tag!r})"
        )

    def pending_messages(self) -> int:
        """Number of sent-but-not-received messages (should be 0 between phases)."""
        return sum(len(v) for v in self._mailboxes.values())

    def drop_messages_to_failed(self) -> int:
        """Discard buffered messages addressed to failed ranks (ULFM semantics)."""
        dropped = 0
        for (dst, tag) in list(self._mailboxes.keys()):
            if self._nodes[dst].is_failed:
                dropped += len(self._mailboxes.pop((dst, tag)))
        return dropped

    # -- collectives ------------------------------------------------------------
    def allreduce_sum(self, contributions: Dict[int, Any], *,
                      alive_only: bool = False,
                      phase: str = Phase.ALLREDUCE_COMM) -> Any:
        """Sum the per-rank *contributions* and make the result globally known.

        Parameters
        ----------
        contributions:
            Mapping ``rank -> value`` (scalar or ndarray).  Every alive rank
            must contribute exactly once, and all contributions must carry
            the same element count.
        alive_only:
            If false (default), any failed rank among the contributors or in
            the communicator aborts the operation, mimicking a collective on a
            broken communicator.  If true, the collective runs on the shrunken
            set of alive ranks only (post-notification semantics).

        Notes
        -----
        Batched reductions -- ``k`` per-column dots of a multi-RHS block, or
        a ``k x k`` Gram matrix -- pass ndarray contributions: each tree hop
        still moves **one** message (the message count is independent of the
        payload width), only the per-hop volume scales with the element
        count, mirroring how the SpMV's ``halo_exchange_cost`` scales with
        ``n_rhs``.  This is the amortization
        :meth:`~repro.distributed.dmultivector.DistributedMultiVector.dots`
        and :class:`~repro.core.block_pcg.BlockPCG` build on.  The partial
        values are summed in ascending rank order regardless of payload
        shape, so each component of a batched reduction accumulates exactly
        like the corresponding scalar reduction.
        """
        participants = self.alive_ranks() if alive_only else list(range(self.size))
        if not alive_only:
            self._require_alive(participants, "allreduce")
        missing = [r for r in participants if r not in contributions
                   and self._nodes[r].is_alive]
        if missing:
            raise CommunicationError(
                f"allreduce is missing contributions from ranks {missing}"
            )
        values = [contributions[r] for r in participants if r in contributions]
        if not values:
            raise CommunicationError("allreduce with no participants")
        sizes = sorted({_payload_elements(v) for v in values})
        if len(sizes) > 1:
            raise CommunicationError(
                f"allreduce contributions have mismatched sizes {sizes}"
            )
        n_scalars = sizes[0]
        if _sanitizer._ACTIVE is not None:
            # After the size check: a size mismatch stays a CommunicationError
            # (the communicator's own contract); the sanitizer adds the
            # stricter same-shape check on top.
            _sanitizer._ACTIVE.on_collective(
                self, "allreduce_sum",
                {r: contributions[r] for r in participants
                 if r in contributions})
        # Summed in rank order with a plain Python loop (not np.sum over a
        # stacked array): the accumulation order is part of the numeric
        # contract that batched reductions match their scalar counterparts
        # component by component.
        total = values[0]
        for v in values[1:]:
            total = total + v
        n_participants = len(values)
        self._ledger.add_time(
            phase, self._ledger.model.allreduce_time(n_participants, n_scalars)
        )
        levels = math.ceil(math.log2(n_participants)) if n_participants > 1 else 0
        self._ledger.add_traffic(phase, 2 * levels * n_participants,
                                 2 * levels * n_participants * n_scalars)
        return total

    def bcast(self, root: int, payload: Any, *, alive_only: bool = False,
              phase: str = Phase.ALLREDUCE_COMM) -> Dict[int, Any]:
        """Broadcast *payload* from *root*; returns ``rank -> payload`` map."""
        participants = self.alive_ranks() if alive_only else list(range(self.size))
        if not alive_only:
            self._require_alive(participants, "bcast")
        if self._nodes[root].is_failed:
            raise CommunicationError("broadcast root has failed",
                                     failed_ranks=[root])
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_collective(self, "bcast")
        n_elements = _payload_elements(payload)
        n_participants = len(participants)
        levels = math.ceil(math.log2(n_participants)) if n_participants > 1 else 0
        per_level = self._ledger.model.allreduce_term_latency + \
            n_elements * self._ledger.model.element_transfer_time
        self._ledger.add_time(phase, levels * per_level)
        self._ledger.add_traffic(phase, max(n_participants - 1, 0),
                                 max(n_participants - 1, 0) * n_elements)
        return {rank: payload for rank in participants if self._nodes[rank].is_alive}

    def gather(self, root: int, contributions: Dict[int, Any], *,
               alive_only: bool = False,
               phase: str = Phase.RECOVERY_COMM) -> Dict[int, Any]:
        """Gather per-rank payloads at *root*; returns the collected mapping."""
        participants = self.alive_ranks() if alive_only else list(range(self.size))
        if not alive_only:
            self._require_alive(participants, "gather")
        if self._nodes[root].is_failed:
            raise CommunicationError("gather root has failed", failed_ranks=[root])
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_collective(self, "gather")
        collected: Dict[int, Any] = {}
        for rank in participants:
            if rank not in contributions:
                continue
            payload = contributions[rank]
            if rank != root:
                self._charge_message(rank, root, _payload_elements(payload), phase)
            collected[rank] = payload
        return collected

    def allgather(self, contributions: Dict[int, Any], *,
                  alive_only: bool = False,
                  phase: str = Phase.RECOVERY_COMM) -> Dict[int, Any]:
        """All-to-all gather: every alive rank ends up with every contribution.

        Cost model: ring/bruck-style allgather, ``(p-1)`` rounds each moving
        the average payload size.
        """
        participants = self.alive_ranks() if alive_only else list(range(self.size))
        if not alive_only:
            self._require_alive(participants, "allgather")
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_collective(self, "allgather")
        present = [r for r in participants if r in contributions]
        if not present:
            return {}
        sizes = [_payload_elements(contributions[r]) for r in present]
        total_elements = int(np.sum(sizes))
        p = len(present)
        if p > 1:
            max_latency = max(
                self._topology.latency(a, b)
                for a in present for b in present if a != b
            )
            cost = (p - 1) * max_latency + \
                total_elements * self._ledger.model.element_transfer_time
            self._ledger.add_time(phase, cost)
            self._ledger.add_traffic(phase, p * (p - 1), (p - 1) * total_elements)
        return {r: contributions[r] for r in present}

    def barrier(self, *, alive_only: bool = False,
                phase: str = Phase.ALLREDUCE_COMM) -> None:
        """Synchronise all (alive) ranks; charged like a zero-payload allreduce."""
        participants = self.alive_ranks() if alive_only else list(range(self.size))
        if not alive_only:
            self._require_alive(participants, "barrier")
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_collective(self, "barrier")
        self._ledger.add_time(
            phase, self._ledger.model.allreduce_time(len(participants), 0)
        )


def _payload_elements(payload: Any) -> int:
    """Best-effort element count of a message payload for cost accounting."""
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    if isinstance(payload, (int, float, complex, np.generic)):
        return 1
    if isinstance(payload, (list, tuple)):
        return sum(_payload_elements(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_payload_elements(p) for p in payload.values())
    size = getattr(payload, "size", None)
    if size is not None:
        return int(size)
    return 1
