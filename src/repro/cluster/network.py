"""Interconnection-network topologies and their latency structure.

The experiments in the paper ran on VSC3, whose interconnect is a fat tree
(Sec. 7.1).  For the cost model the only property of the topology that
matters is the per-message latency ``lambda_ik`` between a sending node ``i``
and a receiving node ``k`` (Sec. 4.2 allows these to differ per pair).  This
module provides a small hierarchy of topologies that produce such latency
matrices; the rest of the library only consumes :meth:`Topology.latency`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..utils.validation import check_positive


class Topology:
    """Abstract interconnect topology: provides pairwise message latencies."""

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)

    def latency(self, src: int, dst: int) -> float:
        """Per-message latency (seconds) from node *src* to node *dst*."""
        raise NotImplementedError

    def latency_matrix(self) -> np.ndarray:
        """Dense ``(N, N)`` matrix of pairwise latencies (zero diagonal)."""
        mat = np.zeros((self.n_nodes, self.n_nodes))
        for i in range(self.n_nodes):
            for k in range(self.n_nodes):
                if i != k:
                    mat[i, k] = self.latency(i, k)
        return mat

    def max_latency(self) -> float:
        """``lambda_max`` of Sec. 4.2: the largest pairwise latency."""
        if self.n_nodes == 1:
            return 0.0
        return float(self.latency_matrix().max())

    def _check_ranks(self, src: int, dst: int) -> None:
        for r in (src, dst):
            if not 0 <= r < self.n_nodes:
                raise ValueError(
                    f"rank {r} out of range for a {self.n_nodes}-node topology"
                )


class UniformTopology(Topology):
    """All node pairs communicate with the same latency.

    This is the simplest model and is sufficient for most unit tests; it is
    also the model under which the Sec. 4.2 bounds become tight.
    """

    def __init__(self, n_nodes: int, latency: float = 2.0e-6):
        super().__init__(n_nodes)
        self._latency = check_positive(latency, "latency")

    def latency(self, src: int, dst: int) -> float:
        self._check_ranks(src, dst)
        return 0.0 if src == dst else self._latency


class FatTreeTopology(Topology):
    """Two-level fat tree: cheap within a switch, more expensive across.

    Nodes are grouped into leaf switches of ``nodes_per_switch`` consecutive
    ranks.  Messages within a switch cost ``latency_intra``; messages that
    have to traverse the spine cost ``latency_inter``.  This captures the
    latency structure that makes the Eqn. (5) backup placement (neighbouring
    ranks) attractive: neighbouring ranks usually share a switch.
    """

    def __init__(self, n_nodes: int, nodes_per_switch: int = 16,
                 latency_intra: float = 1.5e-6, latency_inter: float = 3.5e-6):
        super().__init__(n_nodes)
        if nodes_per_switch < 1:
            raise ValueError(
                f"nodes_per_switch must be >= 1, got {nodes_per_switch}"
            )
        self.nodes_per_switch = int(nodes_per_switch)
        self.latency_intra = check_positive(latency_intra, "latency_intra")
        self.latency_inter = check_positive(latency_inter, "latency_inter")
        if latency_inter < latency_intra:
            raise ValueError(
                "latency_inter must be >= latency_intra "
                f"({latency_inter} < {latency_intra})"
            )

    def switch_of(self, rank: int) -> int:
        """Index of the leaf switch that node *rank* hangs off."""
        if not 0 <= rank < self.n_nodes:
            raise ValueError(
                f"rank {rank} out of range for a {self.n_nodes}-node topology"
            )
        return rank // self.nodes_per_switch

    def latency(self, src: int, dst: int) -> float:
        self._check_ranks(src, dst)
        if src == dst:
            return 0.0
        if self.switch_of(src) == self.switch_of(dst):
            return self.latency_intra
        return self.latency_inter


class TorusTopology(Topology):
    """1-D torus (ring) with hop-proportional latency.

    Included as an alternative interconnect for the placement ablation: on a
    torus, latency grows with rank distance, which penalises backup-placement
    strategies that scatter copies far from the owner.
    """

    def __init__(self, n_nodes: int, per_hop_latency: float = 0.8e-6,
                 base_latency: float = 1.0e-6):
        super().__init__(n_nodes)
        self.per_hop_latency = check_positive(per_hop_latency, "per_hop_latency")
        self.base_latency = check_positive(base_latency, "base_latency")

    def hops(self, src: int, dst: int) -> int:
        """Ring distance between two ranks."""
        self._check_ranks(src, dst)
        d = abs(src - dst)
        return min(d, self.n_nodes - d)

    def latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return self.base_latency + self.hops(src, dst) * self.per_hop_latency


def default_topology(n_nodes: int, model_latency_intra: Optional[float] = None,
                     model_latency_inter: Optional[float] = None) -> Topology:
    """Build the default (fat-tree) topology used by the experiment harness."""
    kwargs = {}
    if model_latency_intra is not None:
        kwargs["latency_intra"] = model_latency_intra
    if model_latency_inter is not None:
        kwargs["latency_inter"] = model_latency_inter
    nodes_per_switch = max(2, n_nodes // 8) if n_nodes >= 16 else max(2, n_nodes // 2)
    return FatTreeTopology(n_nodes, nodes_per_switch=nodes_per_switch, **kwargs)
