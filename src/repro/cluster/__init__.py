"""Virtual distributed-memory cluster substrate.

This package simulates the parallel computer of Sec. 1.1 of the paper: ``N``
compute nodes with private memories, an interconnection network with a
latency-bandwidth cost model, MPI-like communication, fail-stop node failures
with ULFM-like detection/replacement, and reliable external storage for the
static problem data.
"""

from .cluster import VirtualCluster, make_cluster
from .communicator import Communicator
from .cost_model import CostLedger, MachineModel, Phase, max_over_nodes
from .errors import (
    ClusterError,
    CommunicationError,
    NodeFailedError,
    UnrecoverableStateError,
)
from .failure import FailureEvent, FailureInjector, RecoveryRecord, UlfmRuntime
from .network import (
    FatTreeTopology,
    Topology,
    TorusTopology,
    UniformTopology,
    default_topology,
)
from .node import Node, NodeMemory, NodeStatus
from .reliable_storage import ReliableStorage

__all__ = [
    "VirtualCluster",
    "make_cluster",
    "Communicator",
    "CostLedger",
    "MachineModel",
    "Phase",
    "max_over_nodes",
    "ClusterError",
    "CommunicationError",
    "NodeFailedError",
    "UnrecoverableStateError",
    "FailureEvent",
    "FailureInjector",
    "RecoveryRecord",
    "UlfmRuntime",
    "FatTreeTopology",
    "Topology",
    "TorusTopology",
    "UniformTopology",
    "default_topology",
    "Node",
    "NodeMemory",
    "NodeStatus",
    "ReliableStorage",
]
