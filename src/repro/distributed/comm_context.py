"""SpMV communication contexts (generalized scatter plans).

The PCG solver's only structured communication is the halo exchange of the
sparse matrix-vector product ``u = A p`` (Eqn. (1) of the paper): node ``k``
needs, from every other node ``i``, exactly those elements of ``p_{I_i}``
whose global indices appear as column indices in ``k``'s row block of ``A``.
PETSc calls the resulting plan a *generalized scatter*; the paper's notation
(Sec. 3) is

* ``S_i``   -- all elements of ``p_{I_i}`` (the block owned by node ``i``),
* ``S_ik``  -- the elements of ``p_{I_i}`` sent from ``i`` to ``k``,
* ``R_i``   -- the union of all ``S_ik`` (everything ``i`` sends to anybody),
* ``R^c_i`` -- ``S_i \\ R_i`` (elements that are sent to *no* other node), and
* ``m_i(s)``-- the multiplicity of element ``s``: to how many distinct nodes
  it is sent during the SpMV (Eqn. (3)).

:class:`CommunicationContext` computes all of these once from the matrix
sparsity pattern; the ESR redundancy scheme (:mod:`repro.core.redundancy`)
and the overhead analysis (:mod:`repro.analysis.overhead`) are built on top.
The *reverse* of the context (who holds copies of which remote elements after
the exchange) is what reconstruction uses to re-gather lost search-direction
blocks, exactly as the paper's implementation reverses the PETSc scatter
(Sec. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from .dmatrix import DistributedMatrix
from .partition import BlockRowPartition


@dataclass(frozen=True)
class ScatterEdge:
    """One sender->receiver edge of the scatter plan."""

    src: int
    dst: int
    #: Global indices (owned by ``src``) whose values are shipped to ``dst``.
    indices: np.ndarray

    @property
    def count(self) -> int:
        return int(self.indices.size)


class CommunicationContext:
    """The generalized-scatter plan of a distributed SpMV."""

    def __init__(self, partition: BlockRowPartition,
                 edges: Dict[Tuple[int, int], np.ndarray]):
        self.partition = partition
        # Normalise: sorted unique int64 indices per (src, dst) edge, drop empties.
        self._edges: Dict[Tuple[int, int], np.ndarray] = {}
        for (src, dst), idx in edges.items():
            if src == dst:
                continue
            arr = np.unique(np.asarray(idx, dtype=np.int64))
            if arr.size:
                self._edges[(int(src), int(dst))] = arr
        self._multiplicity_cache: Dict[int, np.ndarray] = {}

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_matrix(cls, matrix: DistributedMatrix) -> "CommunicationContext":
        """Derive the scatter plan from the sparsity pattern of *matrix*.

        For every receiving node ``k``, the needed global column indices are
        grouped by their owner ``i``; the group owned by ``i != k`` is
        ``S_ik``.
        """
        partition = matrix.partition
        edges: Dict[Tuple[int, int], np.ndarray] = {}
        for dst in range(partition.n_parts):
            needed = matrix.needed_column_indices(dst)
            if needed.size == 0:
                continue
            owners = partition.owner_of(needed)
            for src in np.unique(owners):
                src = int(src)
                if src == dst:
                    continue
                edges[(src, dst)] = needed[owners == src]
        return cls(partition, edges)

    # -- basic queries -------------------------------------------------------------
    def send_indices(self, src: int, dst: int) -> np.ndarray:
        """``S_ik``: global indices sent from *src* to *dst* (possibly empty)."""
        return self._edges.get((src, dst), np.empty(0, dtype=np.int64))

    def send_count(self, src: int, dst: int) -> int:
        """``|S_ik|``."""
        return int(self.send_indices(src, dst).size)

    def receivers_of(self, src: int) -> List[int]:
        """Nodes that receive at least one element from *src* during SpMV."""
        return sorted(dst for (s, dst) in self._edges if s == src)

    def senders_to(self, dst: int) -> List[int]:
        """Nodes that send at least one element to *dst* during SpMV."""
        return sorted(src for (src, d) in self._edges if d == dst)

    def edges(self) -> List[ScatterEdge]:
        """All non-empty edges of the plan."""
        return [
            ScatterEdge(src, dst, idx)
            for (src, dst), idx in sorted(self._edges.items())
        ]

    def edge_count_matrix(self) -> np.ndarray:
        """Dense ``(N, N)`` matrix of ``|S_ik|`` (zero diagonal)."""
        n = self.partition.n_parts
        mat = np.zeros((n, n), dtype=np.int64)
        for (src, dst), idx in self._edges.items():
            mat[src, dst] = idx.size
        return mat

    # -- paper quantities --------------------------------------------------------------
    def multiplicity(self, src: int) -> np.ndarray:
        """``m_i(s)`` for every element of ``S_i`` (as a local-index array).

        Entry ``j`` of the returned array is the number of distinct nodes the
        ``j``-th locally-owned element of *src* is sent to during SpMV.
        """
        if src not in self._multiplicity_cache:
            size = self.partition.size_of(src)
            counts = np.zeros(size, dtype=np.int64)
            start, _ = self.partition.range_of(src)
            for (s, _dst), idx in self._edges.items():
                if s == src:
                    counts[idx - start] += 1
            self._multiplicity_cache[src] = counts
        return self._multiplicity_cache[src]

    def sent_anywhere_mask(self, src: int) -> np.ndarray:
        """Boolean mask over ``S_i``: true where ``m_i(s) >= 1`` (``R_i``)."""
        return self.multiplicity(src) > 0

    def unsent_indices(self, src: int) -> np.ndarray:
        """``R^c_i``: global indices of *src* that no other node receives."""
        start, _ = self.partition.range_of(src)
        local = np.nonzero(self.multiplicity(src) == 0)[0]
        return local + start

    def natural_copy_count(self, src: int, min_copies: int) -> int:
        """Number of elements of ``S_i`` with ``m_i(s) >= min_copies``.

        Sec. 5: if this equals ``|S_i|`` for ``min_copies = phi`` on every
        node, the redundancy scheme needs no extra communication at all.
        """
        return int(np.count_nonzero(self.multiplicity(src) >= min_copies))

    # -- send-pool layout (shared by the SpMV engine and the ESR staging) -----------------
    def send_pool_layout(self) -> Tuple[List[np.ndarray], np.ndarray]:
        """Canonical staging layout of one halo exchange.

        Returns ``(sent, offsets)``: per rank ``i``, ``sent[i]`` is the
        sorted unique set of *global* indices ``R_i`` that ``i`` sends to at
        least one other node, and ``offsets`` is the ``(N + 1,)`` prefix-sum
        placing each rank's staged values inside one shared send pool.

        This is the single source of truth for the pool layout: the SpMV
        engine stages ghost values through it and the fused ESR staging
        reuses the engine's staged pool by position, so both sides must
        derive positions from this exact ordering.
        """
        sent: List[np.ndarray] = []
        offsets = np.zeros(self.partition.n_parts + 1, dtype=np.int64)
        for rank in range(self.partition.n_parts):
            sends = [self.send_indices(rank, dst)
                     for dst in self.receivers_of(rank)]
            values = (np.unique(np.concatenate(sends)) if sends
                      else np.empty(0, dtype=np.int64))
            sent.append(values)
            offsets[rank + 1] = offsets[rank] + values.size
        return sent, offsets

    # -- reverse plan (who holds what after the exchange) ---------------------------------
    def holders_of_block(self, owner: int, exclude: Iterable[int] = ()
                         ) -> Dict[int, np.ndarray]:
        """Map ``receiver -> global indices of *owner*'s block it received``.

        This is the reverse scatter used in reconstruction: after a failure of
        *owner*, surviving receivers can return the copies they naturally hold
        (the designated ESR backups additionally hold the ``R^c_ik`` extras,
        tracked by the ESR protocol itself).
        """
        excluded = set(int(e) for e in exclude)
        return {
            dst: idx
            for (src, dst), idx in self._edges.items()
            if src == owner and dst not in excluded
        }

    # -- summaries used by the cost/overhead analysis ----------------------------------------
    def total_exchanged_elements(self) -> int:
        """Total number of vector elements moved per SpMV."""
        return int(sum(idx.size for idx in self._edges.values()))

    def total_messages(self) -> int:
        """Number of point-to-point messages per SpMV."""
        return len(self._edges)

    def incoming_counts(self, dst: int) -> Dict[int, int]:
        """Per-sender element counts arriving at *dst*."""
        return {
            src: int(idx.size)
            for (src, d), idx in self._edges.items()
            if d == dst
        }

    def describe(self) -> str:
        """Short human-readable summary of the plan."""
        counts = [idx.size for idx in self._edges.values()]
        if not counts:
            return "CommunicationContext(no off-node dependencies)"
        return (
            f"CommunicationContext(messages={len(counts)}, "
            f"elements={int(np.sum(counts))}, "
            f"max_message={int(np.max(counts))})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()
