"""Shared node-local block bookkeeping of distributed vector containers.

Both :class:`~repro.distributed.dvector.DistributedVector` and
:class:`~repro.distributed.dmultivector.DistributedMultiVector` follow the
same storage contract: one NumPy block per node, stored under a private key
inside that node's :class:`~repro.cluster.node.NodeMemory`, with the block of
rank ``i`` covering the partition rows ``I_i``.  The availability queries and
the driver-side (de)assembly helpers depend only on that contract, so they
live here once instead of being copy-pasted between the two classes.

Subclasses must provide ``cluster``, ``partition``, ``_key()`` and
``get_block(rank)``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple

import numpy as np

from .. import sanitizer as _sanitizer
from ..cluster.errors import NodeFailedError
from .partition import BlockRowPartition


def participating_max_block_size(partition: BlockRowPartition,
                                 ranks: Iterable[int]) -> int:
    """Largest block size among *ranks* (0 when the collection is empty).

    Bulk-synchronous local compute on a shrunken communicator is paced by
    the slowest rank that actually participates -- dead ranks contribute no
    work, so ``partition.max_block_size()`` would over-charge whenever the
    largest rank is among the failed ones.
    """
    return max((partition.size_of(r) for r in ranks), default=0)


class NodeBlockStore:
    """Mixin with the shared per-node block bookkeeping.

    Expected host-class contract:

    * ``self.cluster`` -- the :class:`~repro.cluster.cluster.VirtualCluster`;
    * ``self.partition`` -- the
      :class:`~repro.distributed.partition.BlockRowPartition`;
    * ``self._key()`` -- the node-memory key the blocks are stored under;
    * ``self.get_block(rank)`` -- the block of *rank* (raising
      :class:`~repro.cluster.errors.NodeFailedError` on failed nodes);
    * ``self.set_block(rank, values)`` -- overwrite the block of *rank*
      (shape-validated by the host class).
    """

    def restore_block(self, rank: int, values: np.ndarray) -> None:
        """Write a recovered block onto (replacement) node *rank*.

        The recovery-path counterpart of ``set_block``, used by the ESR
        reconstruction to re-install reconstructed state -- single-vector
        blocks and ``(n_i, k)`` multi-vector blocks alike -- on the
        replacement nodes the ULFM runtime provided.  The values are
        defensively copied so the reconstruction's driver-side work buffers
        can never alias node-local memory (a later in-place block update
        must not silently rewrite the driver's recovery records, and vice
        versa).  Writing to a failed node raises ``NodeFailedError`` exactly
        like ``set_block``.
        """
        self.set_block(rank, np.array(values, dtype=np.float64, copy=True))
        if _sanitizer._ACTIVE is not None:
            _sanitizer._ACTIVE.on_block_restored(rank, self._key())

    def has_block(self, rank: int) -> bool:
        """True if *rank* is alive and holds a block of this container."""
        node = self.cluster.node(rank)
        if not node.is_alive:
            return False
        return self._key() in node.memory

    def available_ranks(self) -> List[int]:
        """Ranks whose block is currently readable."""
        return [r for r in range(self.partition.n_parts) if self.has_block(r)]

    def lost_ranks(self) -> List[int]:
        """Ranks whose block is unavailable (failed node or never written)."""
        return [r for r in range(self.partition.n_parts) if not self.has_block(r)]

    def delete(self) -> None:
        """Remove this container's blocks from all alive nodes."""
        key = self._key()
        for rank in range(self.partition.n_parts):
            node = self.cluster.node(rank)
            if node.is_alive and key in node.memory:
                del node.memory[key]

    # -- driver-side assembly ------------------------------------------------
    def _assemble(self, extract: Callable[[np.ndarray], np.ndarray],
                  tail_shape: Tuple[int, ...], *, allow_missing: bool = False,
                  fill_value: float = np.nan) -> np.ndarray:
        """Assemble ``extract(block)`` of every rank into one global array.

        *extract* maps each rank's block to the rows it contributes (shape
        ``(n_i,) + tail_shape``); the identity assembles the full container,
        a column selector assembles just that column.  This is an
        orchestration/verification helper (it is *not* charged to the cost
        model); the solvers themselves only use block access and explicit
        communication.  With ``allow_missing=True`` the rows of failed nodes
        are replaced by ``fill_value`` instead of raising.
        """
        out = np.full((self.partition.n,) + tail_shape, fill_value,
                      dtype=np.float64)
        for rank in range(self.partition.n_parts):
            start, stop = self.partition.range_of(rank)
            try:
                out[start:stop] = extract(self.get_block(rank))
            except (NodeFailedError, KeyError):
                if not allow_missing:
                    raise
        return out
