"""Local-view SpMV execution engine (a PETSc-style ``MatMult``).

The dense-gather reference implementation of :func:`repro.distributed.spmv.
distributed_spmv` assembles a fresh global vector on every call and multiplies
each rank's full ``(n_i, n)`` row block against it, recomputing the static
halo-exchange charge from the scatter edges each time -- ``O(n + |edges|)``
bookkeeping per matvec on top of the unavoidable ``O(nnz)`` numeric work.
:class:`SpmvEngine` precomputes, once per ``(matrix, context)`` pair, a
*local view* of the product so the per-call work drops to
``O(nnz + ghosts)``:

**Ghost-column compression.**  For each rank ``k`` the engine takes the ghost
index set ``G_k`` (the sorted union of the scatter plan's ``S_ik`` over all
senders ``i``) and renumbers the columns of ``k``'s row block into the
compressed space ``[0, n_k + |G_k|)``: owned columns map to ``[0, n_k)`` by
their local offset, ghost columns map to ``n_k + position in G_k``.  Only the
CSR ``indices`` array is rewritten -- ``data`` and ``indptr`` are *shared*
with the stored block (so in-place edits of block values stay live, exactly
as on the reference path) and the stored entry order is preserved, so the
compressed matvec performs the *identical* sequence of floating-point
operations as the dense-gather reference and the results are bit-for-bit
equal.

**Send-pool staging.**  Ghost buffers are filled in two vectorized steps
instead of one Python-level operation per scatter edge (of which there can be
``O(N^2)``): first every rank stages the entries it sends to *anybody*
(``R_i``, one fancy-index per rank) into a shared send pool; then each
receiver gathers its ghost values from the pool through a precomputed
position map (one fancy-index per rank).  This mirrors what the pack/unpack
loops of a real halo exchange do, driven by exactly the ``send_indices`` sets
of the :class:`~repro.distributed.comm_context.CommunicationContext`.

**Split-phase execution (comm/compute overlap).**  At build time each rank's
compressed block is additionally partitioned into a *diagonal* part (owned
columns, ``(n_k, n_k)``) and an *off-diagonal* part (ghost columns,
``(n_k, |G_k|)``).  :meth:`apply_split` models the classical non-blocking
halo exchange: post the sends, compute ``A_diag @ x_own`` while the ghosts
are "in flight", then accumulate ``A_offdiag @ x_ghost`` once they "arrive".
The matching overlap-aware charge (see :meth:`overlap_charge`) is the
per-rank max reduction ``max_i(max(halo_i, diag_i) + offdiag_i)`` of
:meth:`~repro.cluster.cost_model.MachineModel.split_spmv_time` -- never more
than the serialized ``halo + compute`` charge.  Because the two-kernel
execution accumulates each row's diagonal terms before its off-diagonal
terms (exactly as PETSc's overlapped ``MatMult`` does), its results may
differ from the fused kernel in the last floating-point bits; the fused
:meth:`apply` path (``overlap=False``, the default everywhere) remains
bit-identical to the dense-gather reference.  The split matrices copy the
block's ``data`` array, so -- unlike the fused path -- silent in-place edits
of stored block values are only picked up after a ``set_block``-style write
bumps the structure version and the engine is rebuilt.

**Batched multi-RHS kernels.**  :meth:`apply_block` computes ``Y = A X`` for
``(n_i, k)`` blocks of a
:class:`~repro.distributed.dmultivector.DistributedMultiVector` with *one*
ghost gather amortized over all ``k`` columns: the send pool is staged as a
``(pool, k)`` matrix with one 2-D fancy-index per rank, and each rank's
product is a single CSR x dense-block kernel.  Per-column results are
bit-identical to ``k`` single-vector :meth:`apply` calls (the CSR kernel
accumulates each column in the same entry order).

**Charge caching.**  The bulk-synchronous halo and compute charges depend
only on static data (scatter counts, topology latencies, per-rank nnz), so
the engine computes them once with the same helper functions the reference
path calls per matvec.  The charged values -- and, with cost jitter enabled,
the RNG draw sequence -- are identical to the reference path's.  Multi-RHS
and overlap charges are cached per column count ``k``.

**Cache invalidation contract.**  Engines are cached on
:class:`~repro.distributed.dmatrix.DistributedMatrix` keyed by the context
object (see :meth:`DistributedMatrix.spmv_engine`).  Every row-block write
(``_set_row_block``, and therefore ``restore_block_to_node`` on the recovery
path) bumps the matrix's ``structure_version``; a cached engine whose
``version`` is stale is discarded and rebuilt from the current blocks on the
next use, so recovery that re-installs matrix blocks on replacement nodes
stays correct without any explicit notification.

Failure semantics are preserved: every execution path touches every rank's
matrix block and input-vector block through the node memories, so an SpMV
involving a failed owner still raises
:class:`~repro.cluster.errors.NodeFailedError` exactly like the reference
path.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

try:  # Fast path: accumulate the CSR matvec directly into the output block.
    from scipy.sparse import _sparsetools as _scipy_sparsetools

    _csr_matvec = _scipy_sparsetools.csr_matvec
    _csr_matvecs = _scipy_sparsetools.csr_matvecs
except (ImportError, AttributeError):  # pragma: no cover - old/odd SciPy
    _csr_matvec = None
    _csr_matvecs = None

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .comm_context import CommunicationContext
    from .dmatrix import DistributedMatrix
    from .dmultivector import DistributedMultiVector
    from .dvector import DistributedVector


class ContextMismatchError(ValueError):
    """The scatter plan does not cover the matrix's off-diagonal columns.

    Raised while building an engine when the supplied
    :class:`CommunicationContext` was derived from a different sparsity
    pattern (e.g. a stale plan, or a plan for another matrix on the same
    partition).  The caller is expected to fall back to the dense-gather
    reference path, whose numerics never depend on the context.
    """


@dataclass(frozen=True)
class OverlapCharge:
    """Overlap-aware cost of one split-phase SpMV (or multi-RHS SpMV).

    ``total_time`` is the bulk-synchronous wall time
    ``max_i(max(halo_i, diag_i) + offdiag_i)``; ``compute_time`` its pure
    compute part ``max_i(diag_i + offdiag_i)``; ``exposed_comm_time`` the
    halo remainder that diagonal compute could not hide; and
    ``hidden_halo_fraction`` the fraction of the *serialized* halo charge
    hidden by the overlap (``0`` when there is no halo traffic at all).
    """

    total_time: float
    compute_time: float
    exposed_comm_time: float
    serialized_time: float
    hidden_halo_fraction: float
    n_messages: int
    n_elements: int


@dataclass
class _RankPlan:
    """Precomputed local view of one rank's row block."""

    #: Number of locally owned rows/columns (``n_k``).
    n_local: int
    #: ``(n_k, n_k + |G_k|)`` CSR block with compressed column indices.  The
    #: stored entry order equals the original row block's, which keeps the
    #: matvec bit-identical to the dense-gather reference.
    local: sp.csr_matrix
    #: Sorted global ghost indices ``G_k`` (diagnostics / tests).
    ghost_indices: np.ndarray
    #: Position of each ghost value inside the staged send pool.
    ghost_pool_pos: np.ndarray
    #: Preallocated compressed input buffer ``[x_own | x_ghost]``.
    xbuf: np.ndarray
    #: Non-zeros in owned columns (the diagonal block ``A_{I_k, I_k}``).
    diag_nnz: int = 0
    #: Non-zeros in ghost columns (``nnz - diag_nnz``).
    offdiag_nnz: int = 0
    #: ``(n_k, n_k)`` diagonal part, built lazily on first split-phase use.
    diag: Optional[sp.csr_matrix] = field(default=None, repr=False)
    #: ``(n_k, |G_k|)`` off-diagonal part (ghost-column space), lazy.
    offdiag: Optional[sp.csr_matrix] = field(default=None, repr=False)


class SpmvEngine:
    """Executes ``out = A x`` (and ``Y = A X``) through precomputed local views.

    Parameters
    ----------
    matrix:
        The block-row distributed matrix.  All row blocks must currently be
        readable (building from a failed node raises ``NodeFailedError``).
    context:
        The SpMV scatter plan.  Its edges must cover every off-diagonal
        column of every row block; otherwise :class:`ContextMismatchError`
        is raised.
    """

    def __init__(self, matrix: "DistributedMatrix",
                 context: "CommunicationContext"):
        partition = matrix.partition
        if not partition.is_compatible_with(context.partition):
            raise ContextMismatchError(
                "communication context and matrix have incompatible partitions"
            )
        self.matrix = matrix
        self.context = context
        self.partition = partition
        #: Matrix structure version this engine was built against; compared
        #: by :meth:`DistributedMatrix.spmv_engine` to invalidate the cache.
        self.version = matrix.structure_version

        n_parts = partition.n_parts
        # -- send-pool layout: per rank, the locally-owned entries it sends
        #    to at least one other node (the paper's R_i), in sorted order.
        #    The layout comes from the context's canonical helper so the
        #    fused ESR staging (which reuses the staged pool by position)
        #    derives positions from the exact same ordering.
        sent_global, pool_offsets = context.send_pool_layout()
        self._sent_local: List[np.ndarray] = []
        for rank in range(n_parts):
            start, stop = partition.range_of(rank)
            sent = sent_global[rank]
            if sent.size and (sent[0] < start or sent[-1] >= stop):
                raise ContextMismatchError(
                    f"scatter plan sends indices not owned by rank {rank}; "
                    "cannot build a local view"
                )
            self._sent_local.append(sent - start)
        self._pool_offsets = pool_offsets
        self._pool = np.empty(int(pool_offsets[-1]))
        #: Weak reference to the vector the pool was last staged from (the
        #: fused ESR staging only reuses pool values for the exact vector of
        #: the SpMV that preceded it; see :meth:`pool_staged_from`).
        self._pool_source: Optional[weakref.ReferenceType] = None
        #: Per column count k: staged ``(pool, k)`` buffers for multi-RHS.
        self._block_pools: Dict[int, np.ndarray] = {}
        #: Weak reference to the multi-vector the block pool was last staged
        #: from, plus its column count (see :meth:`block_pool_staged_from`).
        self._block_pool_source: Optional[Tuple[weakref.ReferenceType, int]] = None
        #: Per dst: ``[(src, lo, hi, local_idx)]`` runs of the sorted ghost
        #: set grouped by owner (lazy; see :meth:`ghost_values_for`).
        self._ghost_runs: Dict[int, List[Tuple[int, int, int, np.ndarray]]] = {}

        # -- per-rank compressed local views
        self._plans: List[_RankPlan] = []
        column_map = np.full(partition.n, -1, dtype=np.int64)
        for rank in range(n_parts):
            self._plans.append(self._build_rank_plan(rank, column_map))
        self._nnz = [int(plan.local.nnz) for plan in self._plans]

        # -- cached static charges (identical values to the per-call
        #    recomputation of the reference path).
        from .spmv import halo_exchange_cost, spmv_compute_cost

        cluster = matrix.cluster
        self.halo_cost = halo_exchange_cost(
            context, cluster.topology, cluster.ledger.model
        )
        self.compute_cost = spmv_compute_cost(matrix, cluster.ledger.model)
        #: Per column count k > 1: cached (time, msgs, elements) halo charge.
        self._halo_cost_k: Dict[int, Tuple[float, int, int]] = {}
        #: Per column count k > 1: cached bulk-synchronous compute charge.
        self._compute_cost_k: Dict[int, float] = {}
        #: Per column count k: cached overlap-aware charge.
        self._overlap_charges: Dict[int, OverlapCharge] = {}

    # -- construction -------------------------------------------------------
    def _build_rank_plan(self, rank: int, column_map: np.ndarray) -> _RankPlan:
        partition = self.partition
        context = self.context
        start, stop = partition.range_of(rank)
        n_local = stop - start

        senders = context.senders_to(rank)
        ghost = (np.unique(np.concatenate(
            [context.send_indices(src, rank) for src in senders]
        )) if senders else np.empty(0, dtype=np.int64))
        if ghost.size and np.any((ghost >= start) & (ghost < stop)):
            raise ContextMismatchError(
                f"scatter plan ships rank {rank} elements it already owns; "
                "cannot build a local view"
            )

        block = self.matrix.row_block(rank)

        # Compress columns: owned -> [0, n_local), ghost g -> n_local + pos(g).
        # column_map is a scratch array shared across ranks; only the entries
        # written here are read back, and they are reset before returning.
        column_map[start:stop] = np.arange(n_local, dtype=np.int64)
        column_map[ghost] = n_local + np.arange(ghost.size, dtype=np.int64)
        compressed = column_map[block.indices]
        if compressed.size and compressed.min() < 0:
            column_map[start:stop] = -1
            column_map[ghost] = -1
            raise ContextMismatchError(
                f"scatter plan does not cover all off-diagonal columns of "
                f"rank {rank}'s row block; cannot build a local view"
            )
        column_map[start:stop] = -1
        column_map[ghost] = -1

        # Share data/indptr with the stored block (only the column indices
        # genuinely differ): in-place edits of block values stay live in the
        # engine -- matching the reference path -- and the cached engine
        # costs O(nnz) index memory instead of a full matrix copy.
        local = sp.csr_matrix(
            (block.data, compressed.astype(block.indices.dtype),
             block.indptr),
            shape=(n_local, n_local + ghost.size),
        )
        diag_nnz = int(np.count_nonzero(compressed < n_local))

        # Pool positions of the ghost values: ghost g owned by src sits at
        # pool_offsets[src] + (position of g within src's sent set).
        ghost_pool_pos = np.empty(ghost.size, dtype=np.int64)
        if ghost.size:
            owners = partition.owner_of(ghost)
            for src in np.unique(owners):
                src = int(src)
                mask = owners == src
                src_start, _ = partition.range_of(src)
                ghost_pool_pos[mask] = self._pool_offsets[src] + np.searchsorted(
                    self._sent_local[src], ghost[mask] - src_start
                )

        return _RankPlan(
            n_local=n_local,
            local=local,
            ghost_indices=ghost,
            ghost_pool_pos=ghost_pool_pos,
            xbuf=np.empty(n_local + ghost.size),
            diag_nnz=diag_nnz,
            offdiag_nnz=int(local.nnz) - diag_nnz,
        )

    def _ensure_split(self, rank: int) -> _RankPlan:
        """Build the diag/offdiag partition of *rank*'s block on first use.

        The split matrices preserve the stored entry order within each part
        (they are order-preserving subsets of the compressed block), so the
        two-kernel execution accumulates the same per-part sequences as the
        fused kernel -- only the diag/offdiag interleaving differs.
        """
        plan = self._plans[rank]
        if plan.diag is not None:
            return plan
        local = plan.local
        n_local = plan.n_local
        n_ghost = int(plan.ghost_indices.size)
        mask = local.indices < n_local
        running = np.concatenate(([0], np.cumsum(mask, dtype=np.int64)))
        diag_indptr = running[local.indptr]
        plan.diag = sp.csr_matrix(
            (local.data[mask], local.indices[mask], diag_indptr),
            shape=(n_local, n_local),
        )
        off_mask = ~mask
        running = np.concatenate(([0], np.cumsum(off_mask, dtype=np.int64)))
        off_indptr = running[local.indptr]
        plan.offdiag = sp.csr_matrix(
            (local.data[off_mask], local.indices[off_mask] - n_local,
             off_indptr),
            shape=(n_local, n_ghost),
        )
        return plan

    # -- queries ------------------------------------------------------------
    def ghost_indices(self, rank: int) -> np.ndarray:
        """Sorted global ghost (halo) indices of *rank* (``G_k``)."""
        return self._plans[rank].ghost_indices

    def local_block(self, rank: int) -> sp.csr_matrix:
        """The compressed ``(n_k, n_k + |G_k|)`` local view of *rank*."""
        return self._plans[rank].local

    def diag_block(self, rank: int) -> sp.csr_matrix:
        """The ``(n_k, n_k)`` diagonal part of *rank*'s compressed block."""
        return self._ensure_split(rank).diag

    def offdiag_block(self, rank: int) -> sp.csr_matrix:
        """The ``(n_k, |G_k|)`` off-diagonal (ghost-column) part of *rank*."""
        return self._ensure_split(rank).offdiag

    def diag_nnz(self, rank: int) -> int:
        """Non-zeros of *rank*'s rows in owned columns."""
        return self._plans[rank].diag_nnz

    def offdiag_nnz(self, rank: int) -> int:
        """Non-zeros of *rank*'s rows in ghost columns."""
        return self._plans[rank].offdiag_nnz

    # -- cost charges --------------------------------------------------------
    def halo_cost_for(self, n_rhs: int) -> Tuple[float, int, int]:
        """``(time, messages, elements)`` of one halo exchange of *n_rhs* columns.

        ``n_rhs == 1`` returns the cached single-vector charge (bit-identical
        to the reference path's per-call recomputation).  For batched
        multi-RHS exchanges every scatter edge ships ``|S_ik| * n_rhs``
        values in one message, so the message count is unchanged while the
        per-message volume scales with the column count.
        """
        if n_rhs == 1:
            return self.halo_cost
        if n_rhs not in self._halo_cost_k:
            from .spmv import halo_exchange_cost

            cluster = self.matrix.cluster
            self._halo_cost_k[n_rhs] = halo_exchange_cost(
                self.context, cluster.topology, cluster.ledger.model,
                n_rhs=n_rhs,
            )
        return self._halo_cost_k[n_rhs]

    def compute_cost_for(self, n_rhs: int) -> float:
        """Bulk-synchronous compute charge of ``Y = A X`` with *n_rhs* columns."""
        if n_rhs == 1:
            return self.compute_cost
        if n_rhs not in self._compute_cost_k:
            model = self.matrix.cluster.ledger.model
            self._compute_cost_k[n_rhs] = max(
                model.spmv_time(nnz * n_rhs) for nnz in self._nnz
            )
        return self._compute_cost_k[n_rhs]

    def _receiver_halo_times(self, n_rhs: int) -> np.ndarray:
        """Per-rank serialized halo time (sum of incoming-message costs)."""
        cluster = self.matrix.cluster
        model = cluster.ledger.model
        times = np.zeros(self.partition.n_parts)
        for edge in self.context.edges():
            times[edge.dst] += model.message_time(
                cluster.topology.latency(edge.src, edge.dst),
                edge.count * n_rhs,
            )
        return times

    def overlap_charge(self, n_rhs: int = 1) -> OverlapCharge:
        """The overlap-aware charge of one split-phase SpMV (cached per k).

        Per rank ``i`` the split-phase time is ``max(halo_i, diag_i) +
        offdiag_i`` (:meth:`MachineModel.split_spmv_time`); the
        bulk-synchronous charge is the max reduction over ranks.  The ledger
        books the pure compute part ``max_i(diag_i + offdiag_i)`` under
        ``compute.spmv`` and only the exposed remainder under ``comm.halo``
        (see :meth:`CostLedger.add_overlapped`).
        """
        if n_rhs not in self._overlap_charges:
            model = self.matrix.cluster.ledger.model
            halo = self._receiver_halo_times(n_rhs)
            total = 0.0
            compute = 0.0
            for rank, plan in enumerate(self._plans):
                diag_t = model.spmv_time(plan.diag_nnz * n_rhs)
                offdiag_t = model.spmv_time(plan.offdiag_nnz * n_rhs)
                total = max(total, max(float(halo[rank]), diag_t) + offdiag_t)
                compute = max(compute, diag_t + offdiag_t)
            halo_serial, n_msg, n_elem = self.halo_cost_for(n_rhs)
            exposed = total - compute
            serialized = halo_serial + self.compute_cost_for(n_rhs)
            hidden = ((halo_serial - exposed) / halo_serial
                      if halo_serial > 0.0 else 0.0)
            self._overlap_charges[n_rhs] = OverlapCharge(
                total_time=total,
                compute_time=compute,
                exposed_comm_time=exposed,
                serialized_time=serialized,
                hidden_halo_fraction=hidden,
                n_messages=n_msg,
                n_elements=n_elem,
            )
        return self._overlap_charges[n_rhs]

    # -- execution ----------------------------------------------------------
    def _stage_pool_into(self, x, pool: np.ndarray) -> np.ndarray:
        """Stage *x*'s sent entries into *pool* (one fancy-index per rank).

        Works for vectors (1-D pool) and multi-vectors (``(pool, k)``).
        Also reads every rank's matrix block through the node memories,
        enforcing failure semantics exactly as the reference path's per-call
        block reads do.
        """
        pool_offsets = self._pool_offsets
        for rank in range(self.partition.n_parts):
            self.matrix.row_block(rank)
            sent_local = self._sent_local[rank]
            if sent_local.size:
                pool[pool_offsets[rank]:pool_offsets[rank + 1]] = \
                    x.get_block(rank)[sent_local]
        return pool

    def _stage_pool(self, x: "DistributedVector") -> np.ndarray:
        """Stage the single-vector send pool and stamp its source."""
        self._pool_source = None
        self._stage_pool_into(x, self._pool)
        self._pool_source = weakref.ref(x)
        return self._pool

    @property
    def send_pool(self) -> np.ndarray:
        """The staged send pool (layout: ``context.send_pool_layout()``).

        Consumers (the fused ESR staging) must first confirm via
        :meth:`pool_staged_from` that the pool holds the vector they expect.
        """
        return self._pool

    def pool_staged_from(self, x: "DistributedVector") -> bool:
        """True if the send pool currently holds the staged values of *x*.

        Lets the fused ESR staging reuse the pool only when the SpMV that
        immediately preceded it staged this exact vector (a stale pool --
        e.g. after a reference-path SpMV -- would otherwise ship outdated
        copies).
        """
        return self._pool_source is not None and self._pool_source() is x

    def block_send_pool(self, n_rhs: int) -> Optional[np.ndarray]:
        """The staged ``(pool, k)`` multi-RHS send pool for *n_rhs* columns.

        ``None`` until a batched SpMV of that column count ran; consumers
        (the fused block ESR staging) must first confirm via
        :meth:`block_pool_staged_from` that it holds the block they expect.
        """
        return self._block_pools.get(int(n_rhs))

    def block_pool_staged_from(self, x: "DistributedMultiVector") -> bool:
        """True if the block send pool holds the staged values of block *x*.

        The batched counterpart of :meth:`pool_staged_from`: guards the
        block ESR staging's pool reuse against stale pools (e.g. one staged
        from a different multi-vector, or from an earlier iteration's
        operand object).
        """
        if self._block_pool_source is None:
            return False
        source, n_rhs = self._block_pool_source
        return source() is x and n_rhs == getattr(x, "n_cols", None)

    def apply(self, x: "DistributedVector", out: "DistributedVector"
              ) -> "DistributedVector":
        """Numeric ``out = A x`` (no cost charging; see ``distributed_spmv``).

        Reads every rank's matrix and input blocks through the node memories
        (enforcing failure semantics), stages the send pool, then computes
        each rank's product as one compressed local matvec, accumulating
        directly into ``out``'s existing block where possible.  ``out`` may
        alias ``x``: ghosts are read from the pool staged before any write,
        and each rank's owned part is copied into the input buffer before
        its output block is touched.
        """
        pool = self._stage_pool(x)

        for rank in range(self.partition.n_parts):
            plan = self._plans[rank]
            xbuf = plan.xbuf
            xbuf[:plan.n_local] = x.get_block(rank)
            if plan.ghost_pool_pos.size:
                xbuf[plan.n_local:] = pool[plan.ghost_pool_pos]
            try:
                target = out.get_block(rank)
            except KeyError:
                target = None
            if target is None:
                out.set_block(rank, self._matvec(plan.local, xbuf))
            else:
                self._matvec(plan.local, xbuf, out=target)
        return out

    def apply_split(self, x: "DistributedVector", out: "DistributedVector"
                    ) -> "DistributedVector":
        """Numeric ``out = A x`` through the split-phase (overlapped) kernels.

        Models a non-blocking halo exchange: the send pool is staged
        ("sends posted"), every rank computes its diagonal product
        ``A_diag @ x_own`` while the ghosts are in flight, then accumulates
        ``A_offdiag @ x_ghost``.  Per row, diagonal terms are summed before
        off-diagonal terms, so results may differ from the fused
        :meth:`apply` in the last bits (identical to how PETSc's overlapped
        ``MatMult`` rounds).  ``out`` may alias ``x``.
        """
        pool = self._stage_pool(x)

        # Phase 1: diagonal products "while ghosts are in flight".
        for rank in range(self.partition.n_parts):
            plan = self._ensure_split(rank)
            xbuf = plan.xbuf
            xbuf[:plan.n_local] = x.get_block(rank)
            try:
                target = out.get_block(rank)
            except KeyError:
                target = None
            if target is None:
                out.set_block(
                    rank, self._matvec(plan.diag, xbuf[:plan.n_local])
                )
            else:
                self._matvec(plan.diag, xbuf[:plan.n_local], out=target)

        # Phase 2: the ghosts "arrived" -- accumulate the off-diagonal part.
        for rank in range(self.partition.n_parts):
            plan = self._plans[rank]
            if not plan.ghost_pool_pos.size:
                continue
            gbuf = plan.xbuf[plan.n_local:]
            gbuf[:] = pool[plan.ghost_pool_pos]
            self._matvec(plan.offdiag, gbuf, out=out.get_block(rank),
                         accumulate=True)
        return out

    def apply_block(self, x: "DistributedMultiVector",
                    y: "DistributedMultiVector", *,
                    split: bool = False) -> "DistributedMultiVector":
        """Numeric ``Y = A X`` for ``(n_i, k)`` blocks (batched multi-RHS).

        One ghost gather is amortized over all ``k`` columns: the send pool
        is staged as a ``(pool, k)`` matrix (one 2-D fancy-index per rank)
        and each rank's product is a single CSR x dense-block kernel.  The
        per-column results are bit-identical to ``k`` single-vector
        :meth:`apply` calls (or, with ``split=True``, to ``k``
        :meth:`apply_split` calls).  ``y`` may alias ``x``.
        """
        n_rhs = x.n_cols
        pool = self._block_pools.get(n_rhs)
        if pool is None or pool.shape[0] != self._pool.size:
            pool = np.empty((self._pool.size, n_rhs))
            self._block_pools[n_rhs] = pool
        self._block_pool_source = None
        self._stage_pool_into(x, pool)
        self._block_pool_source = (weakref.ref(x), n_rhs)

        for rank in range(self.partition.n_parts):
            plan = (self._ensure_split(rank) if split else self._plans[rank])
            own = x.get_block(rank)
            if split:
                result = plan.diag @ own
                if plan.ghost_pool_pos.size:
                    self._matmat_accumulate(
                        plan.offdiag, pool[plan.ghost_pool_pos], result
                    )
            else:
                xbuf = np.empty((plan.n_local + plan.ghost_indices.size,
                                 n_rhs))
                xbuf[:plan.n_local] = own
                if plan.ghost_pool_pos.size:
                    xbuf[plan.n_local:] = pool[plan.ghost_pool_pos]
                result = plan.local @ xbuf
            y.set_block(rank, result)
        return y

    @staticmethod
    def _matvec(mat: sp.csr_matrix, xbuf: np.ndarray,
                out: Optional[np.ndarray] = None,
                accumulate: bool = False) -> np.ndarray:
        """CSR matvec into *out*; with ``accumulate`` adds instead of overwriting."""
        if _csr_matvec is None:  # pragma: no cover - SciPy without _sparsetools
            result = mat @ xbuf
            if out is None:
                return result
            if accumulate:
                out += result
            else:
                out[:] = result
            return out
        if out is None:
            out = np.zeros(mat.shape[0])
        elif not accumulate:
            out[:] = 0.0
        _csr_matvec(mat.shape[0], mat.shape[1], mat.indptr,
                    mat.indices, mat.data, xbuf, out)
        return out

    @staticmethod
    def _matmat_accumulate(mat: sp.csr_matrix, x: np.ndarray,
                           out: np.ndarray) -> np.ndarray:
        """``out += mat @ x`` accumulated in place (same rounding as the
        single-vector accumulate kernel, column by column)."""
        if _csr_matvecs is None:  # pragma: no cover - SciPy without _sparsetools
            out += mat @ x
            return out
        x = np.ascontiguousarray(x)
        _csr_matvecs(mat.shape[0], mat.shape[1], x.shape[1], mat.indptr,
                     mat.indices, mat.data, x, out)
        return out

    # -- ghost-value gathers -------------------------------------------------
    def _ghost_runs_of(self, dst: int) -> List[Tuple[int, int, int, np.ndarray]]:
        """Owner-contiguous runs of *dst*'s sorted ghost set (cached).

        Block-row ownership ranges are contiguous in global index space, so
        the sorted ghost set of *dst* groups by owner into contiguous runs;
        the run of owner ``src`` is exactly ``S_{src,dst}``.  Each entry is
        ``(src, lo, hi, local_idx)`` with ``local_idx`` the owner-local
        offsets of the run.
        """
        runs = self._ghost_runs.get(dst)
        if runs is None:
            plan = self._plans[dst]
            ghost = plan.ghost_indices
            runs = []
            if ghost.size:
                owners = self.partition.owner_of(ghost)
                boundaries = np.concatenate(
                    ([0], np.nonzero(np.diff(owners))[0] + 1, [ghost.size])
                )
                for lo, hi in zip(boundaries[:-1], boundaries[1:]):
                    src = int(owners[lo])
                    start, _ = self.partition.range_of(src)
                    runs.append((src, int(lo), int(hi), ghost[lo:hi] - start))
            self._ghost_runs[dst] = runs
        return runs

    def ghost_values_for(self, x: "DistributedVector", dst: int
                         ) -> Dict[int, np.ndarray]:
        """The ghost values *dst* receives during one halo exchange of *x*.

        Vectorized replacement for the per-edge gathers of
        :func:`repro.distributed.spmv.ghost_values_for`: the precomputed
        owner-contiguous runs of the compressed ghost set are filled into one
        buffer (one fancy-index per sender, no per-call index arithmetic) and
        returned as per-sender slices aligned with ``send_indices(src, dst)``.
        """
        runs = self._ghost_runs_of(dst)
        if not runs:
            return {}
        values = np.empty(self._plans[dst].ghost_indices.size)
        out: Dict[int, np.ndarray] = {}
        for src, lo, hi, local_idx in runs:
            values[lo:hi] = x.get_block(src)[local_idx]
            out[src] = values[lo:hi]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        ghosts = sum(p.ghost_indices.size for p in self._plans)
        return (
            f"SpmvEngine(matrix={self.matrix.name!r}, "
            f"N={self.partition.n_parts}, ghosts={ghosts}, "
            f"version={self.version})"
        )
