"""Local-view SpMV execution engine (a PETSc-style ``MatMult``).

The dense-gather reference implementation of :func:`repro.distributed.spmv.
distributed_spmv` assembles a fresh global vector on every call and multiplies
each rank's full ``(n_i, n)`` row block against it, recomputing the static
halo-exchange charge from the scatter edges each time -- ``O(n + |edges|)``
bookkeeping per matvec on top of the unavoidable ``O(nnz)`` numeric work.
:class:`SpmvEngine` precomputes, once per ``(matrix, context)`` pair, a
*local view* of the product so the per-call work drops to
``O(nnz + ghosts)``:

**Ghost-column compression.**  For each rank ``k`` the engine takes the ghost
index set ``G_k`` (the sorted union of the scatter plan's ``S_ik`` over all
senders ``i``) and renumbers the columns of ``k``'s row block into the
compressed space ``[0, n_k + |G_k|)``: owned columns map to ``[0, n_k)`` by
their local offset, ghost columns map to ``n_k + position in G_k``.  Only the
CSR ``indices`` array is rewritten -- ``data`` and ``indptr`` are *shared*
with the stored block (so in-place edits of block values stay live, exactly
as on the reference path) and the stored entry order is preserved, so the
compressed matvec performs the *identical* sequence of floating-point
operations as the dense-gather reference and the results are bit-for-bit
equal.

**Send-pool staging.**  Ghost buffers are filled in two vectorized steps
instead of one Python-level operation per scatter edge (of which there can be
``O(N^2)``): first every rank stages the entries it sends to *anybody*
(``R_i``, one fancy-index per rank) into a shared send pool; then each
receiver gathers its ghost values from the pool through a precomputed
position map (one fancy-index per rank).  This mirrors what the pack/unpack
loops of a real halo exchange do, driven by exactly the ``send_indices`` sets
of the :class:`~repro.distributed.comm_context.CommunicationContext`.

**Charge caching.**  The bulk-synchronous halo and compute charges depend
only on static data (scatter counts, topology latencies, per-rank nnz), so
the engine computes them once with the same helper functions the reference
path calls per matvec.  The charged values -- and, with cost jitter enabled,
the RNG draw sequence -- are identical to the reference path's.

**Cache invalidation contract.**  Engines are cached on
:class:`~repro.distributed.dmatrix.DistributedMatrix` keyed by the context
object (see :meth:`DistributedMatrix.spmv_engine`).  Every row-block write
(``_set_row_block``, and therefore ``restore_block_to_node`` on the recovery
path) bumps the matrix's ``structure_version``; a cached engine whose
``version`` is stale is discarded and rebuilt from the current blocks on the
next use, so recovery that re-installs matrix blocks on replacement nodes
stays correct without any explicit notification.

Failure semantics are preserved: ``apply`` touches every rank's matrix block
and input-vector block through the node memories, so an SpMV involving a
failed owner still raises :class:`~repro.cluster.errors.NodeFailedError`
exactly like the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np
import scipy.sparse as sp

try:  # Fast path: accumulate the CSR matvec directly into the output block.
    from scipy.sparse import _sparsetools as _scipy_sparsetools

    _csr_matvec = _scipy_sparsetools.csr_matvec
except (ImportError, AttributeError):  # pragma: no cover - old/odd SciPy
    _csr_matvec = None

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .comm_context import CommunicationContext
    from .dmatrix import DistributedMatrix
    from .dvector import DistributedVector


class ContextMismatchError(ValueError):
    """The scatter plan does not cover the matrix's off-diagonal columns.

    Raised while building an engine when the supplied
    :class:`CommunicationContext` was derived from a different sparsity
    pattern (e.g. a stale plan, or a plan for another matrix on the same
    partition).  The caller is expected to fall back to the dense-gather
    reference path, whose numerics never depend on the context.
    """


@dataclass
class _RankPlan:
    """Precomputed local view of one rank's row block."""

    #: Number of locally owned rows/columns (``n_k``).
    n_local: int
    #: ``(n_k, n_k + |G_k|)`` CSR block with compressed column indices.  The
    #: stored entry order equals the original row block's, which keeps the
    #: matvec bit-identical to the dense-gather reference.
    local: sp.csr_matrix
    #: Sorted global ghost indices ``G_k`` (diagnostics / tests).
    ghost_indices: np.ndarray
    #: Position of each ghost value inside the staged send pool.
    ghost_pool_pos: np.ndarray
    #: Preallocated compressed input buffer ``[x_own | x_ghost]``.
    xbuf: np.ndarray


class SpmvEngine:
    """Executes ``out = A x`` through precomputed local views.

    Parameters
    ----------
    matrix:
        The block-row distributed matrix.  All row blocks must currently be
        readable (building from a failed node raises ``NodeFailedError``).
    context:
        The SpMV scatter plan.  Its edges must cover every off-diagonal
        column of every row block; otherwise :class:`ContextMismatchError`
        is raised.
    """

    def __init__(self, matrix: "DistributedMatrix",
                 context: "CommunicationContext"):
        partition = matrix.partition
        if not partition.is_compatible_with(context.partition):
            raise ContextMismatchError(
                "communication context and matrix have incompatible partitions"
            )
        self.matrix = matrix
        self.context = context
        self.partition = partition
        #: Matrix structure version this engine was built against; compared
        #: by :meth:`DistributedMatrix.spmv_engine` to invalidate the cache.
        self.version = matrix.structure_version

        n_parts = partition.n_parts
        # -- send-pool layout: per rank, the locally-owned entries it sends
        #    to at least one other node (the paper's R_i), in sorted order.
        self._sent_local: List[np.ndarray] = []
        pool_offsets = np.zeros(n_parts + 1, dtype=np.int64)
        for rank in range(n_parts):
            start, stop = partition.range_of(rank)
            sends = [context.send_indices(rank, dst)
                     for dst in context.receivers_of(rank)]
            sent = (np.unique(np.concatenate(sends)) if sends
                    else np.empty(0, dtype=np.int64))
            if sent.size and (sent[0] < start or sent[-1] >= stop):
                raise ContextMismatchError(
                    f"scatter plan sends indices not owned by rank {rank}; "
                    "cannot build a local view"
                )
            self._sent_local.append(sent - start)
            pool_offsets[rank + 1] = pool_offsets[rank] + sent.size
        self._pool_offsets = pool_offsets
        self._pool = np.empty(int(pool_offsets[-1]))

        # -- per-rank compressed local views
        self._plans: List[_RankPlan] = []
        column_map = np.full(partition.n, -1, dtype=np.int64)
        for rank in range(n_parts):
            self._plans.append(self._build_rank_plan(rank, column_map))

        # -- cached static charges (identical values to the per-call
        #    recomputation of the reference path).
        from .spmv import halo_exchange_cost, spmv_compute_cost

        cluster = matrix.cluster
        self.halo_cost = halo_exchange_cost(
            context, cluster.topology, cluster.ledger.model
        )
        self.compute_cost = spmv_compute_cost(matrix, cluster.ledger.model)

    # -- construction -------------------------------------------------------
    def _build_rank_plan(self, rank: int, column_map: np.ndarray) -> _RankPlan:
        partition = self.partition
        context = self.context
        start, stop = partition.range_of(rank)
        n_local = stop - start

        senders = context.senders_to(rank)
        ghost = (np.unique(np.concatenate(
            [context.send_indices(src, rank) for src in senders]
        )) if senders else np.empty(0, dtype=np.int64))
        if ghost.size and np.any((ghost >= start) & (ghost < stop)):
            raise ContextMismatchError(
                f"scatter plan ships rank {rank} elements it already owns; "
                "cannot build a local view"
            )

        block = self.matrix.row_block(rank)

        # Compress columns: owned -> [0, n_local), ghost g -> n_local + pos(g).
        # column_map is a scratch array shared across ranks; only the entries
        # written here are read back, and they are reset before returning.
        column_map[start:stop] = np.arange(n_local, dtype=np.int64)
        column_map[ghost] = n_local + np.arange(ghost.size, dtype=np.int64)
        compressed = column_map[block.indices]
        if compressed.size and compressed.min() < 0:
            column_map[start:stop] = -1
            column_map[ghost] = -1
            raise ContextMismatchError(
                f"scatter plan does not cover all off-diagonal columns of "
                f"rank {rank}'s row block; cannot build a local view"
            )
        column_map[start:stop] = -1
        column_map[ghost] = -1

        # Share data/indptr with the stored block (only the column indices
        # genuinely differ): in-place edits of block values stay live in the
        # engine -- matching the reference path -- and the cached engine
        # costs O(nnz) index memory instead of a full matrix copy.
        local = sp.csr_matrix(
            (block.data, compressed.astype(block.indices.dtype),
             block.indptr),
            shape=(n_local, n_local + ghost.size),
        )

        # Pool positions of the ghost values: ghost g owned by src sits at
        # pool_offsets[src] + (position of g within src's sent set).
        ghost_pool_pos = np.empty(ghost.size, dtype=np.int64)
        if ghost.size:
            owners = partition.owner_of(ghost)
            for src in np.unique(owners):
                src = int(src)
                mask = owners == src
                src_start, _ = partition.range_of(src)
                ghost_pool_pos[mask] = self._pool_offsets[src] + np.searchsorted(
                    self._sent_local[src], ghost[mask] - src_start
                )

        return _RankPlan(
            n_local=n_local,
            local=local,
            ghost_indices=ghost,
            ghost_pool_pos=ghost_pool_pos,
            xbuf=np.empty(n_local + ghost.size),
        )

    # -- queries ------------------------------------------------------------
    def ghost_indices(self, rank: int) -> np.ndarray:
        """Sorted global ghost (halo) indices of *rank* (``G_k``)."""
        return self._plans[rank].ghost_indices

    def local_block(self, rank: int) -> sp.csr_matrix:
        """The compressed ``(n_k, n_k + |G_k|)`` local view of *rank*."""
        return self._plans[rank].local

    # -- execution ----------------------------------------------------------
    def apply(self, x: "DistributedVector", out: "DistributedVector"
              ) -> "DistributedVector":
        """Numeric ``out = A x`` (no cost charging; see ``distributed_spmv``).

        Reads every rank's matrix and input blocks through the node memories
        (enforcing failure semantics), stages the send pool, then computes
        each rank's product as one compressed local matvec, accumulating
        directly into ``out``'s existing block where possible.  ``out`` may
        alias ``x``: ghosts are read from the pool staged before any write,
        and each rank's owned part is copied into the input buffer before
        its output block is touched.
        """
        partition = self.partition
        matrix = self.matrix
        pool = self._pool
        pool_offsets = self._pool_offsets

        # Stage the send pool (and enforce failure semantics for the matrix
        # blocks, exactly as the reference path's per-call block reads do).
        for rank in range(partition.n_parts):
            matrix.row_block(rank)
            sent_local = self._sent_local[rank]
            if sent_local.size:
                pool[pool_offsets[rank]:pool_offsets[rank + 1]] = \
                    x.get_block(rank)[sent_local]

        for rank in range(partition.n_parts):
            plan = self._plans[rank]
            xbuf = plan.xbuf
            xbuf[:plan.n_local] = x.get_block(rank)
            if plan.ghost_pool_pos.size:
                xbuf[plan.n_local:] = pool[plan.ghost_pool_pos]
            try:
                target = out.get_block(rank)
            except KeyError:
                target = None
            if target is None:
                out.set_block(rank, self._matvec(plan, xbuf))
            else:
                self._matvec(plan, xbuf, out=target)
        return out

    @staticmethod
    def _matvec(plan: _RankPlan, xbuf: np.ndarray,
                out: Optional[np.ndarray] = None) -> np.ndarray:
        """Compressed local matvec, accumulated into *out* when provided."""
        local = plan.local
        if _csr_matvec is None:  # pragma: no cover - SciPy without _sparsetools
            result = local @ xbuf
            if out is None:
                return result
            out[:] = result
            return out
        if out is None:
            out = np.zeros(plan.n_local)
        else:
            out[:] = 0.0
        _csr_matvec(local.shape[0], local.shape[1], local.indptr,
                    local.indices, local.data, xbuf, out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        ghosts = sum(p.ghost_indices.size for p in self._plans)
        return (
            f"SpmvEngine(matrix={self.matrix.name!r}, "
            f"N={self.partition.n_parts}, ghosts={ghosts}, "
            f"version={self.version})"
        )
