"""Distributed sparse matrices in block-row layout.

A :class:`DistributedMatrix` stores, for every node, the CSR block of the rows
that node owns (shape ``(n_i, n)``), inside the node's private memory.  Since
the system matrix and the preconditioner are *static* data (Sec. 1.1.2), each
row block is additionally deposited in the cluster's reliable storage so that
replacement nodes can re-retrieve it during reconstruction -- which is charged
to the recovery phase of the cost model.

The matrix also caches :class:`~repro.distributed.spmv_engine.SpmvEngine`
instances keyed by communication context (see :meth:`DistributedMatrix.
spmv_engine`).  Every row-block write bumps ``structure_version`` so cached
engines are invalidated whenever a block changes -- in particular when
``restore_block_to_node`` re-installs a block on a replacement node during
recovery.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

from ..cluster.cluster import VirtualCluster
from ..utils.validation import check_square
from .partition import BlockRowPartition

#: Memory key prefix under which matrix row blocks are stored on each node.
_MAT_KEY = "mat"


class DistributedMatrix:
    """A block-row distributed sparse matrix."""

    def __init__(self, cluster: VirtualCluster, partition: BlockRowPartition,
                 name: str):
        if partition.n_parts != cluster.n_nodes:
            raise ValueError(
                f"partition has {partition.n_parts} parts but cluster has "
                f"{cluster.n_nodes} nodes"
            )
        self.cluster = cluster
        self.partition = partition
        self.name = name
        #: Bumped on every row-block write; SpMV engines built against an
        #: older version are discarded (cache invalidation contract).
        self._structure_version = 0
        #: ``id(context) -> (context, engine_or_None, version)``.
        self._spmv_engines: dict = {}
        #: Cached default scatter plan (see :meth:`default_context`).
        self._default_context = None
        self._default_context_version = -1

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_global(cls, cluster: VirtualCluster, partition: BlockRowPartition,
                    name: str, matrix, *, keep_in_storage: bool = True
                    ) -> "DistributedMatrix":
        """Distribute a global sparse matrix over the cluster (setup phase).

        Parameters
        ----------
        matrix:
            Any SciPy sparse matrix (or dense array) of shape ``(n, n)`` with
            ``n == partition.n``.
        keep_in_storage:
            Also deposit each row block in reliable storage so it can be
            retrieved by replacement nodes after a failure (default: true,
            matching the paper's assumption for static data).
        """
        a = sp.csr_matrix(matrix)
        check_square(a, name)
        if a.shape[0] != partition.n:
            raise ValueError(
                f"matrix has {a.shape[0]} rows, partition expects {partition.n}"
            )
        dist = cls(cluster, partition, name)
        for rank in range(partition.n_parts):
            start, stop = partition.range_of(rank)
            block = a[start:stop, :].tocsr()
            block.sort_indices()
            dist._set_row_block(rank, block)
            if keep_in_storage:
                cluster.storage.put_block(dist._storage_name(), rank, block)
        return dist

    def _storage_name(self) -> str:
        return f"{_MAT_KEY}:{self.name}"

    def _key(self) -> tuple:
        return (_MAT_KEY, self.name)

    def _set_row_block(self, rank: int, block: sp.csr_matrix) -> None:
        self.cluster.node(rank).memory[self._key()] = block
        self._structure_version += 1

    @property
    def structure_version(self) -> int:
        """Monotone counter of row-block writes (engine-cache invalidation)."""
        return self._structure_version

    #: Engines cached per context; solvers hold one long-lived plan, so a
    #: small bound suffices while preventing unbounded growth when callers
    #: keep passing fresh context objects.
    _ENGINE_CACHE_SIZE = 8

    def default_context(self):
        """Cached scatter plan derived from this matrix's sparsity pattern.

        ``distributed_spmv`` uses this when no context is passed, so repeated
        default-context calls reuse one plan (and therefore one cached SpMV
        engine) instead of deriving a fresh plan per call.  Rebuilt when the
        structure version changes.
        """
        if (self._default_context is None
                or self._default_context_version != self._structure_version):
            from .comm_context import CommunicationContext

            self._default_context = CommunicationContext.from_matrix(self)
            self._default_context_version = self._structure_version
        return self._default_context

    def _cached_engine_entry(self, context):
        """The live cache entry for *context*, LRU-refreshed, or ``None``."""
        key = id(context)
        entry = self._spmv_engines.get(key)
        if (entry is not None and entry[0] is context
                and entry[2] == self._structure_version):
            # LRU refresh so a long-lived hot plan is not evicted by a
            # stream of short-lived foreign contexts.
            self._spmv_engines[key] = self._spmv_engines.pop(key)
            return entry
        return None

    def cached_spmv_engine(self, context):
        """The cached engine for *context* without building one.

        Pure cache lookup -- never touches node memories, so callers can use
        it to pick the cached static charges before any operation that may
        raise on failed nodes (keeping the charge order identical to the
        dense-gather reference path).  ``None`` on a cache miss *or* when
        the cached entry records a context mismatch.
        """
        entry = self._cached_engine_entry(context)
        return entry[1] if entry is not None else None

    def spmv_engine(self, context):
        """The cached local-view SpMV engine for *context* (or ``None``).

        Engines are cached per context object and invalidated whenever a row
        block is rewritten (``structure_version`` changes), e.g. by
        ``restore_block_to_node`` during failure recovery.  Returns ``None``
        when *context* does not cover the matrix's off-diagonal columns --
        callers then fall back to the dense-gather reference path, whose
        numerics never depend on the context.
        """
        entry = self._cached_engine_entry(context)
        if entry is not None:
            return entry[1]
        from .spmv_engine import ContextMismatchError, SpmvEngine

        try:
            engine = SpmvEngine(self, context)
        except ContextMismatchError:
            engine = None
        if len(self._spmv_engines) >= self._ENGINE_CACHE_SIZE:
            stale = [cached_key for cached_key, cached in
                     self._spmv_engines.items()
                     if cached[2] != self._structure_version]
            for cached_key in stale:
                del self._spmv_engines[cached_key]
        while len(self._spmv_engines) >= self._ENGINE_CACHE_SIZE:
            self._spmv_engines.pop(next(iter(self._spmv_engines)))
        self._spmv_engines[id(context)] = (context, engine,
                                           self._structure_version)
        return engine

    # -- block access ------------------------------------------------------------
    def row_block(self, rank: int) -> sp.csr_matrix:
        """Rows owned by *rank* as a ``(n_i, n)`` CSR block (node memory)."""
        return self.cluster.node(rank).memory[self._key()]

    def row_block_from_storage(self, rank: int, *, charge: bool = True
                               ) -> sp.csr_matrix:
        """Re-retrieve the rows of *rank* from reliable storage (recovery path)."""
        return self.cluster.storage.retrieve_block(
            self._storage_name(), rank, charge=charge
        )

    def restore_block_to_node(self, rank: int, *, charge: bool = True) -> sp.csr_matrix:
        """Fetch a row block from storage and install it on the (replacement) node."""
        block = self.row_block_from_storage(rank, charge=charge)
        self._set_row_block(rank, block)
        return block

    def has_block(self, rank: int) -> bool:
        node = self.cluster.node(rank)
        return node.is_alive and self._key() in node.memory

    # -- structural queries ---------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return (self.partition.n, self.partition.n)

    def nnz_of(self, rank: int) -> int:
        """Stored non-zeros in the row block of *rank*."""
        return int(self.row_block(rank).nnz)

    def total_nnz(self) -> int:
        return sum(self.nnz_of(rank) for rank in range(self.partition.n_parts))

    def max_block_nnz(self) -> int:
        """Largest per-node non-zero count (sets the SpMV compute pace)."""
        return max(self.nnz_of(rank) for rank in range(self.partition.n_parts))

    def needed_column_indices(self, rank: int) -> np.ndarray:
        """Global column indices with non-zeros in *rank*'s row block.

        These are exactly the vector elements node *rank* needs to compute its
        part of ``A p`` -- the basis of the SpMV communication pattern
        (Eqn. (1)/(2) of the paper).
        """
        block = self.row_block(rank)
        return np.unique(block.indices.astype(np.int64))

    def diagonal_block(self, rank: int) -> sp.csr_matrix:
        """The square diagonal block ``A_{I_i, I_i}`` (used by block Jacobi)."""
        start, stop = self.partition.range_of(rank)
        return self.row_block(rank)[:, start:stop].tocsr()

    def off_diagonal_nnz(self, rank: int) -> int:
        """Non-zeros of *rank*'s rows that fall outside its diagonal block."""
        return self.nnz_of(rank) - int(self.diagonal_block(rank).nnz)

    def diagonal(self) -> np.ndarray:
        """Global main diagonal assembled from the row blocks."""
        diag = np.zeros(self.partition.n)
        for rank in range(self.partition.n_parts):
            start, stop = self.partition.range_of(rank)
            block = self.row_block(rank)[:, start:stop]
            diag[start:stop] = block.diagonal()
        return diag

    # -- global assembly (verification / recovery) -------------------------------------
    def to_global(self) -> sp.csr_matrix:
        """Assemble the full matrix on the driver (verification only)."""
        blocks = [self.row_block(rank) for rank in range(self.partition.n_parts)]
        return sp.vstack(blocks, format="csr")

    def recovery_rows(self, ranks: Iterable[int], *, charge: bool = True
                      ) -> sp.csr_matrix:
        """``A_{I_f, I}`` for a set of failed ranks, pulled from reliable storage.

        This is line 1 of the reconstruction (Alg. 2): the replacement nodes
        retrieve the static rows they own from reliable storage.
        """
        ranks = sorted(set(int(r) for r in ranks))
        blocks = [
            self.row_block_from_storage(rank, charge=charge) for rank in ranks
        ]
        if not blocks:
            return sp.csr_matrix((0, self.partition.n))
        return sp.vstack(blocks, format="csr")

    def submatrix(self, row_indices: np.ndarray, col_indices: np.ndarray,
                  *, from_storage: bool = False, charge: bool = False
                  ) -> sp.csr_matrix:
        """Extract ``A[rows, cols]`` (verification and local-solve helper)."""
        if from_storage:
            owners = np.unique(self.partition.owner_of(row_indices))
            rows = self.recovery_rows(owners, charge=charge)
            offsets = self.partition.offsets
            base = np.concatenate([
                self.partition.indices_of(int(r)) for r in owners
            ])
            lookup = {int(g): i for i, g in enumerate(base)}
            local_rows = np.array([lookup[int(g)] for g in row_indices])
            return rows[local_rows, :][:, col_indices].tocsr()
        full = self.to_global()
        return full[row_indices, :][:, col_indices].tocsr()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DistributedMatrix(name={self.name!r}, n={self.partition.n}, "
            f"N={self.partition.n_parts})"
        )
