"""Distributed sparse matrix-vector products.

``distributed_spmv`` performs ``y = A x`` for a block-row distributed matrix
and vector: the halo exchange defined by the :class:`CommunicationContext` is
charged to the latency-bandwidth cost model (Phase ``comm.halo``), the local
row-block products are charged as memory-bound compute (Phase
``compute.spmv``), and the numeric result is stored block-by-block into the
output vector.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..cluster.cost_model import Phase
from .comm_context import CommunicationContext
from .dmatrix import DistributedMatrix
from .dvector import DistributedVector


def halo_exchange_cost(context: CommunicationContext, topology, model
                       ) -> Tuple[float, int, int]:
    """Bulk-synchronous cost of one halo exchange.

    Returns ``(time, n_messages, n_elements)`` where *time* is the maximum
    over receiving nodes of the summed cost of their incoming messages (each
    ``lambda_ik + |S_ik| * mu``), matching the model of Sec. 4.2.
    """
    per_receiver: Dict[int, float] = {}
    n_messages = 0
    n_elements = 0
    for edge in context.edges():
        cost = model.message_time(topology.latency(edge.src, edge.dst), edge.count)
        per_receiver[edge.dst] = per_receiver.get(edge.dst, 0.0) + cost
        n_messages += 1
        n_elements += edge.count
    max_time = max(per_receiver.values()) if per_receiver else 0.0
    return max_time, n_messages, n_elements


def spmv_compute_cost(matrix: DistributedMatrix, model) -> float:
    """Bulk-synchronous compute cost of the local row-block products."""
    return max(
        model.spmv_time(matrix.nnz_of(rank))
        for rank in range(matrix.partition.n_parts)
    )


def distributed_spmv(matrix: DistributedMatrix, x: DistributedVector,
                     out: DistributedVector,
                     context: Optional[CommunicationContext] = None,
                     *, charge: bool = True) -> DistributedVector:
    """Compute ``out = matrix @ x`` on the virtual cluster.

    Parameters
    ----------
    matrix, x, out:
        Distributed operands sharing one partition and cluster.
    context:
        The SpMV scatter plan.  If ``None`` it is derived on the fly (more
        expensive; solvers pass a prebuilt plan).
    charge:
        Charge communication and compute to the cost ledger (solvers always
        do; some verification helpers pass ``False``).
    """
    partition = matrix.partition
    if not partition.is_compatible_with(x.partition):
        raise ValueError("matrix and input vector have incompatible partitions")
    if not partition.is_compatible_with(out.partition):
        raise ValueError("matrix and output vector have incompatible partitions")
    cluster = matrix.cluster
    ledger = cluster.ledger

    if context is None:
        context = CommunicationContext.from_matrix(matrix)

    if charge:
        halo_time, n_msg, n_elem = halo_exchange_cost(
            context, cluster.topology, ledger.model
        )
        ledger.add_time(Phase.HALO_COMM, halo_time)
        ledger.add_traffic(Phase.HALO_COMM, n_msg, n_elem)

    # Numerically, each node multiplies its (n_i x n) row block with the full
    # input vector; only the ghost elements described by the context would be
    # communicated on a real machine.  Reading every owner's block here also
    # enforces the failure semantics: SpMV cannot proceed with a failed owner.
    x_global = np.empty(partition.n)
    for rank in range(partition.n_parts):
        start, stop = partition.range_of(rank)
        x_global[start:stop] = x.get_block(rank)

    for rank in range(partition.n_parts):
        block = matrix.row_block(rank)
        out.set_block(rank, block @ x_global)

    if charge:
        ledger.add_time(Phase.SPMV_COMPUTE, spmv_compute_cost(matrix, ledger.model))
    return out


def ghost_values_for(context: CommunicationContext, x: DistributedVector,
                     dst: int) -> Dict[int, np.ndarray]:
    """The ghost values node *dst* receives during one SpMV halo exchange.

    Returns a map ``src -> values`` (aligned with
    ``context.send_indices(src, dst)``).  The ESR protocol uses this to model
    what each node naturally holds after the exchange.
    """
    out: Dict[int, np.ndarray] = {}
    partition = x.partition
    for src in context.senders_to(dst):
        idx = context.send_indices(src, dst)
        start, _ = partition.range_of(src)
        out[src] = x.get_block(src)[idx - start].copy()
    return out
