"""Distributed sparse matrix-vector products.

``distributed_spmv`` performs ``y = A x`` for a block-row distributed matrix
and vector: the halo exchange defined by the :class:`CommunicationContext` is
charged to the latency-bandwidth cost model (Phase ``comm.halo``), the local
row-block products are charged as memory-bound compute (Phase
``compute.spmv``), and the numeric result is stored block-by-block into the
output vector.  ``distributed_spmv_block`` is the batched multi-RHS variant
``Y = A X`` for :class:`~repro.distributed.dmultivector.
DistributedMultiVector` operands: one halo exchange ships all ``k`` columns
(same message count, ``k``-fold volume) and each rank runs a single
CSR x dense-block kernel.

Two numeric execution paths produce bit-identical results and charges:

* the **local-view engine** (default) -- a cached
  :class:`~repro.distributed.spmv_engine.SpmvEngine` that computes each
  rank's product as ``A_local @ [x_own | x_ghost]`` with compressed ghost
  columns and preallocated buffers, ``O(nnz + ghosts)`` per call;
* the **dense-gather reference** (``engine=False``, or automatic fallback
  when the context does not match the matrix) -- assembles a fresh global
  vector and multiplies each rank's full ``(n_i, n)`` row block against it.
  It is kept as the independent oracle for equivalence tests and the
  ``bench_spmv_engine`` benchmark.

With ``overlap=True`` (and an engine), the SpMV executes split-phase --
``A_diag @ x_own`` while the ghosts are in flight, then the off-diagonal
accumulation -- and the ledger is charged the overlap-aware
``max_i(max(halo_i, diag_i) + offdiag_i)`` instead of the serialized
``halo + compute``.  See :mod:`repro.distributed.spmv_engine` for the
execution model and the (last-bits) rounding caveat of split execution;
``overlap=False`` reproduces the serialized charges bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .. import sanitizer as _sanitizer
from ..cluster.cost_model import Phase
from .comm_context import CommunicationContext
from .dmatrix import DistributedMatrix
from .dmultivector import DistributedMultiVector
from .dvector import DistributedVector


def halo_exchange_cost(context: CommunicationContext, topology, model,
                       n_rhs: int = 1) -> Tuple[float, int, int]:
    """Bulk-synchronous cost of one halo exchange of *n_rhs* columns.

    Returns ``(time, n_messages, n_elements)`` where *time* is the maximum
    over receiving nodes of the summed cost of their incoming messages (each
    ``lambda_ik + |S_ik| * n_rhs * mu``), matching the model of Sec. 4.2.
    Batched multi-RHS exchanges (``n_rhs > 1``) ship all columns of an edge
    in one message: the message count is unchanged, the volume scales.
    """
    per_receiver: Dict[int, float] = {}
    n_messages = 0
    n_elements = 0
    for edge in context.edges():
        cost = model.message_time(
            topology.latency(edge.src, edge.dst), edge.count * n_rhs
        )
        per_receiver[edge.dst] = per_receiver.get(edge.dst, 0.0) + cost
        n_messages += 1
        n_elements += edge.count * n_rhs
    max_time = max(per_receiver.values()) if per_receiver else 0.0
    return max_time, n_messages, n_elements


def spmv_compute_cost(matrix: DistributedMatrix, model,
                      n_rhs: int = 1) -> float:
    """Bulk-synchronous compute cost of the local row-block products."""
    return max(
        model.spmv_time(matrix.nnz_of(rank) * n_rhs)
        for rank in range(matrix.partition.n_parts)
    )


def _check_operands(matrix: DistributedMatrix, x, out) -> None:
    partition = matrix.partition
    if not partition.is_compatible_with(x.partition):
        raise ValueError("matrix and input vector have incompatible partitions")
    if not partition.is_compatible_with(out.partition):
        raise ValueError("matrix and output vector have incompatible partitions")


def _dispatch_spmv(matrix: DistributedMatrix, x, out,
                   context: Optional[CommunicationContext],
                   *, charge: bool, engine: bool, overlap: bool,
                   n_rhs: int, block: bool):
    """Shared dispatch of single-vector and batched SpMV.

    One implementation carries the load-bearing invariants for both entry
    points: the halo charge must land *before* any node-memory read that may
    raise on failed nodes (matching the dense-gather reference's charge
    order on the serialized path), and the overlap branch falls through to
    the serialized path when the context does not match the matrix.

    Every charged SpMV runs inside a sanitizer op window: a charging call
    that books nothing to the ledger is the ``uncharged_op`` bug class
    SimSan exists to catch.
    """
    with _sanitizer.op_window("spmv", matrix.cluster.ledger,
                              required=charge):
        return _execute_spmv(matrix, x, out, context, charge=charge,
                             engine=engine, overlap=overlap, n_rhs=n_rhs,
                             block=block)


def _execute_spmv(matrix: DistributedMatrix, x, out,
                  context: Optional[CommunicationContext],
                  *, charge: bool, engine: bool, overlap: bool,
                  n_rhs: int, block: bool):
    cluster = matrix.cluster
    ledger = cluster.ledger

    if context is None:
        context = matrix.default_context()

    if overlap and engine:
        # The overlap charge needs the engine's diag/offdiag split, so the
        # engine is built (node memories touched) before anything is
        # charged; serialized charge-order equivalence only holds for
        # overlap=False.
        spmv_engine = matrix.spmv_engine(context)
        if spmv_engine is not None:
            if charge:
                ch = spmv_engine.overlap_charge(n_rhs)
                ledger.add_overlapped(Phase.HALO_COMM, Phase.SPMV_COMPUTE,
                                      ch.compute_time, ch.total_time)
                ledger.add_traffic(Phase.HALO_COMM, ch.n_messages,
                                   ch.n_elements)
            if block:
                spmv_engine.apply_block(x, out, split=True)
            else:
                spmv_engine.apply_split(x, out)
            return out
        # Mismatched context: fall through to the serialized reference path.

    # Cache lookup only -- the halo charge must land before any node-memory
    # read that may raise on failed nodes.  A cache miss recomputes the halo
    # cost directly (same value the engine caches) and builds the engine
    # after the charge.
    spmv_engine = matrix.cached_spmv_engine(context) if engine else None

    if charge:
        if spmv_engine is not None:
            halo_time, n_msg, n_elem = spmv_engine.halo_cost_for(n_rhs)
        else:
            halo_time, n_msg, n_elem = halo_exchange_cost(
                context, cluster.topology, ledger.model, n_rhs=n_rhs
            )
        ledger.add_time(Phase.HALO_COMM, halo_time)
        ledger.add_traffic(Phase.HALO_COMM, n_msg, n_elem)

    if engine and spmv_engine is None:
        # None when the context does not cover the matrix's off-diagonal
        # columns; the dense-gather path below never depends on the context
        # numerically.
        spmv_engine = matrix.spmv_engine(context)

    if spmv_engine is not None:
        if block:
            spmv_engine.apply_block(x, out)
        else:
            spmv_engine.apply(x, out)
    else:
        # Dense-gather reference: each node multiplies its (n_i x n) row
        # block with the freshly assembled global operand; only the ghost
        # elements described by the context would be communicated on a real
        # machine.  Reading every owner's block here also enforces the
        # failure semantics: SpMV cannot proceed with a failed owner.
        partition = matrix.partition
        shape = (partition.n, n_rhs) if block else (partition.n,)
        x_global = np.empty(shape)
        for rank in range(partition.n_parts):
            start, stop = partition.range_of(rank)
            x_global[start:stop] = x.get_block(rank)
        for rank in range(partition.n_parts):
            row_block = matrix.row_block(rank)
            out.set_block(rank, row_block @ x_global)

    if charge:
        ledger.add_time(
            Phase.SPMV_COMPUTE,
            spmv_engine.compute_cost_for(n_rhs) if spmv_engine is not None
            else spmv_compute_cost(matrix, ledger.model, n_rhs=n_rhs),
        )
    return out


def distributed_spmv(matrix: DistributedMatrix, x: DistributedVector,
                     out: DistributedVector,
                     context: Optional[CommunicationContext] = None,
                     *, charge: bool = True,
                     engine: bool = True,
                     overlap: bool = False) -> DistributedVector:
    """Compute ``out = matrix @ x`` on the virtual cluster.

    Parameters
    ----------
    matrix, x, out:
        Distributed operands sharing one partition and cluster.
    context:
        The SpMV scatter plan.  If ``None`` the matrix's cached default plan
        is used (derived from the sparsity pattern on first use; solvers
        pass a prebuilt plan).
    charge:
        Charge communication and compute to the cost ledger (solvers always
        do; some verification helpers pass ``False``).
    engine:
        Execute through the cached local-view :class:`SpmvEngine` (default).
        ``False`` forces the dense-gather reference path; the two paths are
        bit-identical in results and charges.
    overlap:
        Execute split-phase (diagonal compute overlapped with the halo
        exchange) and charge the overlap-aware cost.  Requires the engine;
        when the engine is unavailable (``engine=False`` or a mismatched
        context) the serialized path runs instead.  Split execution rounds
        like PETSc's overlapped ``MatMult`` -- results can differ from the
        fused kernel in the last bits (see ``spmv_engine``).
    """
    _check_operands(matrix, x, out)
    return _dispatch_spmv(matrix, x, out, context, charge=charge,
                          engine=engine, overlap=overlap, n_rhs=1,
                          block=False)


def distributed_spmv_block(matrix: DistributedMatrix,
                           x: DistributedMultiVector,
                           out: DistributedMultiVector,
                           context: Optional[CommunicationContext] = None,
                           *, charge: bool = True,
                           engine: bool = True,
                           overlap: bool = False) -> DistributedMultiVector:
    """Compute ``out = matrix @ x`` for a block of ``k`` right-hand sides.

    The batched counterpart of :func:`distributed_spmv`: one halo exchange
    ships all ``k`` columns (message count unchanged, ``k``-fold element
    volume) and each rank runs a single CSR x dense-block kernel, so the
    per-call Python dispatch and the ghost gather are amortized over the
    columns.  Per-column results are bit-identical to ``k`` single-vector
    calls on the same execution path.

    :class:`~repro.core.block_pcg.BlockPCG` drives this kernel once per
    iteration and pairs it with batched ``k``-scalar allreduces
    (:meth:`~repro.distributed.dmultivector.DistributedMultiVector.dots` /
    :meth:`~repro.cluster.communicator.Communicator.allreduce_sum`), so both
    latency-bound legs of the PCG iteration -- halo exchange and reductions
    -- ship message counts independent of ``k``.
    """
    _check_operands(matrix, x, out)
    if x.n_cols != out.n_cols:
        raise ValueError(
            f"input has {x.n_cols} columns but output has {out.n_cols}"
        )
    return _dispatch_spmv(matrix, x, out, context, charge=charge,
                          engine=engine, overlap=overlap, n_rhs=x.n_cols,
                          block=True)


def ghost_values_for(context: CommunicationContext, x: DistributedVector,
                     dst: int, *,
                     matrix: Optional[DistributedMatrix] = None
                     ) -> Dict[int, np.ndarray]:
    """The ghost values node *dst* receives during one SpMV halo exchange.

    Returns a map ``src -> values`` (aligned with
    ``context.send_indices(src, dst)``).  The ESR protocol uses this to model
    what each node naturally holds after the exchange.

    When *matrix* is given and holds a cached SpMV engine for *context*, the
    gather reuses the engine's precomputed compressed ghost runs (one
    fancy-index per sender into a single buffer, no per-call index
    arithmetic) instead of per-edge fancy-indexed copies.
    """
    if matrix is not None:
        cached = matrix.cached_spmv_engine(context)
        if cached is not None and cached.context is context:
            return cached.ghost_values_for(x, dst)
    out: Dict[int, np.ndarray] = {}
    partition = x.partition
    for src in context.senders_to(dst):
        idx = context.send_indices(src, dst)
        start, _ = partition.range_of(src)
        out[src] = x.get_block(src)[idx - start].copy()
    return out
