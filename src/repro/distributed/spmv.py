"""Distributed sparse matrix-vector products.

``distributed_spmv`` performs ``y = A x`` for a block-row distributed matrix
and vector: the halo exchange defined by the :class:`CommunicationContext` is
charged to the latency-bandwidth cost model (Phase ``comm.halo``), the local
row-block products are charged as memory-bound compute (Phase
``compute.spmv``), and the numeric result is stored block-by-block into the
output vector.

Two numeric execution paths produce bit-identical results and charges:

* the **local-view engine** (default) -- a cached
  :class:`~repro.distributed.spmv_engine.SpmvEngine` that computes each
  rank's product as ``A_local @ [x_own | x_ghost]`` with compressed ghost
  columns and preallocated buffers, ``O(nnz + ghosts)`` per call;
* the **dense-gather reference** (``engine=False``, or automatic fallback
  when the context does not match the matrix) -- assembles a fresh global
  vector and multiplies each rank's full ``(n_i, n)`` row block against it.
  It is kept as the independent oracle for equivalence tests and the
  ``bench_spmv_engine`` benchmark.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..cluster.cost_model import Phase
from .comm_context import CommunicationContext
from .dmatrix import DistributedMatrix
from .dvector import DistributedVector


def halo_exchange_cost(context: CommunicationContext, topology, model
                       ) -> Tuple[float, int, int]:
    """Bulk-synchronous cost of one halo exchange.

    Returns ``(time, n_messages, n_elements)`` where *time* is the maximum
    over receiving nodes of the summed cost of their incoming messages (each
    ``lambda_ik + |S_ik| * mu``), matching the model of Sec. 4.2.
    """
    per_receiver: Dict[int, float] = {}
    n_messages = 0
    n_elements = 0
    for edge in context.edges():
        cost = model.message_time(topology.latency(edge.src, edge.dst), edge.count)
        per_receiver[edge.dst] = per_receiver.get(edge.dst, 0.0) + cost
        n_messages += 1
        n_elements += edge.count
    max_time = max(per_receiver.values()) if per_receiver else 0.0
    return max_time, n_messages, n_elements


def spmv_compute_cost(matrix: DistributedMatrix, model) -> float:
    """Bulk-synchronous compute cost of the local row-block products."""
    return max(
        model.spmv_time(matrix.nnz_of(rank))
        for rank in range(matrix.partition.n_parts)
    )


def distributed_spmv(matrix: DistributedMatrix, x: DistributedVector,
                     out: DistributedVector,
                     context: Optional[CommunicationContext] = None,
                     *, charge: bool = True,
                     engine: bool = True) -> DistributedVector:
    """Compute ``out = matrix @ x`` on the virtual cluster.

    Parameters
    ----------
    matrix, x, out:
        Distributed operands sharing one partition and cluster.
    context:
        The SpMV scatter plan.  If ``None`` the matrix's cached default plan
        is used (derived from the sparsity pattern on first use; solvers
        pass a prebuilt plan).
    charge:
        Charge communication and compute to the cost ledger (solvers always
        do; some verification helpers pass ``False``).
    engine:
        Execute through the cached local-view :class:`SpmvEngine` (default).
        ``False`` forces the dense-gather reference path; the two paths are
        bit-identical in results and charges.
    """
    partition = matrix.partition
    if not partition.is_compatible_with(x.partition):
        raise ValueError("matrix and input vector have incompatible partitions")
    if not partition.is_compatible_with(out.partition):
        raise ValueError("matrix and output vector have incompatible partitions")
    cluster = matrix.cluster
    ledger = cluster.ledger

    if context is None:
        context = matrix.default_context()

    # Cache lookup only -- the halo charge must land before any node-memory
    # read that may raise on failed nodes, matching the reference path's
    # charge order.  A cache miss recomputes the halo cost directly (same
    # value the engine caches) and builds the engine after the charge.
    spmv_engine = matrix.cached_spmv_engine(context) if engine else None

    if charge:
        if spmv_engine is not None:
            halo_time, n_msg, n_elem = spmv_engine.halo_cost
        else:
            halo_time, n_msg, n_elem = halo_exchange_cost(
                context, cluster.topology, ledger.model
            )
        ledger.add_time(Phase.HALO_COMM, halo_time)
        ledger.add_traffic(Phase.HALO_COMM, n_msg, n_elem)

    if engine and spmv_engine is None:
        # None when the context does not cover the matrix's off-diagonal
        # columns; the dense-gather path below never depends on the context
        # numerically.
        spmv_engine = matrix.spmv_engine(context)

    if spmv_engine is not None:
        spmv_engine.apply(x, out)
    else:
        # Dense-gather reference: each node multiplies its (n_i x n) row block
        # with the freshly assembled global vector; only the ghost elements
        # described by the context would be communicated on a real machine.
        # Reading every owner's block here also enforces the failure
        # semantics: SpMV cannot proceed with a failed owner.
        x_global = np.empty(partition.n)
        for rank in range(partition.n_parts):
            start, stop = partition.range_of(rank)
            x_global[start:stop] = x.get_block(rank)

        for rank in range(partition.n_parts):
            block = matrix.row_block(rank)
            out.set_block(rank, block @ x_global)

    if charge:
        ledger.add_time(
            Phase.SPMV_COMPUTE,
            spmv_engine.compute_cost if spmv_engine is not None
            else spmv_compute_cost(matrix, ledger.model),
        )
    return out


def ghost_values_for(context: CommunicationContext, x: DistributedVector,
                     dst: int) -> Dict[int, np.ndarray]:
    """The ghost values node *dst* receives during one SpMV halo exchange.

    Returns a map ``src -> values`` (aligned with
    ``context.send_indices(src, dst)``).  The ESR protocol uses this to model
    what each node naturally holds after the exchange.
    """
    out: Dict[int, np.ndarray] = {}
    partition = x.partition
    for src in context.senders_to(dst):
        idx = context.send_indices(src, dst)
        start, _ = partition.range_of(src)
        out[src] = x.get_block(src)[idx - start].copy()
    return out
