"""Block-row data distribution (Sec. 1.1.2 of the paper).

All matrices and vectors are distributed by contiguous blocks of rows: node
``i`` owns the index set ``I_i`` of roughly ``n/N`` consecutive indices.  If
``n`` is not divisible by ``N``, the first ``n mod N`` nodes own one extra row
(the usual PETSc-style layout, matching the paper's "some nodes own floor(n/N)
and others ceil(n/N) rows").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class BlockRowPartition:
    """Partition of ``{0, ..., n-1}`` into ``n_parts`` contiguous blocks.

    Parameters
    ----------
    n:
        Global problem size (number of rows / vector elements).
    n_parts:
        Number of nodes ``N`` the data is distributed over.
    """

    n: int
    n_parts: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if self.n_parts < 1:
            raise ValueError(f"n_parts must be >= 1, got {self.n_parts}")
        if self.n_parts > self.n:
            raise ValueError(
                f"cannot distribute {self.n} rows over {self.n_parts} nodes "
                "(at least one row per node is required)"
            )

    # -- offsets and sizes ---------------------------------------------------
    @property
    def offsets(self) -> np.ndarray:
        """Array of length ``n_parts + 1``: block ``i`` is ``[offsets[i], offsets[i+1])``."""
        base, extra = divmod(self.n, self.n_parts)
        sizes = np.full(self.n_parts, base, dtype=np.int64)
        sizes[:extra] += 1
        return np.concatenate(([0], np.cumsum(sizes)))

    def size_of(self, rank: int) -> int:
        """Number of rows owned by *rank* (``|I_i|``)."""
        self._check_rank(rank)
        offsets = self.offsets
        return int(offsets[rank + 1] - offsets[rank])

    def sizes(self) -> np.ndarray:
        """Vector of all block sizes."""
        offsets = self.offsets
        return np.diff(offsets)

    def max_block_size(self) -> int:
        """``ceil(n / N)`` -- appears in the Sec. 4.2 upper bound."""
        return int(self.sizes().max())

    # -- index sets -------------------------------------------------------------
    def range_of(self, rank: int) -> Tuple[int, int]:
        """Half-open global index range ``[start, stop)`` owned by *rank*."""
        self._check_rank(rank)
        offsets = self.offsets
        return int(offsets[rank]), int(offsets[rank + 1])

    def slice_of(self, rank: int) -> slice:
        """The owned range as a :class:`slice` (for array indexing)."""
        start, stop = self.range_of(rank)
        return slice(start, stop)

    def indices_of(self, rank: int) -> np.ndarray:
        """Global indices owned by *rank* (the paper's ``I_i``)."""
        start, stop = self.range_of(rank)
        return np.arange(start, stop, dtype=np.int64)

    def indices_of_set(self, ranks) -> np.ndarray:
        """Union of the index sets of several ranks (``I_f`` for failed sets)."""
        ranks = sorted(set(int(r) for r in ranks))
        if not ranks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([self.indices_of(r) for r in ranks])

    # -- ownership lookups ---------------------------------------------------------
    def owner_of(self, index) -> np.ndarray:
        """Owning rank(s) of global index/indices (vectorised)."""
        idx = np.atleast_1d(np.asarray(index, dtype=np.int64))
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            bad = idx[(idx < 0) | (idx >= self.n)][0]
            raise IndexError(f"global index {bad} out of range [0, {self.n})")
        owners = np.searchsorted(self.offsets, idx, side="right") - 1
        return owners if np.ndim(index) else owners.reshape(np.shape(index))

    def owner_of_scalar(self, index: int) -> int:
        """Owning rank of a single global index."""
        return int(self.owner_of(np.asarray([index]))[0])

    def local_index(self, rank: int, global_index) -> np.ndarray:
        """Convert global indices owned by *rank* into block-local offsets."""
        start, stop = self.range_of(rank)
        gi = np.asarray(global_index, dtype=np.int64)
        if gi.size and ((gi < start).any() or (gi >= stop).any()):
            raise IndexError(
                f"some indices are not owned by rank {rank} (range [{start}, {stop}))"
            )
        return gi - start

    # -- iteration helpers ------------------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_parts))

    def blocks(self) -> List[Tuple[int, int, int]]:
        """List of ``(rank, start, stop)`` triples."""
        offsets = self.offsets
        return [
            (rank, int(offsets[rank]), int(offsets[rank + 1]))
            for rank in range(self.n_parts)
        ]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_parts:
            raise ValueError(
                f"rank {rank} out of range for a partition into {self.n_parts} parts"
            )

    def is_compatible_with(self, other: "BlockRowPartition") -> bool:
        """True if *other* describes the identical distribution."""
        return self.n == other.n and self.n_parts == other.n_parts
