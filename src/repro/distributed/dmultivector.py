"""Distributed multi-vectors (blocks of ``k`` right-hand sides).

A :class:`DistributedMultiVector` is the multi-RHS counterpart of
:class:`~repro.distributed.dvector.DistributedVector`: each node stores one
``(n_i, k)`` NumPy block of a global ``(n, k)`` dense matrix in its private
memory.  Block-Krylov and multi-RHS workloads use it with the batched
``Y = A X`` kernel of the SpMV engine
(:meth:`~repro.distributed.spmv_engine.SpmvEngine.apply_block`) and the
block BLAS-1 operations below; :class:`~repro.core.block_pcg.BlockPCG` is
the solver built on top of both, and
:class:`~repro.core.resilient_block_pcg.ResilientBlockPCG` adds block ESR
protection (redundant ``(rows, k)`` copies, reconstruction of lost blocks
re-installed through the shared ``restore_block`` recovery write path).

**Block BLAS-1.**  ``copy``/``fill``/``scale``/``axpy``/``aypx``/``assign``
operate on whole ``(n_i, k)`` blocks; coefficients may be scalars (applied to
every column) or per-column ``(k,)`` vectors (one independent recurrence per
column, which is what the lock-step block-PCG needs).  Every operation is
elementwise, so column ``j`` of the result is bit-identical to the
corresponding :class:`DistributedVector` operation applied to column ``j``
alone, and the ledger charge at ``k = 1`` equals the single-vector charge
exactly (the block charge is the single-vector charge with ``k``-fold
element count, mirroring how the batched SpMV scales).

**Batched reductions.**  :meth:`dots` returns the ``k`` per-column dot
products through **one** allreduce of ``k`` scalars; :meth:`gram` returns
the ``k x k`` block Gram matrix through one allreduce of ``k^2`` scalars.
Either way the collective's message count is that of a single scalar
allreduce -- one message per tree hop -- and only the per-hop volume scales
(see :meth:`~repro.cluster.communicator.Communicator.allreduce_sum`), which
is the latency amortization the paper's cost model (Sec. 4.2) rewards.
:meth:`dots` gathers each column into a contiguous buffer before the local
dot, so its per-column results are bit-identical to
:meth:`DistributedVector.dot` on :meth:`column` views.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

import numpy as np

from ..cluster.cluster import VirtualCluster
from ..cluster.cost_model import Phase
from .blockstore import NodeBlockStore, participating_max_block_size
from .partition import BlockRowPartition

#: Memory key prefix under which multi-vector blocks are stored on each node.
_MVEC_KEY = "mvec"

#: A BLAS-1 coefficient: one scalar for all columns, or one value per column.
Coefficient = Union[float, np.ndarray]


class DistributedMultiVector(NodeBlockStore):
    """A block-row distributed ``(n, k)`` dense matrix of ``k`` vectors."""

    def __init__(self, cluster: VirtualCluster, partition: BlockRowPartition,
                 name: str, n_cols: int):
        if partition.n_parts != cluster.n_nodes:
            raise ValueError(
                f"partition has {partition.n_parts} parts but cluster has "
                f"{cluster.n_nodes} nodes"
            )
        if n_cols < 1:
            raise ValueError(f"n_cols must be positive, got {n_cols}")
        self.cluster = cluster
        self.partition = partition
        self.name = name
        self.n_cols = int(n_cols)

    # -- construction -------------------------------------------------------
    @classmethod
    def zeros(cls, cluster: VirtualCluster, partition: BlockRowPartition,
              name: str, n_cols: int) -> "DistributedMultiVector":
        """Create a distributed multi-vector of zeros."""
        mvec = cls(cluster, partition, name, n_cols)
        for rank in range(partition.n_parts):
            mvec.set_block(rank, np.zeros((partition.size_of(rank), n_cols)))
        return mvec

    @classmethod
    def from_global(cls, cluster: VirtualCluster, partition: BlockRowPartition,
                    name: str, values: np.ndarray) -> "DistributedMultiVector":
        """Distribute a global ``(n, k)`` array (setup phase, not charged)."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or values.shape[0] != partition.n:
            raise ValueError(
                f"expected a ({partition.n}, k) array, got shape {values.shape}"
            )
        mvec = cls(cluster, partition, name, values.shape[1])
        for rank in range(partition.n_parts):
            start, stop = partition.range_of(rank)
            mvec.set_block(rank, values[start:stop].copy())
        return mvec

    @classmethod
    def from_columns(cls, cluster: VirtualCluster, partition: BlockRowPartition,
                     name: str, columns) -> "DistributedMultiVector":
        """Build a multi-vector from ``k`` distributed vectors (not charged)."""
        columns = list(columns)
        if not columns:
            raise ValueError("at least one column vector is required")
        mvec = cls(cluster, partition, name, len(columns))
        for vec in columns:
            if vec.cluster is not cluster:
                raise ValueError("column vector lives on a different cluster")
            if not partition.is_compatible_with(vec.partition):
                raise ValueError("column vector has an incompatible partition")
        for rank in range(partition.n_parts):
            mvec.set_block(rank, np.column_stack(
                [vec.get_block(rank) for vec in columns]
            ))
        return mvec

    # -- block access -------------------------------------------------------
    def _key(self) -> tuple:
        return (_MVEC_KEY, self.name)

    def get_block(self, rank: int) -> np.ndarray:
        """``(n_i, k)`` block of *rank*; raises ``NodeFailedError`` if failed."""
        return self.cluster.node(rank).memory[self._key()]

    def set_block(self, rank: int, values: np.ndarray) -> None:
        """Overwrite the block owned by *rank*."""
        values = np.asarray(values, dtype=np.float64)
        expected = (self.partition.size_of(rank), self.n_cols)
        if values.shape != expected:
            raise ValueError(
                f"block for rank {rank} must have shape {expected}, "
                f"got {values.shape}"
            )
        self.cluster.node(rank).memory[self._key()] = values

    # -- assembly / views ---------------------------------------------------
    def to_global(self, *, allow_missing: bool = False,
                  fill_value: float = np.nan) -> np.ndarray:
        """Assemble the global ``(n, k)`` array on the driver (not charged)."""
        return self._assemble(lambda block: block, (self.n_cols,),
                              allow_missing=allow_missing,
                              fill_value=fill_value)

    def column(self, j: int) -> np.ndarray:
        """Global column *j* assembled on the driver (verification helper).

        Gathers only column *j* of each block -- the full ``(n, k)`` global
        matrix is never materialised.
        """
        j = self._check_column(j)
        return self._assemble(lambda block: block[:, j], ())

    # ``has_block`` / ``available_ranks`` / ``lost_ranks`` / ``delete`` and
    # the recovery write path ``restore_block`` (defensive-copy writes of
    # reconstructed ``(n_i, k)`` blocks onto replacement nodes) come from
    # :class:`NodeBlockStore` (shared with ``DistributedVector``).

    # -- elementwise / block BLAS-1 operations -------------------------------
    def _coefficient(self, alpha: Coefficient) -> Union[float, np.ndarray]:
        """Normalise *alpha* to a scalar or a ``(k,)`` broadcast row."""
        arr = np.asarray(alpha, dtype=np.float64)
        if arr.ndim == 0:
            return float(arr)
        if arr.shape != (self.n_cols,):
            raise ValueError(
                f"per-column coefficients must have shape ({self.n_cols},), "
                f"got {arr.shape}"
            )
        return arr

    def _charge_block_op(self, flops_per_element: float = 2.0,
                         phase: str = Phase.VECTOR_COMPUTE,
                         n_rows: Optional[int] = None) -> None:
        """Charge one streaming block op: single-vector charge, ``k``-fold size."""
        model = self.cluster.ledger.model
        if n_rows is None:
            n_rows = self.partition.max_block_size()
        self.cluster.ledger.add_time(
            phase,
            model.vector_op_time(n_rows * self.n_cols, flops_per_element),
        )

    def copy(self, name: str) -> "DistributedMultiVector":
        """Deep copy under a new name (charged as a streaming block op)."""
        out = DistributedMultiVector(self.cluster, self.partition, name,
                                     self.n_cols)
        for rank in range(self.partition.n_parts):
            out.set_block(rank, self.get_block(rank).copy())
        self._charge_block_op(1.0)
        return out

    def fill(self, value: float) -> "DistributedMultiVector":
        """Set every element (all columns) to *value*."""
        for rank in range(self.partition.n_parts):
            self.get_block(rank)[:] = value
        self._charge_block_op(1.0)
        return self

    def scale(self, alpha: Coefficient) -> "DistributedMultiVector":
        """In-place ``self *= alpha`` (scalar or per-column)."""
        alpha = self._coefficient(alpha)
        for rank in range(self.partition.n_parts):
            self.get_block(rank)[:] *= alpha
        self._charge_block_op(1.0)
        return self

    def axpy(self, alpha: Coefficient,
             x: "DistributedMultiVector") -> "DistributedMultiVector":
        """In-place ``self[:, j] += alpha_j * x[:, j]`` (scalar or per-column)."""
        self._check_compatible(x)
        alpha = self._coefficient(alpha)
        for rank in range(self.partition.n_parts):
            self.get_block(rank)[:] += alpha * x.get_block(rank)
        self._charge_block_op(2.0)
        return self

    def aypx(self, alpha: Coefficient,
             x: "DistributedMultiVector") -> "DistributedMultiVector":
        """In-place ``self[:, j] = x[:, j] + alpha_j * self[:, j]``.

        The block-PCG search-direction update ``P = Z + P diag(beta)``.
        """
        self._check_compatible(x)
        alpha = self._coefficient(alpha)
        for rank in range(self.partition.n_parts):
            block = self.get_block(rank)
            block[:] = x.get_block(rank) + alpha * block
        self._charge_block_op(2.0)
        return self

    def assign(self, other: "DistributedMultiVector") -> "DistributedMultiVector":
        """In-place copy of *other*'s values into this multi-vector."""
        self._check_compatible(other)
        for rank in range(self.partition.n_parts):
            self.get_block(rank)[:] = other.get_block(rank)
        self._charge_block_op(1.0)
        return self

    # -- batched reductions --------------------------------------------------
    def dots(self, other: "DistributedMultiVector", *,
             alive_only: bool = False) -> np.ndarray:
        """The ``k`` per-column dot products through **one** batched allreduce.

        Column ``j`` of the result is bit-identical to
        ``DistributedVector.dot`` on the ``j``-th columns (each column is
        gathered into a contiguous buffer before the local dot, so the same
        BLAS kernel runs on the same data), and the per-rank partial sums are
        reduced in the same rank order.  The collective ships all ``k``
        partial dots in one payload: message count of a scalar allreduce,
        ``k``-fold volume (cf. Sec. 4.2's latency-dominated reductions).
        """
        return fused_dots([(self, other)], alive_only=alive_only)[0]

    def gram(self, other: "DistributedMultiVector", *,
             alive_only: bool = False) -> np.ndarray:
        """The ``k x k`` block Gram matrix ``self^T other`` in one allreduce.

        Each rank contributes its local ``(k, k)`` product; the collective
        ships ``k^2`` scalars in one payload per tree hop.  This is the
        reduction genuine block-Krylov recurrences (block-CG with coupled
        columns) consume; :class:`~repro.core.block_pcg.BlockPCG` only needs
        the diagonal (see :meth:`dots`).  The local products use a dense
        GEMM, so the diagonal may differ from :meth:`dots` in the last bits.
        """
        self._check_compatible(other)
        contributions: Dict[int, np.ndarray] = {}
        for rank in range(self.partition.n_parts):
            node = self.cluster.node(rank)
            if alive_only and not node.is_alive:
                continue
            block = self.get_block(rank)
            contributions[rank] = block.T @ other.get_block(rank)
        # 2k flops per stored element: each of the k^2 entries is a length
        # n_i dot, i.e. the streaming charge of k passes over the block.
        self._charge_block_op(2.0 * self.n_cols,
                              n_rows=participating_max_block_size(
                                  self.partition, contributions)
                              if alive_only else None)
        total = self.cluster.comm.allreduce_sum(contributions,
                                                alive_only=alive_only)
        return np.asarray(total, dtype=np.float64)

    def norms2(self, *, alive_only: bool = False) -> np.ndarray:
        """Per-column Euclidean norms (one batched allreduce via :meth:`dots`).

        NaN reductions propagate per column exactly like
        :meth:`DistributedVector.norm2`; only tiny negative rounding residue
        is clamped.
        """
        return norms_from_dots(self.dots(self, alive_only=alive_only))

    # -- validation ----------------------------------------------------------
    def _check_column(self, j: int) -> int:
        j = int(j)
        if not 0 <= j < self.n_cols:
            raise IndexError(f"column {j} out of range for k={self.n_cols}")
        return j

    def _check_compatible(self, other: "DistributedMultiVector") -> None:
        if other.cluster is not self.cluster:
            raise ValueError("multi-vectors live on different clusters")
        if not self.partition.is_compatible_with(other.partition):
            raise ValueError(
                "multi-vectors have incompatible partitions: "
                f"{self.partition} vs {other.partition}"
            )
        if other.n_cols != self.n_cols:
            raise ValueError(
                f"multi-vectors have different column counts: "
                f"{self.n_cols} vs {other.n_cols}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DistributedMultiVector(name={self.name!r}, n={self.partition.n}, "
            f"k={self.n_cols}, N={self.partition.n_parts})"
        )


def norms_from_dots(values: np.ndarray) -> np.ndarray:
    """Per-column norms from already-reduced ``x^T x`` values.

    The post-processing :meth:`DistributedMultiVector.norms2` applies after
    its reduction -- NaN propagates per column, tiny negative rounding
    residue is clamped -- factored out so callers that obtained the dot
    values through a fused reduction (:func:`fused_dots`) produce
    bit-identical norms.
    """
    out = np.empty(len(values))
    for j, value in enumerate(values):
        out[j] = (float("nan") if np.isnan(value)
                  else float(np.sqrt(max(value, 0.0))))
    return out


def fused_dots(pairs, *, alive_only: bool = False) -> List[np.ndarray]:
    """Per-column dots of several multi-vector pairs through **one** allreduce.

    ``fused_dots([(x1, y1), ..., (xm, ym)])`` returns the ``m`` per-column
    dot-product vectors that ``[x.dots(y) for x, y in pairs]`` would, but
    ships all ``m * k`` partial sums in a single collective: one allreduce
    message per tree hop instead of ``m`` (the volume is unchanged -- the
    same scalars move, batched).  This is the reduction-fusing lever of the
    ROADMAP ("fuse the trailing reductions"):
    :class:`~repro.core.block_pcg.BlockPCG` with ``fuse_reductions=True``
    uses it to ship ``R^T Z`` and ``R^T R`` together, dropping the
    per-iteration reduction count from 3 to 2.

    Every component is **bit-identical** to the corresponding unfused
    :meth:`DistributedMultiVector.dots` result: the local partial dots are
    computed by the same kernel on the same buffers (``dots`` itself is a
    single-pair call of this function, so there is exactly one copy of the
    kernel), and
    :meth:`~repro.cluster.communicator.Communicator.allreduce_sum`
    accumulates the concatenated payload elementwise in the same rank order
    as the separate calls.  Only the ledger differs (fewer allreduce
    messages / latency terms; the local compute charge is the sum of the
    pairs' individual charges).
    """
    pairs = [(x, y) for x, y in pairs]
    if not pairs:
        raise ValueError("fused_dots needs at least one (x, y) pair")
    first = pairs[0][0]
    for x, y in pairs:
        x._check_compatible(y)
        first._check_compatible(x)
    cluster = first.cluster
    partition = first.partition
    k = first.n_cols
    contributions: Dict[int, np.ndarray] = {}
    for rank in range(partition.n_parts):
        node = cluster.node(rank)
        if alive_only and not node.is_alive:
            continue
        parts = []
        for x, y in pairs:
            # Same contiguous-BLAS gather as ``dots`` so each component runs
            # the identical kernel on identical data.
            mine = np.ascontiguousarray(x.get_block(rank).T)
            theirs = (mine if y is x
                      else np.ascontiguousarray(y.get_block(rank).T))
            parts.append(np.array([mine[j] @ theirs[j] for j in range(k)]))
        contributions[rank] = np.concatenate(parts)
    n_rows = (participating_max_block_size(partition, contributions)
              if alive_only else None)
    for x, _ in pairs:
        x._charge_block_op(2.0, n_rows=n_rows)
    total = np.asarray(
        cluster.comm.allreduce_sum(contributions, alive_only=alive_only),
        dtype=np.float64,
    )
    return [total[i * k:(i + 1) * k].copy() for i in range(len(pairs))]
