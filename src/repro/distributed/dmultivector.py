"""Distributed multi-vectors (blocks of ``k`` right-hand sides).

A :class:`DistributedMultiVector` is the thin multi-RHS counterpart of
:class:`~repro.distributed.dvector.DistributedVector`: each node stores one
``(n_i, k)`` NumPy block of a global ``(n, k)`` dense matrix in its private
memory.  Block-Krylov and multi-RHS workloads use it with the batched
``Y = A X`` kernel of the SpMV engine
(:meth:`~repro.distributed.spmv_engine.SpmvEngine.apply_block`), which
amortizes the ghost gather and the per-rank Python dispatch over all ``k``
columns.

The wrapper deliberately stays thin -- block access, (de)assembly, and the
column views the equivalence tests need.  BLAS-1 style arithmetic lives on
:class:`DistributedVector`; lifting it to blocks is future work (see the
ROADMAP's block-Krylov item).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..cluster.cluster import VirtualCluster
from ..cluster.errors import NodeFailedError
from .partition import BlockRowPartition

#: Memory key prefix under which multi-vector blocks are stored on each node.
_MVEC_KEY = "mvec"


class DistributedMultiVector:
    """A block-row distributed ``(n, k)`` dense matrix of ``k`` vectors."""

    def __init__(self, cluster: VirtualCluster, partition: BlockRowPartition,
                 name: str, n_cols: int):
        if partition.n_parts != cluster.n_nodes:
            raise ValueError(
                f"partition has {partition.n_parts} parts but cluster has "
                f"{cluster.n_nodes} nodes"
            )
        if n_cols < 1:
            raise ValueError(f"n_cols must be positive, got {n_cols}")
        self.cluster = cluster
        self.partition = partition
        self.name = name
        self.n_cols = int(n_cols)

    # -- construction -------------------------------------------------------
    @classmethod
    def zeros(cls, cluster: VirtualCluster, partition: BlockRowPartition,
              name: str, n_cols: int) -> "DistributedMultiVector":
        """Create a distributed multi-vector of zeros."""
        mvec = cls(cluster, partition, name, n_cols)
        for rank in range(partition.n_parts):
            mvec.set_block(rank, np.zeros((partition.size_of(rank), n_cols)))
        return mvec

    @classmethod
    def from_global(cls, cluster: VirtualCluster, partition: BlockRowPartition,
                    name: str, values: np.ndarray) -> "DistributedMultiVector":
        """Distribute a global ``(n, k)`` array (setup phase, not charged)."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or values.shape[0] != partition.n:
            raise ValueError(
                f"expected a ({partition.n}, k) array, got shape {values.shape}"
            )
        mvec = cls(cluster, partition, name, values.shape[1])
        for rank in range(partition.n_parts):
            start, stop = partition.range_of(rank)
            mvec.set_block(rank, values[start:stop].copy())
        return mvec

    # -- block access -------------------------------------------------------
    def _key(self) -> tuple:
        return (_MVEC_KEY, self.name)

    def get_block(self, rank: int) -> np.ndarray:
        """``(n_i, k)`` block of *rank*; raises ``NodeFailedError`` if failed."""
        return self.cluster.node(rank).memory[self._key()]

    def set_block(self, rank: int, values: np.ndarray) -> None:
        """Overwrite the block owned by *rank*."""
        values = np.asarray(values, dtype=np.float64)
        expected = (self.partition.size_of(rank), self.n_cols)
        if values.shape != expected:
            raise ValueError(
                f"block for rank {rank} must have shape {expected}, "
                f"got {values.shape}"
            )
        self.cluster.node(rank).memory[self._key()] = values

    # -- assembly / views ---------------------------------------------------
    def to_global(self, *, allow_missing: bool = False,
                  fill_value: float = np.nan) -> np.ndarray:
        """Assemble the global ``(n, k)`` array on the driver (not charged)."""
        out = np.full((self.partition.n, self.n_cols), fill_value,
                      dtype=np.float64)
        for rank in range(self.partition.n_parts):
            start, stop = self.partition.range_of(rank)
            try:
                out[start:stop] = self.get_block(rank)
            except (NodeFailedError, KeyError):
                if not allow_missing:
                    raise
        return out

    def column(self, j: int) -> np.ndarray:
        """Global column *j* assembled on the driver (verification helper)."""
        if not 0 <= j < self.n_cols:
            raise IndexError(f"column {j} out of range for k={self.n_cols}")
        return self.to_global()[:, j]

    def available_ranks(self) -> List[int]:
        """Ranks whose block is currently readable."""
        out = []
        for rank in range(self.partition.n_parts):
            node = self.cluster.node(rank)
            if node.is_alive and self._key() in node.memory:
                out.append(rank)
        return out

    def delete(self) -> None:
        """Remove this multi-vector's blocks from all alive nodes."""
        for rank in range(self.partition.n_parts):
            node = self.cluster.node(rank)
            if node.is_alive and self._key() in node.memory:
                del node.memory[self._key()]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DistributedMultiVector(name={self.name!r}, n={self.partition.n}, "
            f"k={self.n_cols}, N={self.partition.n_parts})"
        )
