"""Distributed sparse linear algebra on the virtual cluster.

Block-row partitions, distributed vectors / multi-vectors and matrices with
node-local storage, SpMV communication contexts (generalized scatters), the
distributed SpMV kernel and its local-view execution engine (compressed ghost
columns, split-phase comm/compute overlap, batched multi-RHS kernels;
PETSc-style ``MatMult`` -- see :mod:`repro.distributed.spmv_engine`).
"""

from .comm_context import CommunicationContext, ScatterEdge
from .dmatrix import DistributedMatrix
from .dmultivector import DistributedMultiVector, fused_dots, norms_from_dots
from .dvector import DistributedVector, swap_names
from .partition import BlockRowPartition
from .spmv import (
    distributed_spmv,
    distributed_spmv_block,
    ghost_values_for,
    halo_exchange_cost,
    spmv_compute_cost,
)
from .spmv_engine import ContextMismatchError, OverlapCharge, SpmvEngine

__all__ = [
    "BlockRowPartition",
    "DistributedVector",
    "DistributedMatrix",
    "DistributedMultiVector",
    "CommunicationContext",
    "ContextMismatchError",
    "OverlapCharge",
    "ScatterEdge",
    "SpmvEngine",
    "distributed_spmv",
    "distributed_spmv_block",
    "fused_dots",
    "norms_from_dots",
    "ghost_values_for",
    "halo_exchange_cost",
    "spmv_compute_cost",
    "swap_names",
]
