"""Distributed sparse linear algebra on the virtual cluster.

Block-row partitions, distributed vectors and matrices with node-local
storage, SpMV communication contexts (generalized scatters) and the
distributed SpMV kernel.
"""

from .comm_context import CommunicationContext, ScatterEdge
from .dmatrix import DistributedMatrix
from .dvector import DistributedVector, swap_names
from .partition import BlockRowPartition
from .spmv import (
    distributed_spmv,
    ghost_values_for,
    halo_exchange_cost,
    spmv_compute_cost,
)

__all__ = [
    "BlockRowPartition",
    "DistributedVector",
    "DistributedMatrix",
    "CommunicationContext",
    "ScatterEdge",
    "distributed_spmv",
    "ghost_values_for",
    "halo_exchange_cost",
    "spmv_compute_cost",
    "swap_names",
]
