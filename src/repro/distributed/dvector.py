"""Distributed vectors with node-local block storage.

A :class:`DistributedVector` owns one NumPy block per node, stored inside that
node's private :class:`~repro.cluster.node.NodeMemory`.  This is what makes
the failure simulation meaningful: when a node fails, its block of every
dynamic vector (``x``, ``r``, ``z``, ``p``, ``Ap``) is genuinely gone and any
attempt to read it raises, so recovery code must obtain the data from
redundant copies or recompute it.

All arithmetic helpers charge the bulk-synchronous cost model: local work is
charged as the maximum over the participating nodes, and reductions go through
the communicator's allreduce (which charges the collective's cost).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..cluster.cluster import VirtualCluster
from ..cluster.cost_model import Phase
from .blockstore import NodeBlockStore, participating_max_block_size
from .partition import BlockRowPartition

#: Memory key prefix under which vector blocks are stored on each node.
_VEC_KEY = "vec"


class DistributedVector(NodeBlockStore):
    """A block-row distributed vector living in node-local memories."""

    def __init__(self, cluster: VirtualCluster, partition: BlockRowPartition,
                 name: str):
        if partition.n_parts != cluster.n_nodes:
            raise ValueError(
                f"partition has {partition.n_parts} parts but cluster has "
                f"{cluster.n_nodes} nodes"
            )
        self.cluster = cluster
        self.partition = partition
        self.name = name

    # -- construction -------------------------------------------------------
    @classmethod
    def zeros(cls, cluster: VirtualCluster, partition: BlockRowPartition,
              name: str) -> "DistributedVector":
        """Create a distributed vector of zeros."""
        vec = cls(cluster, partition, name)
        for rank in range(partition.n_parts):
            vec.set_block(rank, np.zeros(partition.size_of(rank)))
        return vec

    @classmethod
    def from_global(cls, cluster: VirtualCluster, partition: BlockRowPartition,
                    name: str, values: np.ndarray) -> "DistributedVector":
        """Distribute a global array over the nodes (setup phase, not charged)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (partition.n,):
            raise ValueError(
                f"expected a vector of length {partition.n}, got shape {values.shape}"
            )
        vec = cls(cluster, partition, name)
        for rank in range(partition.n_parts):
            start, stop = partition.range_of(rank)
            vec.set_block(rank, values[start:stop].copy())
        return vec

    # -- block access ----------------------------------------------------------
    def _key(self) -> tuple:
        return (_VEC_KEY, self.name)

    def get_block(self, rank: int) -> np.ndarray:
        """Block owned by *rank*; raises ``NodeFailedError`` if that node failed."""
        return self.cluster.node(rank).memory[self._key()]

    def set_block(self, rank: int, values: np.ndarray) -> None:
        """Overwrite the block owned by *rank*."""
        values = np.asarray(values, dtype=np.float64)
        expected = self.partition.size_of(rank)
        if values.shape != (expected,):
            raise ValueError(
                f"block for rank {rank} must have shape ({expected},), "
                f"got {values.shape}"
            )
        self.cluster.node(rank).memory[self._key()] = values

    # ``has_block`` / ``available_ranks`` / ``lost_ranks`` / ``delete`` come
    # from :class:`NodeBlockStore` (shared with ``DistributedMultiVector``).

    # -- global assembly (verification / recovery use) ---------------------------
    def to_global(self, *, allow_missing: bool = False,
                  fill_value: float = np.nan) -> np.ndarray:
        """Assemble the global vector on the driver.

        This is an orchestration/verification helper (it is *not* charged to
        the cost model); the solvers themselves only use block access and
        explicit communication.  With ``allow_missing=True`` the blocks of
        failed nodes are replaced by ``fill_value`` instead of raising.
        """
        return self._assemble(lambda block: block, (),
                              allow_missing=allow_missing,
                              fill_value=fill_value)

    # -- elementwise / BLAS-1 operations ----------------------------------------
    def _charge_vector_op(self, flops_per_element: float = 2.0,
                          phase: str = Phase.VECTOR_COMPUTE,
                          n_elements: Optional[int] = None) -> None:
        model = self.cluster.ledger.model
        if n_elements is None:
            n_elements = self.partition.max_block_size()
        self.cluster.ledger.add_time(
            phase,
            model.vector_op_time(n_elements, flops_per_element),
        )

    def copy(self, name: str) -> "DistributedVector":
        """Deep copy under a new name (charged as a streaming vector op)."""
        out = DistributedVector(self.cluster, self.partition, name)
        for rank in range(self.partition.n_parts):
            out.set_block(rank, self.get_block(rank).copy())
        self._charge_vector_op(1.0)
        return out

    def fill(self, value: float) -> "DistributedVector":
        """Set every element to *value*."""
        for rank in range(self.partition.n_parts):
            block = self.get_block(rank)
            block[:] = value
        self._charge_vector_op(1.0)
        return self

    def scale(self, alpha: float) -> "DistributedVector":
        """In-place ``self *= alpha``."""
        for rank in range(self.partition.n_parts):
            self.get_block(rank)[:] *= alpha
        self._charge_vector_op(1.0)
        return self

    def axpy(self, alpha: float, x: "DistributedVector") -> "DistributedVector":
        """In-place ``self += alpha * x``."""
        self._check_compatible(x)
        for rank in range(self.partition.n_parts):
            self.get_block(rank)[:] += alpha * x.get_block(rank)
        self._charge_vector_op(2.0)
        return self

    def aypx(self, alpha: float, x: "DistributedVector") -> "DistributedVector":
        """In-place ``self = x + alpha * self`` (the PCG search-direction update)."""
        self._check_compatible(x)
        for rank in range(self.partition.n_parts):
            block = self.get_block(rank)
            block[:] = x.get_block(rank) + alpha * block
        self._charge_vector_op(2.0)
        return self

    def assign(self, other: "DistributedVector") -> "DistributedVector":
        """In-place copy of *other*'s values into this vector."""
        self._check_compatible(other)
        for rank in range(self.partition.n_parts):
            self.get_block(rank)[:] = other.get_block(rank)
        self._charge_vector_op(1.0)
        return self

    def pointwise_multiply(self, other: "DistributedVector",
                           name: str) -> "DistributedVector":
        """Elementwise product (used by the Jacobi preconditioner)."""
        self._check_compatible(other)
        out = DistributedVector(self.cluster, self.partition, name)
        for rank in range(self.partition.n_parts):
            out.set_block(rank, self.get_block(rank) * other.get_block(rank))
        self._charge_vector_op(1.0)
        return out

    # -- reductions ---------------------------------------------------------------
    def dot(self, other: "DistributedVector", *, alive_only: bool = False) -> float:
        """Global dot product via local dots + allreduce."""
        self._check_compatible(other)
        contributions: Dict[int, float] = {}
        for rank in range(self.partition.n_parts):
            node = self.cluster.node(rank)
            if alive_only and not node.is_alive:
                continue
            contributions[rank] = float(
                self.get_block(rank) @ other.get_block(rank)
            )
        # The local compute is bulk-synchronous: the slowest *participating*
        # rank sets the pace.  On a shrunken communicator (alive_only) a dead
        # rank contributes nothing, so the global max block size must not be
        # charged when the largest rank happens to be the one that is down.
        self._charge_vector_op(2.0, n_elements=participating_max_block_size(
            self.partition, contributions) if alive_only else None)
        return float(
            self.cluster.comm.allreduce_sum(contributions, alive_only=alive_only)
        )

    def norm2(self, *, alive_only: bool = False) -> float:
        """Euclidean norm (dot with itself, then square root).

        A NaN reduction (corrupted or lost data) propagates as NaN so the
        solver surfaces the failure -- clamping it to ``0.0`` would silently
        read as "converged".  The explicit check guarantees this regardless
        of ``max()`` argument-order subtleties with NaN; only tiny negative
        rounding residue is clamped.
        """
        value = self.dot(self, alive_only=alive_only)
        if np.isnan(value):
            return float("nan")
        return float(np.sqrt(max(value, 0.0)))

    def local_norm2(self, rank: int) -> float:
        """Norm of a single block (no communication; used in diagnostics)."""
        return float(np.linalg.norm(self.get_block(rank)))

    # -- maintenance ------------------------------------------------------------------
    def rename(self, new_name: str) -> "DistributedVector":
        """Rename the vector (moves every block under the new key).

        Failed nodes cannot take part in the move; any block still sitting
        under either key on such a node predates the rename, so the stale
        keys are invalidated (see :func:`swap_names` for the rationale).
        """
        old_key = self._key()
        self.name = new_name
        new_key = self._key()
        for rank in range(self.partition.n_parts):
            node = self.cluster.node(rank)
            if not node.is_alive:
                node.memory.invalidate(old_key)
                node.memory.invalidate(new_key)
                continue
            if old_key in node.memory:
                node.memory[new_key] = node.memory.pop(old_key)
        return self

    def _check_compatible(self, other: "DistributedVector") -> None:
        if other.cluster is not self.cluster:
            raise ValueError("vectors live on different clusters")
        if not self.partition.is_compatible_with(other.partition):
            raise ValueError(
                "vectors have incompatible partitions: "
                f"{self.partition} vs {other.partition}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DistributedVector(name={self.name!r}, n={self.partition.n}, "
            f"N={self.partition.n_parts})"
        )


def swap_names(a: DistributedVector, b: DistributedVector) -> None:
    """Swap the storage of two distributed vectors without copying data.

    Used by the solvers to rotate ``p^(j)`` / ``p^(j-1)`` style pairs cheaply.

    Failed nodes cannot take part in the swap.  Their blocks were wiped at
    failure time, but if anything is still (or again) stored under either
    name -- e.g. a node that was wrongly declared dead and rejoins without a
    scrub, or a restore that re-populates memory before the swap is replayed
    -- those blocks predate the swap and would be associated with the wrong
    vector under *both* names.  Instead of silently skipping such ranks, the
    stale keys are invalidated in the raw store so a later restore cannot
    expose pre-swap data; recovery must re-create the blocks explicitly.
    """
    if a.cluster is not b.cluster or not a.partition.is_compatible_with(b.partition):
        raise ValueError("can only swap vectors on the same cluster/partition")
    for rank in range(a.partition.n_parts):
        node = a.cluster.node(rank)
        key_a, key_b = a._key(), b._key()
        if not node.is_alive:
            node.memory.invalidate(key_a)
            node.memory.invalidate(key_b)
            continue
        block_a = node.memory.get(key_a)
        block_b = node.memory.get(key_b)
        if block_b is not None:
            node.memory[key_a] = block_b
        elif key_a in node.memory:
            del node.memory[key_a]
        if block_a is not None:
            node.memory[key_b] = block_a
        elif key_b in node.memory:
            del node.memory[key_b]
