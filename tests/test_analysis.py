"""Tests for the communication-overhead and sparsity analysis (Secs. 4.2, 5)."""

import numpy as np
import pytest

from repro.analysis import (
    analyze_overhead,
    band_condition_holds,
    multiplicity_histogram,
    natural_coverage_fraction,
    overhead_bounds,
    per_round_extras,
    sparsity_report,
)
from repro.analysis.overhead import overhead_sweep
from repro.cluster import MachineModel, VirtualCluster
from repro.core.redundancy import RedundancyScheme
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
)
from repro.matrices import banded_spd, graph_laplacian_spd, poisson_2d
import scipy.sparse as sp


def make_dist(matrix, n_nodes):
    cluster = VirtualCluster(n_nodes, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(matrix.shape[0], n_nodes)
    return DistributedMatrix.from_global(cluster, partition, "A", matrix)


class TestOverheadAnalysis:
    def test_within_bounds(self):
        dist = make_dist(poisson_2d(16), 8)
        analysis = analyze_overhead(dist, 3)
        assert analysis.within_bounds
        assert analysis.lower_bound <= analysis.per_iteration_time + 1e-15
        assert analysis.per_iteration_time <= analysis.upper_bound + 1e-15

    def test_zero_overhead_for_dense_coupling(self):
        dense = sp.csr_matrix(np.ones((32, 32)) + 32 * np.eye(32))
        dist = make_dist(dense, 4)
        analysis = analyze_overhead(dist, 3)
        assert analysis.total_extra_elements == 0
        assert analysis.per_iteration_time == 0.0
        assert analysis.natural_coverage == pytest.approx(1.0)

    def test_overhead_grows_with_phi(self):
        dist = make_dist(poisson_2d(16), 8)
        sweep = overhead_sweep(dist, [1, 2, 3])
        times = [a.per_iteration_time for a in sweep]
        assert times[0] <= times[1] <= times[2]
        assert sweep[-1].total_extra_elements >= sweep[0].total_extra_elements

    def test_sparse_matrix_has_higher_relative_traffic_than_banded(self):
        # The regime distinction behind Table 2: circuit-like patterns pay far
        # more redundancy traffic relative to their halo than wide bands.
        sparse_dist = make_dist(graph_laplacian_spd(400, avg_degree=4, seed=0), 8)
        banded_dist = make_dist(banded_spd(400, half_bandwidth=60, seed=0), 8)
        a_sparse = analyze_overhead(sparse_dist, 3)
        a_banded = analyze_overhead(banded_dist, 3)
        assert a_sparse.relative_extra_traffic > a_banded.relative_extra_traffic

    def test_per_round_extras_and_bounds_helpers(self):
        dist = make_dist(poisson_2d(16), 8)
        ctx = CommunicationContext.from_matrix(dist)
        scheme = RedundancyScheme(ctx, 2)
        extras = per_round_extras(scheme)
        assert len(extras) == 2
        lower, upper = overhead_bounds(scheme, dist.cluster.topology,
                                       dist.cluster.machine)
        assert 0 <= lower <= upper

    def test_as_dict(self):
        dist = make_dist(poisson_2d(12), 6)
        d = analyze_overhead(dist, 1).as_dict()
        assert d["phi"] == 1
        assert "within_bounds" in d


class TestSparsityAnalysis:
    def test_multiplicity_histogram_total(self):
        dist = make_dist(poisson_2d(12), 6)
        ctx = CommunicationContext.from_matrix(dist)
        hist = multiplicity_histogram(ctx)
        assert sum(hist) == 144

    def test_natural_coverage_decreases_with_phi(self):
        dist = make_dist(poisson_2d(12), 6)
        ctx = CommunicationContext.from_matrix(dist)
        c1 = natural_coverage_fraction(ctx, 1)
        c3 = natural_coverage_fraction(ctx, 3)
        assert 0.0 <= c3 <= c1 <= 1.0

    def test_band_condition_dense_vs_narrow(self):
        # A matrix that couples every pair of blocks satisfies the Sec. 5
        # condition for any phi < N; a tridiagonal matrix fails it already for
        # phi = 1 because the wrap-around backup of the last rank receives
        # nothing from it.
        dense = make_dist(sp.csr_matrix(np.ones((48, 48)) + 48 * np.eye(48)), 6)
        assert band_condition_holds(dense, 3)
        from repro.matrices import poisson_1d
        narrow = make_dist(poisson_1d(240), 6)
        assert not band_condition_holds(narrow, 3)

    def test_extra_latency_messages_only_without_piggyback(self):
        # Narrow 2-D stencil with phi = 3: the +/-2-rank backups receive
        # nothing naturally, so some extras pay a latency (extra messages).
        narrow = make_dist(poisson_2d(15, 16), 6)
        assert analyze_overhead(narrow, 3).extra_messages > 0
        # Fully coupled matrix: everything piggybacks, no extra messages.
        dense = make_dist(sp.csr_matrix(np.ones((48, 48)) + 48 * np.eye(48)), 6)
        assert analyze_overhead(dense, 3).extra_messages == 0

    def test_piggyback_fraction_range(self):
        from repro.analysis.sparsity import piggyback_fraction
        ctx = CommunicationContext.from_matrix(make_dist(poisson_2d(15, 16), 6))
        frac = piggyback_fraction(RedundancyScheme(ctx, 3))
        assert 0.0 <= frac <= 1.0

    def test_sparsity_report_fields(self):
        dist = make_dist(poisson_2d(12), 6)
        report = sparsity_report(dist, 2)
        assert report.phi == 2
        assert report.n_nodes == 6
        assert 0.0 <= report.natural_coverage <= 1.0
        assert 0.0 <= report.piggyback_fraction <= 1.0
        assert len(report.unsent_per_owner) == 6
        assert report.as_dict()["phi"] == 2

    def test_band_condition_implies_no_extra_latency_messages(self):
        matrix = banded_spd(240, half_bandwidth=90, fill=0.95, seed=1)
        dist = make_dist(matrix, 6)
        if band_condition_holds(dist, 2):
            analysis = analyze_overhead(dist, 2)
            assert analysis.extra_messages == 0
