"""Tests for the resilient multi-RHS block PCG (block ESR + recovery).

Acceptance contract of the resilient block-Krylov subsystem:

* under a failure schedule striking while the columns iterate, each
  recovered column's iterates and residual history are **bit-identical** to
  a sequential :class:`ResilientPCG` solve of that column hit by the same
  schedule;
* at ``k = 1`` the run is **charge-identical** to :class:`ResilientPCG`
  (with and without failures);
* with ``phi = 0`` and no failures the run is charge-identical to
  :class:`BlockPCG`; with ``phi > 0`` the iterates stay bit-identical and
  only the redundancy phase is charged on top;
* column freezing interacts correctly with recovery: frozen columns are
  restored but stay frozen.
"""

import numpy as np
import pytest

from repro.cluster import (
    FailureEvent,
    FailureInjector,
    MachineModel,
    Phase,
    UnrecoverableStateError,
    VirtualCluster,
)
from repro.core import BlockPCG, ResilientBlockPCG, ResilientPCG
from repro.core.api import distribute_problem, solve
from repro.core.spec import BlockSpec, ResilienceSpec, SolveSpec
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMultiVector,
    DistributedVector,
)
from repro.matrices import poisson_2d
from repro.precond import make_preconditioner

N_NODES = 5


def make_problem(n_grid=16, seed=0, k=3, precond_name="block_jacobi"):
    """Fresh cluster/matrix/context/preconditioner and a random rhs block."""
    a = poisson_2d(n_grid)
    n = a.shape[0]
    partition = BlockRowPartition(n, N_NODES)
    cluster = VirtualCluster(N_NODES, machine=MachineModel(jitter_rel_std=0.0))
    from repro.distributed import DistributedMatrix

    dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    context = CommunicationContext.from_matrix(dist)
    precond = make_preconditioner(precond_name)
    precond.setup(a, partition)
    rhs_global = np.random.default_rng(seed).standard_normal((n, k))
    return a, cluster, partition, dist, context, precond, rhs_global


def resilient_block_solve(a, rhs_global, *, phi, failures=(), seed_cluster=0,
                          **kwargs):
    """One ResilientBlockPCG run on a fresh cluster (direct construction)."""
    n, k = rhs_global.shape
    partition = BlockRowPartition(n, N_NODES)
    cluster = VirtualCluster(N_NODES, machine=MachineModel(jitter_rel_std=0.0))
    from repro.distributed import DistributedMatrix

    dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    context = CommunicationContext.from_matrix(dist)
    precond = make_preconditioner("block_jacobi")
    precond.setup(a, partition)
    rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                             rhs_global)
    injector = FailureInjector([
        e if isinstance(e, FailureEvent) else FailureEvent(e[0], tuple(e[1]))
        for e in failures
    ]) if failures else None
    solver = ResilientBlockPCG(dist, rhs, precond, phi=phi,
                               failure_injector=injector, context=context,
                               **kwargs)
    return solver.solve(), cluster


def sequential_resilient_solves(a, rhs_global, *, phi, failures=(), **kwargs):
    """One fresh ResilientPCG solve per column, same failure schedule each."""
    n, k = rhs_global.shape
    results = []
    clusters = []
    for j in range(k):
        partition = BlockRowPartition(n, N_NODES)
        cluster = VirtualCluster(N_NODES,
                                 machine=MachineModel(jitter_rel_std=0.0))
        from repro.distributed import DistributedMatrix

        dist = DistributedMatrix.from_global(cluster, partition, "A", a)
        context = CommunicationContext.from_matrix(dist)
        precond = make_preconditioner("block_jacobi")
        precond.setup(a, partition)
        rhs = DistributedVector.from_global(cluster, partition, "b",
                                            rhs_global[:, j])
        injector = FailureInjector([
            e if isinstance(e, FailureEvent)
            else FailureEvent(e[0], tuple(e[1]))
            for e in failures
        ]) if failures else None
        solver = ResilientPCG(dist, rhs, precond, phi=phi,
                              failure_injector=injector, context=context,
                              **kwargs)
        results.append(solver.solve())
        clusters.append(cluster)
    return results, clusters


class TestBitIdenticalToSequentialResilient:
    @pytest.mark.parametrize("failures", [
        [(8, [2])],                        # single failure
        [(8, [1, 2])],                     # multiple simultaneous
        [(5, [0]), (14, [3])],             # sequential events
    ])
    def test_recovered_columns_bit_identical(self, failures):
        a, *_, rhs_global = make_problem(seed=0, k=3)
        block, _ = resilient_block_solve(a, rhs_global, phi=2,
                                         failures=failures)
        seq, _ = sequential_resilient_solves(a, rhs_global, phi=2,
                                             failures=failures)
        assert block.all_converged
        assert block.n_failures_recovered == \
            sum(len(r) for _, r in failures)
        for j, result in enumerate(seq):
            assert block.iterations[j] == result.iterations
            assert block.residual_histories[j] == result.residual_norms
            assert np.array_equal(block.x[:, j], result.x)

    def test_overlapping_failure_bit_identical(self):
        a, *_, rhs_global = make_problem(seed=1, k=2)
        failures = [FailureEvent(9, (1,)),
                    FailureEvent(9, (3,), during_recovery_of=0)]
        block, _ = resilient_block_solve(a, rhs_global, phi=2,
                                         failures=failures)
        seq, _ = sequential_resilient_solves(a, rhs_global, phi=2,
                                             failures=failures)
        assert block.all_converged
        assert len(block.recoveries) == 1
        assert block.recoveries[0].restarts == 1
        assert sorted(block.recoveries[0].failed_ranks) == [1, 3]
        for j, result in enumerate(seq):
            assert block.residual_histories[j] == result.residual_norms
            assert np.array_equal(block.x[:, j], result.x)

    @pytest.mark.parametrize("overlap,engine", [(True, True), (False, False)])
    def test_bit_identical_on_other_execution_paths(self, overlap, engine):
        a, *_, rhs_global = make_problem(seed=2, k=2)
        failures = [(7, [1, 2])]
        block, _ = resilient_block_solve(a, rhs_global, phi=2,
                                         failures=failures,
                                         overlap_spmv=overlap, engine=engine)
        seq, _ = sequential_resilient_solves(a, rhs_global, phi=2,
                                             failures=failures,
                                             overlap_spmv=overlap,
                                             engine=engine)
        assert block.all_converged
        for j, result in enumerate(seq):
            assert block.residual_histories[j] == result.residual_norms
            assert np.array_equal(block.x[:, j], result.x)

    def test_fused_reductions_keep_iterates_bit_identical(self):
        a, *_, rhs_global = make_problem(seed=3, k=3)
        failures = [(6, [2])]
        plain, _ = resilient_block_solve(a, rhs_global, phi=1,
                                         failures=failures)
        fused, _ = resilient_block_solve(a, rhs_global, phi=1,
                                         failures=failures,
                                         fuse_reductions=True)
        assert fused.residual_histories == plain.residual_histories
        assert np.array_equal(fused.x, plain.x)


class TestCharges:
    def test_k1_charge_identical_to_resilient_pcg_with_failures(self):
        a, *_, rhs_global = make_problem(seed=4, k=1)
        failures = [(6, [0, 3])]
        block, _ = resilient_block_solve(a, rhs_global, phi=2,
                                         failures=failures)
        (seq,), _ = sequential_resilient_solves(a, rhs_global, phi=2,
                                                failures=failures)
        assert block.residual_histories[0] == seq.residual_norms
        assert block.time_breakdown == seq.time_breakdown
        assert block.simulated_time == seq.simulated_time
        assert block.simulated_recovery_time == seq.simulated_recovery_time

    def test_k1_charge_identical_to_resilient_pcg_undisturbed(self):
        a, *_, rhs_global = make_problem(seed=5, k=1)
        block, _ = resilient_block_solve(a, rhs_global, phi=3)
        (seq,), _ = sequential_resilient_solves(a, rhs_global, phi=3)
        assert block.time_breakdown == seq.time_breakdown
        assert block.simulated_time == seq.simulated_time

    def test_phi0_charge_identical_to_block_pcg(self):
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=6, k=4)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        plain = BlockPCG(dist, rhs, precond, context=context).solve()
        resilient, _ = resilient_block_solve(a, rhs_global, phi=0)
        assert resilient.residual_histories == plain.residual_histories
        assert np.array_equal(resilient.x, plain.x)
        assert resilient.time_breakdown == plain.time_breakdown
        assert resilient.simulated_time == plain.simulated_time

    def test_undisturbed_iterates_identical_only_redundancy_extra(self):
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=7, k=3)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        plain = BlockPCG(dist, rhs, precond, context=context).solve()
        resilient, _ = resilient_block_solve(a, rhs_global, phi=2)
        assert resilient.residual_histories == plain.residual_histories
        assert np.array_equal(resilient.x, plain.x)
        differing = {
            phase for phase in set(resilient.time_breakdown)
            | set(plain.time_breakdown)
            if resilient.time_breakdown.get(phase)
            != plain.time_breakdown.get(phase)
        }
        assert differing == {Phase.REDUNDANCY_COMM}

    def test_redundancy_messages_independent_of_k_volume_scales(self):
        """The block charge model: extra redundancy messages as at k=1,
        element volume exactly k-fold."""
        a, *_, rhs1 = make_problem(seed=8, k=1)
        rhs4 = np.random.default_rng(8).standard_normal((rhs1.shape[0], 4))
        stats = {}
        for k, rhs_global in ((1, rhs1), (4, rhs4)):
            _, cluster = resilient_block_solve(
                a, rhs_global, phi=2, rtol=0.0, max_iterations=5)
            stats[k] = (
                cluster.ledger.messages.get(Phase.REDUNDANCY_COMM, 0),
                cluster.ledger.elements.get(Phase.REDUNDANCY_COMM, 0),
            )
        assert stats[1][0] == stats[4][0]
        assert stats[4][1] == 4 * stats[1][1]


class TestColumnFreezingWithRecovery:
    def test_frozen_columns_restored_but_stay_frozen(self):
        """A failure after a column converged restores the frozen column's
        blocks along with the rest but does not un-freeze it: its history
        stops where it converged and later iterations leave it untouched."""
        a, *_, rhs_global = make_problem(seed=9, k=3)
        rhs_global = rhs_global.copy()
        rhs_global[:, 0] *= 1e-13  # column 0 converges almost immediately
        atol = 1e-10

        reference, _ = resilient_block_solve(a, rhs_global, phi=2, atol=atol)
        frozen_at = reference.iterations[0]
        active_iters = max(reference.iterations)
        assert frozen_at < active_iters, "column 0 should freeze early"
        fail_at = frozen_at + 2
        assert fail_at < active_iters

        result, _ = resilient_block_solve(a, rhs_global, phi=2, atol=atol,
                                          failures=[(fail_at, [1, 2])])
        assert result.all_converged
        assert result.n_failures_recovered == 2
        # The frozen column's history is exactly the undisturbed one: the
        # recovery restored it without appending iterations.
        assert result.iterations[0] == frozen_at
        assert result.residual_histories[0] == \
            reference.residual_histories[0]
        # Its restored iterate still solves the system to the frozen
        # column's accuracy (the reconstruction is exact up to the 1e-14
        # local solver tolerance, not bit-exact for frozen columns).
        residual = np.linalg.norm(rhs_global[:, 0] - a @ result.x[:, 0])
        assert residual <= max(10 * result.info["thresholds"][0], 1e-9)

    def test_active_columns_unaffected_by_frozen_restore(self):
        """Columns still iterating when the failure strikes must match the
        sequential resilient solves hit by the same schedule, even when a
        sibling column is already frozen."""
        a, *_, rhs_global = make_problem(seed=10, k=2)
        rhs_global = rhs_global.copy()
        rhs_global[:, 0] *= 1e-13
        atol = 1e-10
        reference, _ = resilient_block_solve(a, rhs_global, phi=1, atol=atol)
        fail_at = reference.iterations[0] + 2
        assert fail_at < max(reference.iterations)

        result, _ = resilient_block_solve(a, rhs_global, phi=1, atol=atol,
                                          failures=[(fail_at, [2])])
        seq, _ = sequential_resilient_solves(
            a, rhs_global[:, 1:], phi=1, failures=[(fail_at, [2])], atol=atol)
        assert result.residual_histories[1] == seq[0].residual_norms
        assert np.array_equal(result.x[:, 1], seq[0].x)


class TestFacadeDispatch:
    def fresh_problem(self, a, rhs=None):
        return distribute_problem(a, rhs, n_nodes=N_NODES,
                                  machine=MachineModel(jitter_rel_std=0.0))

    def test_resilience_plus_block_auto_selects_resilient_block_pcg(self):
        spec = SolveSpec(resilience=ResilienceSpec(phi=1),
                         block=BlockSpec(n_cols=2))
        assert spec.resolved_solver() == "resilient_block_pcg"
        assert spec.resolved_solver(multi_rhs=True) == "resilient_block_pcg"
        assert SolveSpec(resilience=ResilienceSpec(phi=1)).resolved_solver(
            multi_rhs=True) == "resilient_block_pcg"

    def test_facade_run_equals_direct_construction(self):
        a, *_, rhs_global = make_problem(seed=11, k=2)
        failures = [(7, [1])]
        via_facade = solve(
            self.fresh_problem(a), rhs_global,
            spec=SolveSpec(resilience=ResilienceSpec(
                phi=2, failures=failures)),
        )
        direct, _ = resilient_block_solve(a, rhs_global, phi=2,
                                          failures=failures)
        assert via_facade.residual_histories == direct.residual_histories
        assert np.array_equal(via_facade.x, direct.x)
        assert via_facade.time_breakdown == direct.time_breakdown

    def test_block_pcg_still_rejects_resilience(self):
        a, *_, rhs_global = make_problem(seed=12, k=2)
        with pytest.raises(ValueError, match="resilient"):
            solve(self.fresh_problem(a), rhs_global,
                  spec=SolveSpec(solver="block_pcg",
                                 resilience=ResilienceSpec(phi=1)))

    def test_spec_roundtrip_carries_both_extensions(self):
        spec = SolveSpec(resilience=ResilienceSpec(phi=2,
                                                   failures=[(5, [1])]),
                         block=BlockSpec(n_cols=3, fuse_reductions=True))
        rebuilt = SolveSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.resolved_solver() == "resilient_block_pcg"

    def test_info_fields(self):
        a, *_, rhs_global = make_problem(seed=13, k=2)
        result, _ = resilient_block_solve(a, rhs_global, phi=2)
        assert result.info["phi"] == 2
        assert result.info["placement"] == "paper"
        assert result.info["redundancy"]["n_cols"] == 2.0


class TestValidation:
    def test_negative_phi_rejected(self):
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=14, k=2)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        with pytest.raises(ValueError):
            ResilientBlockPCG(dist, rhs, precond, phi=-1, context=context)

    def test_phi_at_least_node_count_rejected(self):
        a, cluster, partition, dist, context, precond, rhs_global = \
            make_problem(seed=15, k=2)
        rhs = DistributedMultiVector.from_global(cluster, partition, "B",
                                                 rhs_global)
        with pytest.raises(ValueError):
            ResilientBlockPCG(dist, rhs, precond, phi=N_NODES,
                              context=context)

    def test_failures_beyond_phi_unrecoverable(self):
        a, *_, rhs_global = make_problem(seed=16, k=2)
        with pytest.raises(UnrecoverableStateError):
            resilient_block_solve(a, rhs_global, phi=1,
                                  failures=[(6, [1, 2, 3])])
