"""Systematic failure-scenario matrix for the resilient solvers.

One parametrized grid replaces the ad-hoc failure scenario tests:

    {single, multiple-simultaneous, overlapping/sequential,
     failure-during-recovery}
  x {resilient_pcg, resilient_block_pcg}
  x {overlap_spmv on/off}
  x {engine on/off}

Every cell asserts the same three properties:

* **convergence** -- the solve converges and recovered exactly the scheduled
  failures;
* **recovered-state bit-equality** -- the whole failure/recovery path is
  deterministic: a rerun of the identical scenario on a fresh cluster
  produces bit-identical iterates and residual histories;
* **ledger phase sums** -- the per-phase breakdown sums to the total
  simulated time, recovery phases were actually charged, and
  iteration + recovery phases account for the entire run.

The non-default execution paths (overlap on, engine off) are marked
``slow`` and run in CI's separate non-blocking lane; the default path stays
in the blocking tier-1 lane.
"""

import numpy as np
import pytest

from repro.cluster import (
    FailureEvent,
    FailureInjector,
    MachineModel,
    Phase,
    VirtualCluster,
)
from repro.core import ResilientBlockPCG, ResilientPCG
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
    DistributedMultiVector,
    DistributedVector,
)
from repro.matrices import poisson_2d
from repro.precond import make_preconditioner

N_NODES = 4
N_GRID = 12  # n = 144
PHI = 2
K_BLOCK = 2

#: scenario name -> failure events (iteration, ranks[, during_recovery_of]).
SCENARIOS = {
    "single": [FailureEvent(5, (2,))],
    "multi_simultaneous": [FailureEvent(5, (1, 2))],
    "sequential": [FailureEvent(3, (0,)), FailureEvent(9, (3,))],
    "during_recovery": [FailureEvent(6, (1,)),
                        FailureEvent(6, (3,), during_recovery_of=0)],
}

SOLVERS = ("resilient_pcg", "resilient_block_pcg")

#: Execution paths: the default stays blocking, the rest go to the slow lane.
EXECUTION_PATHS = [
    pytest.param(False, True, id="serialized-engine"),
    pytest.param(True, True, id="overlap-engine",
                 marks=pytest.mark.slow),
    pytest.param(False, False, id="serialized-reference",
                 marks=pytest.mark.slow),
    pytest.param(True, False, id="overlap-reference",
                 marks=pytest.mark.slow),
]


def run_scenario(solver_name, events, *, overlap, engine, seed=0):
    """One resilient solve of the scenario on a completely fresh cluster."""
    a = poisson_2d(N_GRID)
    n = a.shape[0]
    partition = BlockRowPartition(n, N_NODES)
    cluster = VirtualCluster(N_NODES, machine=MachineModel(jitter_rel_std=0.0))
    dist = DistributedMatrix.from_global(cluster, partition, "A", a)
    context = CommunicationContext.from_matrix(dist)
    precond = make_preconditioner("block_jacobi")
    precond.setup(a, partition)
    injector = FailureInjector(list(events))
    rng = np.random.default_rng(seed)
    if solver_name == "resilient_pcg":
        rhs = DistributedVector.from_global(
            cluster, partition, "b", rng.standard_normal(n))
        solver = ResilientPCG(dist, rhs, precond, phi=PHI,
                              failure_injector=injector, context=context,
                              overlap_spmv=overlap, engine=engine)
    else:
        rhs = DistributedMultiVector.from_global(
            cluster, partition, "B", rng.standard_normal((n, K_BLOCK)))
        solver = ResilientBlockPCG(dist, rhs, precond, phi=PHI,
                                   failure_injector=injector, context=context,
                                   overlap_spmv=overlap, engine=engine)
    result = solver.solve()
    assert injector.all_triggered(), "scenario events must fire mid-solve"
    return result


def converged_of(result):
    converged = result.converged
    return all(converged) if isinstance(converged, list) else converged


def histories_of(result):
    if hasattr(result, "residual_histories"):
        return result.residual_histories
    return result.residual_norms


@pytest.mark.parametrize("overlap,engine", EXECUTION_PATHS)
@pytest.mark.parametrize("solver_name", SOLVERS)
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
class TestFailureMatrix:
    def test_scenario(self, scenario, solver_name, overlap, engine):
        events = SCENARIOS[scenario]
        result = run_scenario(solver_name, events,
                              overlap=overlap, engine=engine)

        # -- convergence and complete recovery ------------------------------
        assert converged_of(result)
        expected_failures = sum(len(e.ranks) for e in events)
        assert result.n_failures_recovered == expected_failures
        n_episodes = len({e.iteration for e in events
                          if e.during_recovery_of is None})
        assert len(result.recoveries) == n_episodes
        if scenario == "during_recovery":
            assert result.recoveries[0].restarts >= 1
            assert any("overlapping" in note
                       for note in result.recoveries[0].notes)

        # -- recovered-state bit-equality (deterministic recovery) ----------
        rerun = run_scenario(solver_name, events,
                             overlap=overlap, engine=engine)
        assert histories_of(rerun) == histories_of(result)
        assert np.array_equal(rerun.x, result.x)

        # -- ledger phase sums ----------------------------------------------
        breakdown = result.time_breakdown
        assert sum(breakdown.values()) == pytest.approx(
            result.simulated_time, rel=1e-12)
        recovery_sum = sum(breakdown.get(p, 0.0)
                           for p in Phase.RECOVERY_PHASES)
        assert recovery_sum == pytest.approx(result.simulated_recovery_time,
                                             rel=1e-12)
        assert result.simulated_recovery_time > 0.0
        iteration_sum = sum(breakdown.get(p, 0.0)
                            for p in Phase.ITERATION_PHASES)
        assert iteration_sum == pytest.approx(
            result.simulated_iteration_time, rel=1e-12)
        assert iteration_sum + recovery_sum == pytest.approx(
            result.simulated_time, rel=1e-12)
        assert breakdown.get(Phase.REDUNDANCY_COMM, 0.0) > 0.0


class TestScenarioResolutionIntegration:
    """The ad-hoc runnable case folded in from test_failures_scenarios.py:
    events resolved from a declarative FailureScenario drive an actual
    resilient solve end to end."""

    def test_resolved_events_runnable(self):
        from repro.core.api import distribute_problem, solve
        from repro.core.spec import ResilienceSpec, SolveSpec
        from repro.failures import FailureLocation, FailureScenario, \
            resolve_events
        from repro.matrices import poisson_2d

        scenario = FailureScenario(n_failures=2, progress_fraction=0.5,
                                   location=FailureLocation.CENTER)
        events = resolve_events(scenario, n_nodes=4, reference_iterations=30)
        problem = distribute_problem(poisson_2d(16), n_nodes=4,
                                     machine=MachineModel(jitter_rel_std=0.0))
        result = solve(problem, spec=SolveSpec(
            resilience=ResilienceSpec(phi=2, failures=events),
            preconditioner="block_jacobi"))
        assert result.converged
        assert result.n_failures_recovered == 2

    def test_resolved_events_drive_block_solves_too(self):
        """The same declarative scenario protects a multi-RHS block solve."""
        from repro.core.api import distribute_problem, solve
        from repro.core.spec import ResilienceSpec, SolveSpec
        from repro.failures import FailureLocation, FailureScenario, \
            resolve_events
        from repro.matrices import poisson_2d

        scenario = FailureScenario(n_failures=2, progress_fraction=0.5,
                                   location=FailureLocation.CENTER)
        events = resolve_events(scenario, n_nodes=4, reference_iterations=30)
        matrix = poisson_2d(16)
        problem = distribute_problem(matrix, n_nodes=4,
                                     machine=MachineModel(jitter_rel_std=0.0))
        rhs = np.random.default_rng(0).standard_normal((matrix.shape[0], 3))
        result = solve(problem, rhs, spec=SolveSpec(
            resilience=ResilienceSpec(phi=2, failures=events),
            preconditioner="block_jacobi"))
        assert result.all_converged
        assert result.n_failures_recovered == 2
