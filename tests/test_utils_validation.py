"""Tests for repro.utils.validation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_rank_list,
    check_spd_sample,
    check_square,
    check_symmetric,
)


class TestScalarChecks:
    def test_positive_ok(self):
        assert check_positive(1.5, "x") == 1.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_positive_rejects(self, value):
        with pytest.raises(ValidationError):
            check_positive(value, "x")

    def test_nonnegative_ok(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_nonnegative_rejects(self):
        with pytest.raises(ValidationError):
            check_nonnegative(-1e-9, "x")

    def test_in_range_inclusive(self):
        assert check_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert check_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_in_range_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, 0.0, 1.0, "x", inclusive=False)

    def test_in_range_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range(1.5, 0.0, 1.0, "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ValidationError, match="my_parameter"):
            check_positive(-1, "my_parameter")


class TestMatrixChecks:
    def test_square_ok(self):
        check_square(sp.identity(5))

    def test_square_rejects_rectangular(self):
        with pytest.raises(ValidationError):
            check_square(sp.csr_matrix(np.ones((3, 4))))

    def test_symmetric_ok(self):
        a = sp.random(20, 20, density=0.2, random_state=0)
        check_symmetric(a + a.T)

    def test_symmetric_rejects(self):
        a = sp.csr_matrix(np.triu(np.ones((5, 5))))
        with pytest.raises(ValidationError):
            check_symmetric(a)

    def test_spd_sample_accepts_spd(self):
        a = sp.identity(30) * 2.0
        check_spd_sample(a)

    def test_spd_sample_rejects_negative_definite(self):
        a = -sp.identity(30)
        with pytest.raises(ValidationError):
            check_spd_sample(a)

    def test_spd_sample_rejects_nonsymmetric(self):
        a = sp.csr_matrix(np.triu(np.ones((10, 10))) + 5 * np.eye(10))
        with pytest.raises(ValidationError):
            check_spd_sample(a)


class TestRankList:
    def test_valid(self):
        assert check_rank_list([0, 2, 3], 4) == [0, 2, 3]

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            check_rank_list([1, 1], 4)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            check_rank_list([0, 4], 4)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            check_rank_list([-1], 4)
