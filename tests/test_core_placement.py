"""Tests for the placement registry and the rack-aware strategies."""

import pytest

from repro.core.placement import (
    PLACEMENTS,
    BackupPlacement,
    PlacementRegistry,
    PlacementStrategy,
    RackLayout,
    normalize_placement,
    placement_name,
    resolve_placement,
)
from repro.core.redundancy import RedundancyScheme, backup_targets
from repro.core.spec import ResilienceSpec
from repro.matrices import poisson_2d

#: Every strategy shipped in the default registry (string literals on
#: purpose: the R003 lint rule requires registered names in the tests).
ALL_PLACEMENTS = ("paper", "next_ranks", "random", "rack_aware", "copyset")


class TestRegistry:
    def test_default_registry_names(self):
        assert PLACEMENTS.names() == tuple(sorted(ALL_PLACEMENTS))

    def test_get_is_case_insensitive(self):
        assert PLACEMENTS.get("PAPER") is PLACEMENTS.get("paper")

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="copyset"):
            PLACEMENTS.get("no_such_strategy")

    def test_register_decorator(self):
        registry = PlacementRegistry()

        @registry.register("mine", "test strategy")
        def _mine(owner, phi, n_nodes, *, racks=None, rng=None):
            return [(owner + k) % n_nodes for k in range(1, phi + 1)]

        strategy = registry.get("mine")
        assert isinstance(strategy, PlacementStrategy)
        assert strategy.name == "mine"
        assert strategy.value == "mine"
        assert strategy.description == "test strategy"
        assert strategy.targets(0, 2, 8) == [1, 2]

    @pytest.mark.parametrize("name", ALL_PLACEMENTS)
    def test_resolve_accepts_names_and_strategies(self, name):
        strategy = resolve_placement(name)
        assert strategy.name == name
        assert resolve_placement(strategy) is strategy

    def test_resolve_accepts_enum_members(self):
        for member in BackupPlacement:
            assert resolve_placement(member).name == member.value

    def test_normalize_legacy_names_to_enum(self):
        assert normalize_placement("paper") is BackupPlacement.PAPER
        assert normalize_placement("NEXT_RANKS") is BackupPlacement.NEXT_RANKS
        assert normalize_placement(BackupPlacement.RANDOM) \
            is BackupPlacement.RANDOM

    def test_normalize_registry_only_names_to_string(self):
        assert normalize_placement("rack_aware") == "rack_aware"
        assert normalize_placement("Copyset") == "copyset"

    def test_normalize_unknown_raises(self):
        with pytest.raises(ValueError):
            normalize_placement("no_such_strategy")

    def test_placement_name(self):
        assert placement_name(BackupPlacement.PAPER) == "paper"
        assert placement_name("rack_aware") == "rack_aware"


class TestRackLayout:
    def test_contiguous_racks(self):
        layout = RackLayout(10, 4)
        assert layout.n_racks == 3
        assert layout.ranks_in(0) == [0, 1, 2, 3]
        assert layout.ranks_in(2) == [8, 9]
        assert layout.racks() == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert [layout.rack_of(r) for r in range(10)] == \
            [0, 0, 0, 0, 1, 1, 1, 1, 2, 2]
        assert layout.position_in_rack(6) == 2

    def test_default_keeps_two_racks(self):
        assert RackLayout.default(8).rack_size == 4
        assert RackLayout.default(4).rack_size == 2
        assert RackLayout.default(2).rack_size == 1
        assert RackLayout.default(16, rack_size=8).rack_size == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            RackLayout(0, 4)
        with pytest.raises(ValueError):
            RackLayout(8, 0)
        with pytest.raises(ValueError):
            RackLayout(8, 4).rack_of(8)
        with pytest.raises(ValueError):
            RackLayout(8, 4).ranks_in(2)


class TestStrategyProperties:
    @pytest.mark.parametrize("name", ALL_PLACEMENTS)
    @pytest.mark.parametrize("n_nodes,phi,rack_size", [
        (8, 1, 4), (8, 3, 4), (8, 7, 4), (12, 3, 4), (10, 4, 3), (6, 2, 2),
    ])
    def test_distinct_non_owner_length_phi(self, name, n_nodes, phi,
                                           rack_size):
        racks = RackLayout(n_nodes, rack_size)
        for owner in range(n_nodes):
            targets = backup_targets(owner, phi, n_nodes, name, racks=racks)
            assert len(targets) == phi
            assert len(set(targets)) == phi
            assert owner not in targets

    def test_rack_aware_avoids_owner_rack(self):
        # 3 racks of 4, phi = 3: every backup fits outside the owner's rack.
        racks = RackLayout(12, 4)
        for owner in range(12):
            targets = backup_targets(owner, 3, 12, "rack_aware", racks=racks)
            assert racks.rack_of(owner) not in \
                {racks.rack_of(t) for t in targets}

    def test_rack_aware_one_backup_per_rack_first(self):
        # 4 racks of 2, phi = 3: pass 1 alone suffices, so the backups land
        # in three *distinct* foreign racks.
        racks = RackLayout(8, 2)
        for owner in range(8):
            targets = backup_targets(owner, 3, 8, "rack_aware", racks=racks)
            target_racks = [racks.rack_of(t) for t in targets]
            assert len(set(target_racks)) == 3
            assert racks.rack_of(owner) not in target_racks

    def test_rack_aware_degenerates_gracefully(self):
        # One single rack: no foreign failure domain exists; the strategy
        # must still return phi distinct non-owner ranks (pass 3).
        racks = RackLayout(6, 6)
        targets = backup_targets(2, 3, 6, "rack_aware", racks=racks)
        assert len(set(targets)) == 3 and 2 not in targets

    def test_copyset_targets_stay_in_one_copyset(self):
        # 8 nodes, phi = 3 -> two copysets of 4; backups of every owner in
        # the same group are the other three group members.
        racks = RackLayout(8, 4)
        for owner in range(8):
            targets = backup_targets(owner, 3, 8, "copyset", racks=racks)
            group = {owner} | set(targets)
            for member in sorted(group - {owner}):
                assert {member} | set(backup_targets(
                    member, 3, 8, "copyset", racks=racks)) == group

    def test_copyset_groups_span_racks(self):
        # The rack-striding order makes each copyset span both racks, so the
        # owner always has at least one backup outside its own rack.
        racks = RackLayout(8, 4)
        for owner in range(8):
            targets = backup_targets(owner, 3, 8, "copyset", racks=racks)
            assert any(racks.rack_of(t) != racks.rack_of(owner)
                       for t in targets)

    def test_copyset_off_rack_backups_first(self):
        racks = RackLayout(8, 4)
        for owner in range(8):
            targets = backup_targets(owner, 3, 8, "copyset", racks=racks)
            rack_flags = [racks.rack_of(t) == racks.rack_of(owner)
                          for t in targets]
            # Once an in-rack backup shows up, no off-rack one follows.
            assert rack_flags == sorted(rack_flags)

    def test_copyset_phi_zero(self):
        assert backup_targets(0, 0, 8, "copyset") == []

    def test_legacy_results_unchanged(self):
        # The registry refactor must not move any pre-existing placement.
        assert backup_targets(4, 4, 10, "paper") == [5, 3, 6, 2]
        assert backup_targets(6, 3, 8, "next_ranks") == [7, 0, 1]
        assert backup_targets(2, 3, 8, "random") == \
            backup_targets(2, 3, 8, BackupPlacement.RANDOM)


class TestSchemeIntegration:
    @pytest.mark.parametrize("name", ["rack_aware", "copyset"])
    def test_scheme_invariant_holds(self, name):
        from repro.cluster import MachineModel, VirtualCluster
        from repro.distributed import (
            BlockRowPartition,
            CommunicationContext,
            DistributedMatrix,
        )

        matrix = poisson_2d(12)
        cluster = VirtualCluster(8, machine=MachineModel(jitter_rel_std=0.0))
        partition = BlockRowPartition(matrix.shape[0], 8)
        dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
        context = CommunicationContext.from_matrix(dist)
        scheme = RedundancyScheme(context, 2, placement=name, rack_size=4)
        assert scheme.verify_invariant()
        assert name in scheme.describe()

    def test_solve_reports_registered_placement(self):
        import repro

        result = repro.solve(poisson_2d(12), n_nodes=8, phi=2,
                             placement="rack_aware", rack_size=4,
                             failures=[(4, [1, 5])])
        assert result.converged
        assert result.info["placement"] == "rack_aware"


class TestResilienceSpecPlacement:
    @pytest.mark.parametrize("name", ["copyset", "rack_aware"])
    def test_round_trip_registry_names(self, name):
        spec = ResilienceSpec(phi=3, placement=name, rack_size=4)
        assert spec.placement == name
        rebuilt = ResilienceSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.rack_size == 4

    def test_legacy_names_normalise_to_enum(self):
        spec = ResilienceSpec(placement="next_ranks")
        assert spec.placement is BackupPlacement.NEXT_RANKS
        assert ResilienceSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            ResilienceSpec(placement="no_such_strategy")

    def test_invalid_rack_size_rejected(self):
        with pytest.raises(ValueError):
            ResilienceSpec(rack_size=0)
