"""End-to-end integration tests spanning all subsystems.

These exercise the full pipeline -- suite matrix -> distributed problem ->
resilient solve with injected multi-node failures -> recovery -> convergence
-- the way the benchmarks and examples use the library.
"""

import numpy as np
import pytest

from repro.analysis import analyze_overhead, sparsity_report
from repro.cluster import MachineModel, Phase
from repro.core.api import distribute_problem, reference_solve, resilient_solve
from repro.core.metrics import compare_runs, residual_difference_of
from repro.failures import FailureLocation, FailureScenario, resolve_events
from repro.matrices import build_matrix


MACHINE = MachineModel(jitter_rel_std=0.0)


@pytest.fixture(scope="module", params=["M3", "M5"])
def suite_case(request):
    """A small analogue of a sparse (M3) and a dense-band (M5) suite matrix."""
    matrix = build_matrix(request.param, n=1200, seed=1)
    return request.param, matrix


class TestSuiteMatrixEndToEnd:
    def test_reference_and_resilient_agree(self, suite_case):
        matrix_id, matrix = suite_case
        reference = reference_solve(
            distribute_problem(matrix, n_nodes=8, machine=MACHINE),
            preconditioner="block_jacobi",
        )
        assert reference.converged

        scenario = FailureScenario(n_failures=3, progress_fraction=0.5,
                                   location=FailureLocation.CENTER)
        events = resolve_events(scenario, n_nodes=8,
                                reference_iterations=reference.iterations)
        resilient = resilient_solve(
            distribute_problem(matrix, n_nodes=8, machine=MACHINE),
            phi=3, failures=events, preconditioner="block_jacobi",
        )
        assert resilient.converged
        assert resilient.n_failures_recovered == 3
        comparison = compare_runs(reference, resilient)
        assert comparison.solution_relative_difference < 1e-6
        assert abs(residual_difference_of(resilient)) < 1e-3

    def test_overhead_ordering_matches_paper_regimes(self):
        """The circuit-like analogue pays more relative redundancy than the
        structural analogue -- the qualitative claim of Table 2 / Sec. 5.

        The machine model is scaled to the paper's rows-per-node regime so
        that per-iteration compute (not collective latency) sets the baseline,
        as on the real 128-node runs.
        """
        overheads = {}
        for matrix_id in ("M3", "M8"):
            matrix = build_matrix(matrix_id, n=1500, seed=0)
            scale = 8000 / (matrix.shape[0] / 8)
            machine = MACHINE.scaled(scale)
            reference = reference_solve(
                distribute_problem(matrix, n_nodes=8, machine=machine),
                preconditioner="block_jacobi",
            )
            resilient = resilient_solve(
                distribute_problem(matrix, n_nodes=8, machine=machine),
                phi=3, preconditioner="block_jacobi",
            )
            overheads[matrix_id] = (
                resilient.simulated_time - reference.simulated_time
            ) / reference.simulated_time
        assert overheads["M3"] > overheads["M8"]

    def test_analysis_consistent_with_measured_redundancy(self, suite_case):
        _, matrix = suite_case
        problem = distribute_problem(matrix, n_nodes=8, machine=MACHINE)
        analysis = analyze_overhead(problem.matrix, 2, context=problem.context)
        result = resilient_solve(problem, phi=2, preconditioner="block_jacobi")
        charged = result.time_breakdown.get(Phase.REDUNDANCY_COMM, 0.0)
        expected = analysis.per_iteration_time * result.iterations
        assert charged == pytest.approx(expected, rel=1e-6)

    def test_sparsity_report_runs(self, suite_case):
        _, matrix = suite_case
        problem = distribute_problem(matrix, n_nodes=8, machine=MACHINE)
        report = sparsity_report(problem.matrix, 3, context=problem.context)
        assert 0.0 <= report.natural_coverage <= 1.0


class TestPreconditionerVariants:
    @pytest.mark.parametrize("preconditioner, tolerance", [
        ("block_jacobi", 1e-6),
        # With inexact (ILU) block solves the operator actually applied is not
        # exactly blkdiag(A_ii), so the reconstructed residual -- and hence the
        # final true residual -- is only approximate (Sec. 6 of the paper).
        ("block_jacobi_ilu", 1e-3),
        ("jacobi", 1e-6),
        ("identity", 1e-6),
    ])
    def test_recovery_for_each_preconditioner(self, preconditioner, tolerance):
        matrix = build_matrix("M1", n=900, seed=2)
        problem = distribute_problem(matrix, n_nodes=6, machine=MACHINE)
        result = resilient_solve(problem, phi=2, preconditioner=preconditioner,
                                 failures=[(6, [2, 3])])
        assert result.converged
        assert result.n_failures_recovered == 2
        a = problem.matrix.to_global()
        b = problem.rhs.to_global()
        relres = np.linalg.norm(b - a @ result.x) / np.linalg.norm(b)
        assert relres < tolerance


class TestEightFailures:
    def test_eight_simultaneous_failures_on_16_nodes(self):
        """The paper's largest failure count: psi = phi = 8."""
        matrix = build_matrix("M4", n=1600, seed=3)
        problem = distribute_problem(matrix, n_nodes=16, machine=MACHINE)
        reference = reference_solve(
            distribute_problem(matrix, n_nodes=16, machine=MACHINE),
            preconditioner="block_jacobi",
        )
        scenario = FailureScenario(n_failures=8, progress_fraction=0.2,
                                   location=FailureLocation.CENTER)
        events = resolve_events(scenario, n_nodes=16,
                                reference_iterations=reference.iterations)
        result = resilient_solve(problem, phi=8, failures=events,
                                 preconditioner="block_jacobi")
        assert result.converged
        assert result.n_failures_recovered == 8
        assert np.allclose(result.x, reference.x, atol=1e-5)
