"""Tests for the baseline recovery strategies (C/R, interpolation, restart)."""

import numpy as np
import pytest

from repro.baselines import (
    CheckpointConfig,
    CheckpointRestartPCG,
    FullRestartPCG,
    InterpolationRecoveryPCG,
    least_squares_interpolation,
    local_interpolation,
)
from repro.cluster import FailureEvent, FailureInjector, MachineModel, Phase
from repro.core.api import distribute_problem, reference_solve
from repro.matrices import poisson_2d
from repro.precond import make_preconditioner


@pytest.fixture
def matrix():
    return poisson_2d(18)  # n = 324


def fresh(matrix, n_nodes=6):
    return distribute_problem(matrix, n_nodes=n_nodes, seed=0,
                              machine=MachineModel(jitter_rel_std=0.0))


def build(cls, problem, failures=(), **kwargs):
    precond = make_preconditioner("block_jacobi")
    precond.setup(problem.matrix.to_global(), problem.partition)
    injector = FailureInjector([FailureEvent(it, tuple(rk)) for it, rk in failures]) \
        if failures else None
    return cls(problem.matrix, problem.rhs, precond,
               failure_injector=injector, context=problem.context, **kwargs)


class TestCheckpointRestart:
    def test_failure_free_converges_with_checkpoint_overhead(self, matrix):
        problem = fresh(matrix)
        reference = reference_solve(fresh(matrix), preconditioner="block_jacobi")
        solver = build(CheckpointRestartPCG, problem,
                       config=CheckpointConfig(interval=10))
        result = solver.solve()
        assert result.converged
        assert result.iterations == reference.iterations
        assert result.time_breakdown.get(Phase.CHECKPOINT, 0.0) > 0
        assert result.simulated_time > reference.simulated_time

    def test_rollback_after_failure(self, matrix):
        problem = fresh(matrix)
        solver = build(CheckpointRestartPCG, problem, failures=[(15, [1, 2])],
                       config=CheckpointConfig(interval=10))
        result = solver.solve()
        assert result.converged
        assert result.info["rollbacks"] == 1
        # rolled back from iteration 15 to the checkpoint at 10 -> 5 lost
        assert result.info["iterations_lost"] == 5
        assert np.allclose(result.x, np.ones(problem.n), atol=1e-6)

    def test_loses_work_that_esr_does_not(self, matrix):
        from repro.core.api import resilient_solve
        reference = reference_solve(fresh(matrix), preconditioner="block_jacobi")
        cr_problem = fresh(matrix)
        cr = build(CheckpointRestartPCG, cr_problem, failures=[(14, [1, 2])],
                   config=CheckpointConfig(interval=8)).solve()
        esr = resilient_solve(fresh(matrix), phi=2, failures=[(14, [1, 2])],
                              preconditioner="block_jacobi")
        # C/R throws away the iterations since the last checkpoint (and
        # re-executes them); ESR resumes exactly where the failure struck.
        assert cr.info["iterations_lost"] == 14 - 8
        assert esr.iterations <= reference.iterations + 1

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            CheckpointConfig(interval=0)

    def test_checkpoint_count(self, matrix):
        problem = fresh(matrix)
        solver = build(CheckpointRestartPCG, problem,
                       config=CheckpointConfig(interval=20))
        result = solver.solve()
        assert result.info["checkpoints_taken"] == 1 + result.iterations // 20


class TestInterpolationRecovery:
    @pytest.mark.parametrize("method", ["li", "lsi"])
    def test_converges_after_failure(self, matrix, method):
        problem = fresh(matrix)
        solver = build(InterpolationRecoveryPCG, problem, method=method,
                       failures=[(12, [2, 3])])
        result = solver.solve()
        assert result.converged
        assert result.info["recoveries"] == 1
        assert np.allclose(result.x, np.ones(problem.n), atol=1e-6)

    def test_needs_more_iterations_than_esr(self, matrix):
        from repro.core.api import resilient_solve
        problem = fresh(matrix)
        li = build(InterpolationRecoveryPCG, problem, method="li",
                   failures=[(12, [2, 3])]).solve()
        esr = resilient_solve(fresh(matrix), phi=2, failures=[(12, [2, 3])],
                              preconditioner="block_jacobi")
        # Interpolation discards the Krylov space; ESR does not.
        assert li.iterations >= esr.iterations

    def test_invalid_method(self, matrix):
        problem = fresh(matrix)
        with pytest.raises(ValueError):
            build(InterpolationRecoveryPCG, problem, method="quadratic")

    def test_interpolation_helpers_accuracy(self, matrix):
        rng = np.random.default_rng(0)
        n = matrix.shape[0]
        x_true = rng.standard_normal(n)
        b = matrix @ x_true
        failed = np.arange(54, 108)
        li = local_interpolation(matrix, b, x_true, failed)
        lsi = least_squares_interpolation(matrix, b, x_true, failed)
        # With the exact surviving entries, both interpolations recover the
        # lost entries exactly (the residual is zero).
        assert np.allclose(li, x_true[failed], atol=1e-8)
        assert np.allclose(lsi, x_true[failed], atol=1e-6)

    def test_recovery_charges_cost(self, matrix):
        problem = fresh(matrix)
        solver = build(InterpolationRecoveryPCG, problem, method="li",
                       failures=[(10, [1])])
        result = solver.solve()
        assert result.simulated_recovery_time > 0


class TestFullRestart:
    def test_converges_after_failure(self, matrix):
        problem = fresh(matrix)
        solver = build(FullRestartPCG, problem, failures=[(15, [0, 1])])
        result = solver.solve()
        assert result.converged
        assert result.info["restarts"] == 1
        assert result.info["iterations_lost"] == 15
        assert np.allclose(result.x, np.ones(problem.n), atol=1e-6)

    def test_most_expensive_strategy(self, matrix):
        from repro.core.api import resilient_solve
        problem = fresh(matrix)
        restart = build(FullRestartPCG, problem, failures=[(15, [1, 2])]).solve()
        esr = resilient_solve(fresh(matrix), phi=2, failures=[(15, [1, 2])],
                              preconditioner="block_jacobi")
        assert restart.iterations > esr.iterations

    def test_failure_free_equals_reference_iterations(self, matrix):
        problem = fresh(matrix)
        reference = reference_solve(fresh(matrix), preconditioner="block_jacobi")
        result = build(FullRestartPCG, problem).solve()
        assert result.iterations == reference.iterations


class TestHookChaining:
    """Baseline hook overrides must chain to the base protocol (R010).

    The solver hooks are cooperative: an override that drops
    ``super().<hook>()`` silently disconnects every other participant in
    the MRO.  Regression for the overrides fixed when rule R010 landed.
    """

    CASES = [
        (CheckpointRestartPCG, {"config": CheckpointConfig(interval=10)}),
        (InterpolationRecoveryPCG, {}),
        (FullRestartPCG, {}),
    ]

    @pytest.mark.parametrize("cls,kwargs", CASES)
    def test_base_hooks_fire_through_super(self, matrix, monkeypatch,
                                           cls, kwargs):
        from repro.core.pcg import DistributedPCG
        fired = set()
        originals = {
            "_on_setup": DistributedPCG._on_setup,
            "_handle_failures": DistributedPCG._handle_failures,
            "_after_iteration": DistributedPCG._after_iteration,
        }

        def record(name):
            def hook(self, *args, **kw):
                fired.add(name)
                return originals[name](self, *args, **kw)
            return hook

        for name in originals:
            monkeypatch.setattr(DistributedPCG, name, record(name))

        problem = fresh(matrix)
        result = build(cls, problem, failures=[(12, [2])], **kwargs).solve()
        assert result.converged
        # Every base hook ran, i.e. no override swallowed the chain.
        assert fired == set(originals)

    @pytest.mark.parametrize("cls,kwargs", CASES)
    def test_recovery_restores_through_blockstore(self, matrix, cls, kwargs):
        from repro import sanitizer

        problem = fresh(matrix)
        solver = build(cls, problem, failures=[(12, [2])], **kwargs)
        with sanitizer.sanitized() as san:
            result = solver.solve()
        assert result.converged
        # Recovery writes go through restore_block, which notifies the
        # runtime sanitizer (raw set_block would leave this stat at 0).
        assert san.stats["blocks_restored"] > 0
