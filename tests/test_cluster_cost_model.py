"""Tests for the latency-bandwidth cost model and ledger."""

import numpy as np
import pytest

from repro.cluster.cost_model import (
    CostLedger,
    MachineModel,
    Phase,
    max_over_nodes,
    sum_over_nodes,
)


@pytest.fixture
def model():
    return MachineModel(jitter_rel_std=0.0)


@pytest.fixture
def ledger(model):
    return CostLedger(model=model)


class TestMachineModel:
    def test_message_time_formula(self, model):
        latency, k = 2e-6, 100
        expected = latency + k * model.element_transfer_time
        assert model.message_time(latency, k) == pytest.approx(expected)

    def test_message_time_zero_elements_is_free(self, model):
        assert model.message_time(1e-6, 0) == 0.0

    def test_spmv_time_scales_with_nnz(self, model):
        assert model.spmv_time(2000) == pytest.approx(2 * model.spmv_time(1000))

    def test_vector_op_time(self, model):
        assert model.vector_op_time(1000, 2.0) == pytest.approx(
            2000 / model.vector_flop_rate
        )

    def test_allreduce_grows_with_nodes(self, model):
        assert model.allreduce_time(16) > model.allreduce_time(4)

    def test_allreduce_single_node_free(self, model):
        assert model.allreduce_time(1) == 0.0

    def test_allreduce_log_scaling(self, model):
        # 8 nodes -> 3 levels, 2 nodes -> 1 level
        assert model.allreduce_time(8, 1) == pytest.approx(
            3 * model.allreduce_time(2, 1)
        )

    def test_storage_time(self, model):
        assert model.storage_retrieve_time(0) == 0.0
        assert model.storage_retrieve_time(10) > model.storage_latency

    def test_invalid_parameters_rejected(self):
        with pytest.raises(Exception):
            MachineModel(latency_intra=-1.0)
        with pytest.raises(Exception):
            MachineModel(spmv_flop_rate=0.0)


class TestCostLedger:
    def test_add_and_total(self, ledger):
        ledger.add_time(Phase.SPMV_COMPUTE, 1.0)
        ledger.add_time(Phase.HALO_COMM, 0.5)
        assert ledger.total_time() == pytest.approx(1.5)

    def test_negative_time_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.add_time(Phase.SPMV_COMPUTE, -1.0)

    def test_phase_filtering(self, ledger):
        ledger.add_time(Phase.SPMV_COMPUTE, 1.0)
        ledger.add_time(Phase.RECOVERY_COMM, 2.0)
        assert ledger.iteration_time() == pytest.approx(1.0)
        assert ledger.recovery_time() == pytest.approx(2.0)

    def test_traffic_counters(self, ledger):
        ledger.add_traffic(Phase.HALO_COMM, 3, 300)
        ledger.add_traffic(Phase.HALO_COMM, 2, 200)
        assert ledger.total_messages() == 5
        assert ledger.total_elements() == 500
        assert ledger.total_elements([Phase.RECOVERY_COMM]) == 0

    def test_snapshot_and_since(self, ledger):
        ledger.add_time(Phase.SPMV_COMPUTE, 1.0)
        snap = ledger.snapshot()
        ledger.add_time(Phase.SPMV_COMPUTE, 0.25)
        ledger.add_time(Phase.HALO_COMM, 0.5)
        assert ledger.since(snap) == pytest.approx(0.75)
        assert ledger.since(snap, [Phase.HALO_COMM]) == pytest.approx(0.5)

    def test_since_accumulates_in_sorted_key_order(self, ledger):
        """Regression (lint R005): ``since`` must sum per-phase deltas in
        sorted-key order, not set-iteration order -- float addition does not
        commute bitwise and set order is hash-randomised per process."""
        deltas = {
            Phase.SPMV_COMPUTE: 0.1,
            Phase.HALO_COMM: 1e-17,
            Phase.ALLREDUCE_COMM: 0.3,
            Phase.RECOVERY_COMM: 1e-16,
            Phase.VECTOR_COMPUTE: 0.7,
        }
        snap = ledger.snapshot()
        for phase, delta in deltas.items():
            ledger.add_time(phase, delta)
        expected = 0.0
        for phase in sorted(deltas):
            expected += deltas[phase]
        assert ledger.since(snap) == expected  # exact, not approx

    def test_reset(self, ledger):
        ledger.add_time(Phase.SPMV_COMPUTE, 1.0)
        ledger.add_traffic(Phase.SPMV_COMPUTE, 1, 1)
        ledger.reset()
        assert ledger.total_time() == 0.0
        assert ledger.total_messages() == 0

    def test_merge(self, model):
        a = CostLedger(model=model)
        b = CostLedger(model=model)
        a.add_time(Phase.SPMV_COMPUTE, 1.0)
        b.add_time(Phase.SPMV_COMPUTE, 2.0)
        b.add_traffic(Phase.HALO_COMM, 1, 10)
        a.merge(b)
        assert a.total_time() == pytest.approx(3.0)
        assert a.total_messages() == 1

    def test_breakdown_sorted(self, ledger):
        ledger.add_time(Phase.HALO_COMM, 1.0)
        ledger.add_time(Phase.SPMV_COMPUTE, 1.0)
        assert list(ledger.breakdown().keys()) == sorted(ledger.times.keys())

    def test_jitter_applied_when_rng_set(self, model):
        noisy_model = MachineModel(jitter_rel_std=0.2)
        ledger = CostLedger(model=noisy_model, rng=np.random.default_rng(0))
        charged = [ledger.add_time(Phase.SPMV_COMPUTE, 1.0) for _ in range(20)]
        assert len(set(charged)) > 1
        assert all(c > 0 for c in charged)


class TestHelpers:
    def test_max_over_nodes(self):
        assert max_over_nodes([1.0, 3.0, 2.0]) == 3.0
        assert max_over_nodes([]) == 0.0

    def test_sum_over_nodes(self):
        assert sum_over_nodes([1.0, 2.0]) == pytest.approx(3.0)
        assert sum_over_nodes([]) == 0.0
