"""Shared fixtures for the test suite.

The tests run against small problems (a few hundred unknowns, 4-8 virtual
nodes) so the whole suite stays fast while still exercising every code path
of the library, including multi-node failures and reconstruction.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - only hit in uninstalled checkouts
        sys.path.insert(0, str(_SRC))

from repro.cluster import MachineModel, VirtualCluster  # noqa: E402
from repro.core.api import distribute_problem  # noqa: E402
from repro.matrices import generators  # noqa: E402
from repro.precond import make_preconditioner  # noqa: E402


@pytest.fixture
def rng():
    """Deterministic RNG for tests that need random data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_poisson():
    """2-D Poisson matrix with 256 unknowns (16 x 16 grid)."""
    return generators.poisson_2d(16)


@pytest.fixture
def medium_poisson():
    """2-D Poisson matrix with 576 unknowns (24 x 24 grid)."""
    return generators.poisson_2d(24)


@pytest.fixture
def irregular_spd(rng):
    """Graph-Laplacian-style SPD matrix with an irregular pattern."""
    return generators.graph_laplacian_spd(300, avg_degree=4.0, rng=rng)


@pytest.fixture
def wide_band_spd():
    """Structural-style SPD matrix with a wide band (many nnz per row)."""
    return generators.elasticity_3d(5, 5, 5, dofs_per_node=3, seed=3)


@pytest.fixture
def small_cluster():
    """A 4-node cluster with deterministic (jitter-free) cost model."""
    return VirtualCluster(4, machine=MachineModel(jitter_rel_std=0.0), seed=0)


@pytest.fixture
def cluster8():
    """An 8-node cluster with deterministic cost model."""
    return VirtualCluster(8, machine=MachineModel(jitter_rel_std=0.0), seed=0)


@pytest.fixture
def poisson_problem(medium_poisson):
    """A distributed 576-unknown Poisson problem on 6 nodes."""
    return distribute_problem(medium_poisson, n_nodes=6, seed=0,
                              machine=MachineModel(jitter_rel_std=0.0))


@pytest.fixture
def poisson_problem_factory(medium_poisson):
    """Factory for fresh distributed Poisson problems (state isolation)."""

    def factory(n_nodes: int = 6, matrix=None, rhs=None, seed: int = 0):
        target = medium_poisson if matrix is None else matrix
        return distribute_problem(
            target, rhs, n_nodes=n_nodes, seed=seed,
            machine=MachineModel(jitter_rel_std=0.0),
        )

    return factory


@pytest.fixture
def block_jacobi_factory():
    """Factory producing a fresh block-Jacobi preconditioner per call."""

    def factory(matrix, partition):
        preconditioner = make_preconditioner("block_jacobi")
        preconditioner.setup(sp.csr_matrix(matrix), partition)
        return preconditioner

    return factory
