"""Tests for the SpMV communication context (S_i, S_ik, R^c_i, m_i)."""

import numpy as np
import scipy.sparse as sp

from repro.cluster import MachineModel, VirtualCluster
from repro.distributed import (
    BlockRowPartition,
    CommunicationContext,
    DistributedMatrix,
)
from repro.matrices import poisson_2d, graph_laplacian_spd


def make_context(matrix, n_nodes):
    cluster = VirtualCluster(n_nodes, machine=MachineModel(jitter_rel_std=0.0))
    partition = BlockRowPartition(matrix.shape[0], n_nodes)
    dist = DistributedMatrix.from_global(cluster, partition, "A", matrix)
    return dist, CommunicationContext.from_matrix(dist)


class TestFromMatrix:
    def test_tridiagonal_neighbours_only(self):
        # 1-D Laplacian: each node only exchanges one element with each
        # neighbouring node.
        from repro.matrices import poisson_1d
        a = poisson_1d(16)
        _, ctx = make_context(a, 4)
        assert ctx.send_count(0, 1) == 1
        assert ctx.send_count(1, 0) == 1
        assert ctx.send_count(0, 2) == 0
        assert ctx.send_count(0, 3) == 0

    def test_send_indices_are_owned_by_sender(self):
        a = poisson_2d(10)
        dist, ctx = make_context(a, 5)
        partition = dist.partition
        for edge in ctx.edges():
            owners = partition.owner_of(edge.indices)
            assert np.all(owners == edge.src)

    def test_receiver_needs_exactly_the_sent_indices(self):
        a = poisson_2d(10)
        dist, ctx = make_context(a, 5)
        partition = dist.partition
        for dst in range(5):
            needed = dist.needed_column_indices(dst)
            needed_remote = needed[partition.owner_of(needed) != dst]
            received = np.concatenate([
                ctx.send_indices(src, dst) for src in ctx.senders_to(dst)
            ]) if ctx.senders_to(dst) else np.empty(0, dtype=np.int64)
            assert np.array_equal(np.sort(received), np.sort(needed_remote))

    def test_dense_matrix_all_to_all(self):
        a = sp.csr_matrix(np.ones((12, 12)) + 12 * np.eye(12))
        _, ctx = make_context(a, 4)
        for i in range(4):
            for k in range(4):
                if i != k:
                    assert ctx.send_count(i, k) == 3

    def test_block_diagonal_matrix_no_communication(self):
        blocks = [sp.identity(5) * 2 for _ in range(4)]
        a = sp.block_diag(blocks, format="csr")
        _, ctx = make_context(a, 4)
        assert ctx.total_messages() == 0
        assert ctx.total_exchanged_elements() == 0


class TestPaperQuantities:
    def test_multiplicity_matches_edges(self):
        a = poisson_2d(12)
        dist, ctx = make_context(a, 6)
        partition = dist.partition
        for owner in range(6):
            m = ctx.multiplicity(owner)
            start, _ = partition.range_of(owner)
            # recompute directly
            expected = np.zeros(partition.size_of(owner), dtype=int)
            for dst in ctx.receivers_of(owner):
                expected[ctx.send_indices(owner, dst) - start] += 1
            assert np.array_equal(m, expected)

    def test_unsent_indices_complement(self):
        a = poisson_2d(12)
        dist, ctx = make_context(a, 6)
        for owner in range(6):
            m = ctx.multiplicity(owner)
            assert ctx.unsent_indices(owner).size == int(np.sum(m == 0))

    def test_natural_copy_count(self):
        a = poisson_2d(12)
        _, ctx = make_context(a, 6)
        for owner in range(6):
            assert ctx.natural_copy_count(owner, 1) == \
                int(np.sum(ctx.multiplicity(owner) >= 1))
            assert ctx.natural_copy_count(owner, 99) == 0

    def test_interior_elements_never_sent_for_banded_matrix(self):
        a = poisson_2d(16)  # bandwidth 16, block size 64
        _, ctx = make_context(a, 4)
        # Most elements of each block are interior and never communicated.
        for owner in range(4):
            assert ctx.unsent_indices(owner).size > 0

    def test_irregular_matrix_has_high_multiplicity(self):
        a = graph_laplacian_spd(200, avg_degree=6, long_range_fraction=0.5, seed=1)
        _, ctx = make_context(a, 8)
        total_sent = sum(
            int(np.sum(ctx.multiplicity(o) >= 1)) for o in range(8)
        )
        assert total_sent > 0


class TestReversePlan:
    def test_holders_of_block(self):
        a = poisson_2d(10)
        _, ctx = make_context(a, 5)
        holders = ctx.holders_of_block(2)
        assert set(holders.keys()) == set(ctx.receivers_of(2))

    def test_holders_exclude(self):
        a = poisson_2d(10)
        _, ctx = make_context(a, 5)
        receivers = ctx.receivers_of(2)
        if receivers:
            excluded = receivers[0]
            holders = ctx.holders_of_block(2, exclude=[excluded])
            assert excluded not in holders


class TestSummaries:
    def test_edge_count_matrix(self):
        a = poisson_2d(10)
        _, ctx = make_context(a, 5)
        mat = ctx.edge_count_matrix()
        assert mat.shape == (5, 5)
        assert np.all(mat.diagonal() == 0)
        assert mat.sum() == ctx.total_exchanged_elements()

    def test_incoming_counts(self):
        a = poisson_2d(10)
        _, ctx = make_context(a, 5)
        for dst in range(5):
            incoming = ctx.incoming_counts(dst)
            assert sum(incoming.values()) == sum(
                ctx.send_count(src, dst) for src in range(5) if src != dst
            )

    def test_describe(self):
        a = poisson_2d(10)
        _, ctx = make_context(a, 5)
        assert "messages" in ctx.describe()
