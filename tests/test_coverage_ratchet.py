"""Tests for tools/coverage_ratchet.py (total floor + required_modules)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "coverage_ratchet", REPO_ROOT / "tools" / "coverage_ratchet.py")
ratchet = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("coverage_ratchet", ratchet)
_SPEC.loader.exec_module(ratchet)


def write_coverage(path, total, files=None):
    data = {"totals": {"percent_covered": total}, "files": files or {}}
    path.write_text(json.dumps(data))
    return path


def file_entry(num_statements, covered_lines):
    return {"summary": {"num_statements": num_statements,
                        "covered_lines": covered_lines}}


def write_ratchet(path, floor, required=None):
    data = {"min_line_coverage_percent": floor}
    if required is not None:
        data["required_modules"] = required
    path.write_text(json.dumps(data))
    return path


class TestTotalFloor:
    def test_pass_above_floor(self, tmp_path):
        cov = write_coverage(tmp_path / "c.json", 85.0)
        rat = write_ratchet(tmp_path / "r.json", 80.0)
        assert ratchet.main(["check", str(cov), str(rat)]) == 0

    def test_fail_below_floor(self, tmp_path, capsys):
        cov = write_coverage(tmp_path / "c.json", 70.0)
        rat = write_ratchet(tmp_path / "r.json", 80.0)
        assert ratchet.main(["check", str(cov), str(rat)]) == 1
        assert "regressed" in capsys.readouterr().err

    def test_update_never_lowers(self, tmp_path):
        cov = write_coverage(tmp_path / "c.json", 70.0)
        rat = write_ratchet(tmp_path / "r.json", 80.0)
        assert ratchet.main(["update", str(cov), str(rat)]) == 0
        assert json.loads(rat.read_text())["min_line_coverage_percent"] == 80.0

    def test_update_raises_with_margin(self, tmp_path):
        cov = write_coverage(tmp_path / "c.json", 90.0)
        rat = write_ratchet(tmp_path / "r.json", 80.0)
        ratchet.main(["update", str(cov), str(rat)])
        floor = json.loads(rat.read_text())["min_line_coverage_percent"]
        assert floor == pytest.approx(90.0 - ratchet.MARGIN)


class TestRequiredModules:
    FILES = {
        "src/repro/lint/engine.py": file_entry(100, 90),
        "src/repro/lint/cli.py": file_entry(50, 45),
        "src/repro/sanitizer.py": file_entry(200, 180),
        "src/repro/core/pcg.py": file_entry(10, 1),
    }

    def test_present_and_above_floor_passes(self, tmp_path):
        cov = write_coverage(tmp_path / "c.json", 90.0, self.FILES)
        rat = write_ratchet(tmp_path / "r.json", 80.0,
                            {"repro/lint": 85.0, "repro/sanitizer.py": 85.0})
        assert ratchet.main(["check", str(cov), str(rat)]) == 0

    def test_package_percent_aggregates_across_files(self, tmp_path):
        percents = ratchet.module_percents(
            write_coverage(tmp_path / "c.json", 90.0, self.FILES),
            {"repro/lint": 0.0})
        n_files, percent = percents["repro/lint"]
        assert n_files == 2
        assert percent == pytest.approx(100.0 * (90 + 45) / (100 + 50))

    def test_missing_module_fails(self, tmp_path, capsys):
        files = dict(self.FILES)
        del files["src/repro/sanitizer.py"]
        cov = write_coverage(tmp_path / "c.json", 90.0, files)
        rat = write_ratchet(tmp_path / "r.json", 80.0,
                            {"repro/sanitizer.py": 85.0})
        assert ratchet.main(["check", str(cov), str(rat)]) == 1
        assert "absent from the coverage report" in capsys.readouterr().err

    def test_module_below_its_floor_fails(self, tmp_path, capsys):
        files = dict(self.FILES)
        files["src/repro/sanitizer.py"] = file_entry(200, 100)
        cov = write_coverage(tmp_path / "c.json", 90.0, files)
        rat = write_ratchet(tmp_path / "r.json", 80.0,
                            {"repro/sanitizer.py": 85.0})
        assert ratchet.main(["check", str(cov), str(rat)]) == 1
        assert "below its floor" in capsys.readouterr().err

    def test_prefix_does_not_match_siblings(self, tmp_path):
        files = {"src/repro/lint_extras/other.py": file_entry(10, 0),
                 "src/repro/lint/engine.py": file_entry(10, 10)}
        percents = ratchet.module_percents(
            write_coverage(tmp_path / "c.json", 90.0, files),
            {"repro/lint": 0.0})
        assert percents["repro/lint"] == (1, 100.0)

    def test_paths_without_src_prefix_also_match(self, tmp_path):
        files = {"repro/sanitizer.py": file_entry(10, 10)}
        percents = ratchet.module_percents(
            write_coverage(tmp_path / "c.json", 90.0, files),
            {"repro/sanitizer.py": 0.0})
        assert percents["repro/sanitizer.py"] == (1, 100.0)

    def test_update_preserves_required_modules(self, tmp_path):
        cov = write_coverage(tmp_path / "c.json", 90.0, self.FILES)
        required = {"repro/lint": 85.0, "repro/sanitizer.py": 85.0}
        rat = write_ratchet(tmp_path / "r.json", 80.0, required)
        assert ratchet.main(["update", str(cov), str(rat)]) == 0
        assert json.loads(rat.read_text())["required_modules"] == required


class TestCommittedRatchetFile:
    def test_repo_ratchet_requires_lint_and_sanitizer(self):
        data = json.loads((REPO_ROOT / ".coverage-ratchet.json").read_text())
        required = data["required_modules"]
        assert "repro/lint" in required
        assert "repro/sanitizer.py" in required
        # The reliability-campaign layer stays under per-module floors too.
        assert "repro/core/placement.py" in required
        assert "repro/failures/traces.py" in required
        assert "repro/harness/campaign.py" in required
