"""Tests for the Monte-Carlo reliability campaign harness."""

import json
import os
import time

import pytest

from repro.failures.traces import LifetimeModel, TraceSpec
from repro.harness.campaign import (
    OUTCOME_KINDS,
    CampaignResult,
    CampaignSpec,
    RunOutcome,
    run_campaign,
    run_single,
)

QUIET_TRACE = TraceSpec(n_nodes=8, horizon=20, rack_size=4,
                        lifetime=LifetimeModel(scale=1e9))

BURSTY_TRACE = TraceSpec(n_nodes=8, horizon=20, burst_rate=0.08, rack_size=4,
                         lifetime=LifetimeModel(scale=200.0))


def small_spec(**overrides):
    defaults = dict(matrix_id="M3", matrix_size=96, n_nodes=8, phi=3,
                    placement="rack_aware", rack_size=4, rtol=1e-6,
                    trace=BURSTY_TRACE, n_runs=6, seed=3, timeout_s=60.0)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


# -- injectable run functions (module level: pool workers pickle them) --------

def _fake_ok_run(payload, index):
    return {"index": index, "kind": "converged", "iterations": 5,
            "simulated_time": 2.0 + 0.1 * index, "n_recoveries": 1,
            "n_events": 1, "n_failures": 2}


def _raise_on_two(payload, index):
    if index == 2:
        raise RuntimeError("boom")
    return _fake_ok_run(payload, index)


def _die_on_one(payload, index):
    if index == 1:
        os._exit(13)
    return _fake_ok_run(payload, index)


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(n_runs=0)
        with pytest.raises(ValueError):
            small_spec(phi=8)
        with pytest.raises(ValueError):
            small_spec(timeout_s=-1.0)
        with pytest.raises(ValueError):
            small_spec(trace=TraceSpec(n_nodes=4))

    def test_round_trip(self):
        spec = small_spec()
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()
        with pytest.raises(ValueError):
            CampaignSpec.from_dict({"bogus": 1})

    def test_run_seeds_stable_and_distinct(self):
        spec = small_spec()
        seeds = [spec.run_seed(i) for i in range(16)]
        assert seeds == [spec.run_seed(i) for i in range(16)]
        assert len(set(seeds)) == len(seeds)
        assert seeds != [small_spec(seed=99).run_seed(i) for i in range(16)]

    def test_solve_spec_carries_resilience(self):
        solve_spec = small_spec().solve_spec()
        assert solve_spec.resilience.phi == 3
        assert solve_spec.resilience.placement == "rack_aware"
        assert solve_spec.resilience.rack_size == 4


class TestRunOutcome:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RunOutcome(index=0, kind="exploded")

    def test_round_trip(self):
        outcome = RunOutcome(index=3, kind="unrecoverable",
                             loss_iteration=7, n_events=2, n_failures=5,
                             detail="x")
        assert RunOutcome.from_dict(outcome.to_dict()) == outcome
        with pytest.raises(ValueError):
            RunOutcome.from_dict({"index": 0, "kind": "error", "bogus": 1})

    def test_survival_classification(self):
        assert RunOutcome(index=0, kind="converged").survived
        assert RunOutcome(index=0, kind="not_converged").survived
        for kind in ("unrecoverable", "timeout", "error", "worker_crashed"):
            assert not RunOutcome(index=0, kind=kind).survived


class TestRunSingle:
    def test_bad_payload_is_structured_error(self):
        outcome = run_single({"bogus": 1}, 4)
        assert outcome["kind"] == "error"
        assert outcome["index"] == 4

    def test_bad_matrix_is_structured_error(self):
        outcome = run_single(small_spec(matrix_id="NOPE").to_dict(), 0)
        assert outcome["kind"] == "error"
        assert "NOPE" in outcome["detail"]

    def test_quiet_trace_converges(self):
        outcome = run_single(small_spec(trace=QUIET_TRACE).to_dict(), 0)
        assert outcome["kind"] == "converged"
        assert outcome["n_events"] == 0
        assert outcome["n_recoveries"] == 0
        assert outcome["simulated_time"] > 0.0

    def test_alarm_interrupts_overrunning_run(self):
        from repro.harness.campaign import (
            _RunTimeout,
            _clear_alarm,
            _install_alarm,
        )

        previous = _install_alarm(0.05)
        try:
            with pytest.raises(_RunTimeout):
                deadline = time.time() + 5.0
                while time.time() < deadline:
                    pass
        finally:
            _clear_alarm(previous)


class TestRunCampaign:
    def test_inline_deterministic(self):
        spec = small_spec()
        a = run_campaign(spec, workers=0).aggregate()
        b = run_campaign(spec, workers=0).aggregate()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_pool_matches_inline(self):
        spec = small_spec()
        inline = run_campaign(spec, workers=0).aggregate()
        pooled = run_campaign(spec, workers=2).aggregate()
        assert json.dumps(inline, sort_keys=True) == \
            json.dumps(pooled, sort_keys=True)

    def test_unrecoverable_runs_classified(self):
        # phi = 1 cannot absorb a 4-rank burst: losses must come back as
        # typed outcomes with the loss iteration, never as exceptions.
        spec = small_spec(phi=1, placement="paper", n_runs=8,
                          trace=TraceSpec(n_nodes=8, horizon=20,
                                          burst_rate=0.2, rack_size=4,
                                          lifetime=LifetimeModel(scale=1e9)))
        result = run_campaign(spec, workers=0)
        counts = result.counts()
        assert counts["unrecoverable"] > 0
        assert counts["error"] == counts["worker_crashed"] == 0
        assert result.loss_iteration_stats() is not None
        for outcome in result.outcomes:
            if outcome.kind == "unrecoverable":
                assert outcome.loss_iteration is not None
                assert outcome.detail

    def test_outcomes_ordered_and_complete(self):
        result = run_campaign(small_spec(), workers=0)
        assert [o.index for o in result.outcomes] == list(range(6))
        assert sum(result.counts().values()) == 6

    def test_injected_exception_isolated_inline(self):
        result = run_campaign(small_spec(), workers=0, run_fn=_raise_on_two)
        assert result.outcomes[2].kind == "worker_crashed"
        assert "boom" in result.outcomes[2].detail
        assert all(result.outcomes[i].kind == "converged"
                   for i in range(6) if i != 2)

    def test_injected_exception_isolated_in_pool(self):
        result = run_campaign(small_spec(), workers=2, run_fn=_raise_on_two)
        assert result.outcomes[2].kind == "worker_crashed"
        assert all(result.outcomes[i].kind == "converged"
                   for i in range(6) if i != 2)

    def test_dead_worker_isolated_in_pool(self):
        # A worker that dies mid-run breaks the shared pool; the campaign
        # must retry the innocent runs in isolation and pin the crash on
        # exactly the misbehaving one.
        result = run_campaign(small_spec(), workers=2, run_fn=_die_on_one)
        assert result.outcomes[1].kind == "worker_crashed"
        assert all(result.outcomes[i].kind == "converged"
                   for i in range(6) if i != 1)


class TestAggregation:
    def fake_result(self, kinds):
        spec = small_spec(n_runs=len(kinds))
        outcomes = tuple(
            RunOutcome(index=i, kind=kind,
                       iterations=10 if kind == "converged" else None,
                       simulated_time=4.0 + i if kind == "converged" else None,
                       n_recoveries=1 if kind == "converged" else 0,
                       loss_iteration=5 if kind == "unrecoverable" else None)
            for i, kind in enumerate(kinds)
        )
        baseline = RunOutcome(index=-1, kind="converged", iterations=8,
                              simulated_time=4.0)
        return CampaignResult(spec=spec, baseline=baseline, outcomes=outcomes)

    def test_probabilities(self):
        result = self.fake_result(["converged", "converged", "not_converged",
                                   "unrecoverable"])
        assert result.survival_probability == 0.75
        assert result.unrecoverable_probability == 0.25
        assert result.converged_fraction == 0.5
        assert result.counts()["timeout"] == 0
        assert set(result.counts()) == set(OUTCOME_KINDS)

    def test_overhead_over_converged_runs(self):
        result = self.fake_result(["converged", "converged", "unrecoverable"])
        overhead = result.overhead_percentiles()
        # simulated times 4.0 and 5.0 over a 4.0 baseline: 0 % and 25 %.
        assert overhead["p50"] == pytest.approx(12.5)
        assert overhead["max"] == pytest.approx(25.0)

    def test_overhead_none_without_converged_runs(self):
        assert self.fake_result(["unrecoverable"]).overhead_percentiles() \
            is None

    def test_aggregate_is_json_serializable(self):
        aggregate = self.fake_result(["converged", "unrecoverable",
                                      "worker_crashed"]).aggregate()
        assert json.loads(json.dumps(aggregate)) == aggregate
        assert aggregate["loss_iteration"]["p50"] == 5.0

    def test_describe_mentions_counts(self):
        text = self.fake_result(["converged", "unrecoverable"]).describe()
        assert "survival=0.500" in text and "unrecoverable=1" in text
