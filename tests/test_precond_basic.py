"""Tests for identity, Jacobi preconditioners and the factory."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.distributed import BlockRowPartition
from repro.matrices import poisson_2d
from repro.precond import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    PreconditionerForm,
    describe_all,
    make_preconditioner,
    PRECONDITIONERS,
)


@pytest.fixture
def matrix():
    return poisson_2d(8)  # n = 64


class TestIdentity:
    def test_apply_is_copy(self, matrix):
        p = IdentityPreconditioner()
        p.setup(matrix)
        r = np.arange(64.0)
        z = p.apply(r)
        assert np.array_equal(z, r)
        assert z is not r

    def test_apply_block(self, matrix):
        p = IdentityPreconditioner()
        p.setup(matrix, BlockRowPartition(64, 4))
        block = np.ones(16)
        assert np.array_equal(p.apply_block(0, block), block)

    def test_form_and_rows(self, matrix):
        p = IdentityPreconditioner()
        p.setup(matrix)
        assert p.form is PreconditionerForm.IDENTITY
        rows = p.forward_rows(np.array([3, 10]))
        assert rows.shape == (2, 64)
        assert rows[0, 3] == 1.0 and rows[1, 10] == 1.0
        assert (p.inverse_rows(np.array([3])) != p.forward_rows(np.array([3]))).nnz == 0

    def test_split_factor_is_identity(self, matrix):
        p = IdentityPreconditioner()
        p.setup(matrix)
        assert (p.split_factor() != sp.identity(64)).nnz == 0

    def test_is_block_diagonal(self, matrix):
        p = IdentityPreconditioner()
        p.setup(matrix)
        assert p.is_block_diagonal


class TestJacobi:
    def test_apply_divides_by_diagonal(self, matrix):
        p = JacobiPreconditioner()
        p.setup(matrix)
        r = np.ones(64)
        assert np.allclose(p.apply(r), 1.0 / matrix.diagonal())

    def test_apply_block_matches_global(self, matrix):
        partition = BlockRowPartition(64, 4)
        p = JacobiPreconditioner()
        p.setup(matrix, partition)
        r = np.arange(64.0) + 1.0
        z = p.apply(r)
        for rank in range(4):
            start, stop = partition.range_of(rank)
            assert np.allclose(p.apply_block(rank, r[start:stop]), z[start:stop])

    def test_apply_block_without_partition_raises(self, matrix):
        p = JacobiPreconditioner()
        p.setup(matrix)
        with pytest.raises(RuntimeError):
            p.apply_block(0, np.ones(16))

    def test_zero_diagonal_rejected(self):
        bad = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 2.0]]))
        p = JacobiPreconditioner()
        with pytest.raises(ValueError):
            p.setup(bad)

    def test_rows(self, matrix):
        p = JacobiPreconditioner()
        p.setup(matrix)
        idx = np.array([0, 5])
        fwd = p.forward_rows(idx)
        inv = p.inverse_rows(idx)
        d = matrix.diagonal()
        assert fwd[0, 0] == pytest.approx(d[0])
        assert inv[1, 5] == pytest.approx(1.0 / d[5])

    def test_form(self, matrix):
        p = JacobiPreconditioner()
        p.setup(matrix)
        assert p.form is PreconditionerForm.INVERSE

    def test_split_factor(self, matrix):
        p = JacobiPreconditioner()
        p.setup(matrix)
        factor = p.split_factor()
        assert np.allclose((factor @ factor.T).diagonal(), matrix.diagonal())

    def test_improves_cg_iterations(self):
        # Badly scaled diagonal: Jacobi should help plain CG substantially.
        from repro.solvers import cg, pcg
        rng = np.random.default_rng(0)
        scaling = sp.diags(10.0 ** rng.uniform(0, 3, size=100))
        a = scaling @ poisson_2d(10) @ scaling
        b = rng.standard_normal(100)
        plain = cg(a, b, rtol=1e-8, max_iterations=3000)
        jacobi = JacobiPreconditioner()
        jacobi.setup(sp.csr_matrix(a))
        prec = pcg(a, b, preconditioner=jacobi, rtol=1e-8, max_iterations=3000)
        assert prec.iterations < plain.iterations


class TestBaseProtocol:
    def test_setup_required_before_use(self):
        p = JacobiPreconditioner()
        with pytest.raises(RuntimeError):
            _ = p.matrix

    def test_describe(self, matrix):
        p = JacobiPreconditioner()
        assert "jacobi" in p.describe()


class TestFactory:
    @pytest.mark.parametrize("name", ["identity", "none", "jacobi", "block_jacobi",
                                      "block_jacobi_ilu", "ssor"])
    def test_known_names(self, name, matrix):
        p = make_preconditioner(name)
        p.setup(matrix, BlockRowPartition(64, 4))
        z = p.apply(np.ones(64))
        assert z.shape == (64,)
        assert np.all(np.isfinite(z))

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_preconditioner("does_not_exist")

    def test_describe_all_covers_registry(self):
        descriptions = describe_all()
        for name in PRECONDITIONERS:
            if name == "none":
                continue
            assert name in descriptions

    def test_kwargs_forwarded(self, matrix):
        p = make_preconditioner("ssor", omega=1.3)
        assert p.omega == pytest.approx(1.3)


class TestMultiRhsApplyBlock:
    """The 2-D ``apply_block`` path: one (n_i, k) block per application,
    bit-identical per column to the 1-D path (the block-PCG contract)."""

    K = 3

    def _make(self, name, matrix, partition):
        p = make_preconditioner(name)
        p.setup(matrix, partition)
        return p

    @pytest.mark.parametrize("name", ["identity", "jacobi", "block_jacobi"])
    def test_columns_bit_identical_to_1d_path(self, matrix, name):
        partition = BlockRowPartition(64, 4)
        p = self._make(name, matrix, partition)
        rng = np.random.default_rng(0)
        for rank in range(4):
            block = rng.standard_normal((partition.size_of(rank), self.K))
            out = p.apply_block(rank, block)
            assert out.shape == block.shape
            for j in range(self.K):
                single = p.apply_block(rank, np.ascontiguousarray(block[:, j]))
                assert np.array_equal(out[:, j], single)

    @pytest.mark.parametrize("solver", ["direct", "ilu", "ic"])
    def test_block_jacobi_inner_solvers(self, matrix, solver):
        from repro.precond import BlockJacobiPreconditioner

        partition = BlockRowPartition(64, 4)
        p = BlockJacobiPreconditioner(block_solver=solver)
        p.setup(matrix, partition)
        rng = np.random.default_rng(1)
        block = rng.standard_normal((partition.size_of(0), self.K))
        out = p.apply_block(0, block)
        for j in range(self.K):
            assert np.array_equal(
                out[:, j],
                p.apply_block(0, np.ascontiguousarray(block[:, j])),
            )

    def test_2d_wrong_row_count_rejected(self, matrix):
        from repro.precond import BlockJacobiPreconditioner

        partition = BlockRowPartition(64, 4)
        p = BlockJacobiPreconditioner()
        p.setup(matrix, partition)
        with pytest.raises(ValueError):
            p.apply_block(0, np.ones((7, self.K)))
