"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_rng,
    choice_without_replacement,
    jittered,
    spawn_rngs,
    stable_hash_seed,
)


class TestAsRng:
    def test_from_int_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=5)
        b = as_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**9)
        b = as_rng(2).integers(0, 10**9)
        assert a != b

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_from_seed_sequence(self):
        ss = np.random.SeedSequence(7)
        gen = as_rng(ss)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        rngs = spawn_rngs(0, 5)
        assert len(rngs) == 5

    def test_streams_are_independent(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.integers(0, 10**12) for r in rngs]
        assert len(set(draws)) == 3

    def test_reproducible(self):
        a = [r.integers(0, 10**9) for r in spawn_rngs(5, 4)]
        b = [r.integers(0, 10**9) for r in spawn_rngs(5, 4)]
        assert a == b

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_from_generator_parent(self):
        parent = np.random.default_rng(3)
        children = spawn_rngs(parent, 2)
        assert len(children) == 2


class TestStableHashSeed:
    def test_deterministic(self):
        assert stable_hash_seed("M1", 3, "start") == stable_hash_seed("M1", 3, "start")

    def test_differs_by_parts(self):
        assert stable_hash_seed("M1", 3) != stable_hash_seed("M1", 4)

    def test_differs_by_base_seed(self):
        assert stable_hash_seed("x", base_seed=0) != stable_hash_seed("x", base_seed=1)

    def test_in_range(self):
        value = stable_hash_seed("anything", 123, None)
        assert 0 <= value < 2**63


class TestJittered:
    def test_no_rng_returns_value(self):
        assert jittered(None, 10.0, 0.5) == 10.0

    def test_zero_std_returns_value(self):
        assert jittered(np.random.default_rng(0), 10.0, 0.0) == 10.0

    def test_jitter_changes_value(self):
        rng = np.random.default_rng(0)
        values = {jittered(rng, 1.0, 0.1) for _ in range(10)}
        assert len(values) > 1

    def test_jitter_never_negative(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert jittered(rng, 1.0, 2.0) > 0.0


class TestChoiceWithoutReplacement:
    def test_distinct(self):
        rng = np.random.default_rng(0)
        picks = choice_without_replacement(rng, range(10), 5)
        assert len(set(picks)) == 5

    def test_subset_of_pool(self):
        rng = np.random.default_rng(0)
        picks = choice_without_replacement(rng, [3, 5, 7, 9], 2)
        assert set(picks) <= {3, 5, 7, 9}

    def test_too_many_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            choice_without_replacement(rng, [1, 2], 3)
