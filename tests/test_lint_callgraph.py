"""Tests for the project-wide symbol table / call graph (`repro.lint.callgraph`).

Contract: module-level functions and class methods are indexed under
stable qualified names; call expressions resolve through module-local
names, import aliases, ``self`` dispatch (static target plus descendant
overrides), and ``super()`` (ancestors, else cooperative-MRO siblings);
decorator-registered functions are the reachability roots; and
``find_call_path`` returns the shortest hop chain used in R008 traces.
"""

import textwrap

from repro.lint.callgraph import (
    ATTR_CANDIDATE_CAP,
    CallGraph,
    get_callgraph,
)
from repro.lint.engine import Project, SourceFile


def build(tmp_path, modules):
    """CallGraph over a synthetic tree of ``{rel_path: source}`` modules."""
    files = []
    for rel, source in modules.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        files.append(SourceFile.parse(path, rel))
    project = Project(files)
    return project, CallGraph(project)


def call_in(graph, qualname):
    """The first call expression of the function *qualname*, resolved."""
    func = graph.functions[qualname]
    for _, targets in graph.callees(func):
        return [t.qualname for t in targets]
    return []


class TestSymbolTable:
    def test_functions_and_methods_indexed(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": """\
            def helper():
                pass

            class Solver:
                def solve(self):
                    pass
        """})
        assert "mod.py::helper" in graph.functions
        assert "mod.py::Solver.solve" in graph.functions
        info = graph.functions["mod.py::Solver.solve"]
        assert info.class_name == "Solver"
        assert info.path == "mod.py"
        assert info.location() == f"mod.py:{info.line}"
        assert "Solver" in graph.classes
        assert "solve" in graph.classes["Solver"].methods

    def test_class_bases_recorded(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": """\
            import pkg

            class Base:
                pass

            class Child(Base, pkg.External):
                pass
        """})
        assert graph.classes["Child"].base_names == ("Base", "pkg.External")


class TestNameResolution:
    def test_module_local_call(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": """\
            def target():
                pass

            def caller():
                target()
        """})
        assert call_in(graph, "mod.py::caller") == ["mod.py::target"]

    def test_imported_name(self, tmp_path):
        _, graph = build(tmp_path, {
            "helpers.py": "def util():\n    pass\n",
            "mod.py": """\
                from helpers import util

                def caller():
                    util()
            """,
        })
        assert call_in(graph, "mod.py::caller") == ["helpers.py::util"]

    def test_import_alias(self, tmp_path):
        _, graph = build(tmp_path, {
            "helpers.py": "def util():\n    pass\n",
            "mod.py": """\
                from helpers import util as u

                def caller():
                    u()
            """,
        })
        assert call_in(graph, "mod.py::caller") == ["helpers.py::util"]

    def test_unique_project_wide_fallback(self, tmp_path):
        _, graph = build(tmp_path, {
            "helpers.py": "def only_here():\n    pass\n",
            "mod.py": "def caller():\n    only_here()\n",
        })
        assert call_in(graph, "mod.py::caller") == ["helpers.py::only_here"]

    def test_ambiguous_unimported_name_unresolved(self, tmp_path):
        _, graph = build(tmp_path, {
            "a.py": "def twin():\n    pass\n",
            "b.py": "def twin():\n    pass\n",
            "mod.py": "def caller():\n    twin()\n",
        })
        assert call_in(graph, "mod.py::caller") == []

    def test_constructor_calls_not_traversed(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": """\
            class Thing:
                pass

            def caller():
                Thing()
        """})
        assert call_in(graph, "mod.py::caller") == []


class TestSelfAndSuperDispatch:
    HIERARCHY = """\
        class Base:
            def hook(self):
                pass

            def loop(self):
                self.hook()

        class Child(Base):
            def hook(self):
                super().hook()
    """

    def test_self_call_links_static_target_and_overrides(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": self.HIERARCHY})
        targets = call_in(graph, "mod.py::Base.loop")
        assert targets == ["mod.py::Base.hook", "mod.py::Child.hook"]

    def test_super_resolves_to_ancestor(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": self.HIERARCHY})
        assert call_in(graph, "mod.py::Child.hook") == ["mod.py::Base.hook"]

    def test_resolve_method_walks_ancestors(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": self.HIERARCHY})
        found = graph.resolve_method("Child", "loop")
        assert found is not None and found.qualname == "mod.py::Base.loop"
        assert graph.resolve_method("Child", "missing") is None

    def test_descendants_are_transitive(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": """\
            class A:
                pass

            class B(A):
                pass

            class C(B):
                pass
        """})
        assert [c.name for c in graph.descendants("A")] == ["B", "C"]

    def test_bare_mixin_super_lands_on_cobase(self, tmp_path):
        # Cooperative MRO: the mixin has no project-local ancestors, but a
        # concrete class mixes it in before Base, so super() from the mixin
        # reaches Base's method at runtime.
        _, graph = build(tmp_path, {"mod.py": """\
            class Base:
                def hook(self):
                    pass

            class Mixin:
                def hook(self):
                    super().hook()

            class Concrete(Mixin, Base):
                pass
        """})
        assert call_in(graph, "mod.py::Mixin.hook") == ["mod.py::Base.hook"]


class TestAttributeCandidates:
    @staticmethod
    def _classes_with_method(n):
        return "\n".join(
            f"class C{i}:\n    def frob(self):\n        pass\n"
            for i in range(n))

    def test_few_candidates_fan_out(self, tmp_path):
        source = self._classes_with_method(2) + \
            "def caller(obj):\n    obj.frob()\n"
        _, graph = build(tmp_path, {"mod.py": source})
        assert sorted(call_in(graph, "mod.py::caller")) == \
            ["mod.py::C0.frob", "mod.py::C1.frob"]

    def test_too_many_candidates_unresolved(self, tmp_path):
        source = self._classes_with_method(ATTR_CANDIDATE_CAP + 1) + \
            "def caller(obj):\n    obj.frob()\n"
        _, graph = build(tmp_path, {"mod.py": source})
        assert call_in(graph, "mod.py::caller") == []


class TestEntryPoints:
    def test_registered_decorators_found(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": """\
            from repro.core.registry import register_solver

            @register_solver("probe")
            def build_probe(problem, spec):
                return None

            @staticmethod
            def unrelated():
                pass
        """})
        roots = graph.registered_entry_points()
        assert [f.qualname for f in roots] == ["mod.py::build_probe"]


class TestFindCallPath:
    CHAIN = """\
        def a():
            b()

        def b():
            c()

        def c():
            pass
    """

    def test_hops_carry_call_site_lines(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": self.CHAIN})
        start = graph.functions["mod.py::a"]
        path = graph.find_call_path(start, lambda f: f.name == "c")
        assert path is not None
        assert [(hop.qualname, line) for hop, line in path] == [
            ("mod.py::a", 1),   # first hop: the start's own def line
            ("mod.py::b", 2),   # called from a() at line 2
            ("mod.py::c", 5),   # called from b() at line 5
        ]

    def test_start_matching_target_is_a_single_hop(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": self.CHAIN})
        start = graph.functions["mod.py::a"]
        path = graph.find_call_path(start, lambda f: f.name == "a")
        assert path == [(start, start.line)]

    def test_unreachable_target_returns_none(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": self.CHAIN})
        start = graph.functions["mod.py::c"]
        assert graph.find_call_path(start, lambda f: f.name == "a") is None

    def test_max_depth_bounds_the_search(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": self.CHAIN})
        start = graph.functions["mod.py::a"]
        assert graph.find_call_path(start, lambda f: f.name == "c",
                                    max_depth=1) is None


class TestCaching:
    def test_get_callgraph_reuses_per_project(self, tmp_path):
        project, _ = build(tmp_path, {"mod.py": "def f():\n    pass\n"})
        assert get_callgraph(project) is get_callgraph(project)

    def test_distinct_projects_get_distinct_graphs(self, tmp_path):
        p1, _ = build(tmp_path / "one", {"mod.py": "def f():\n    pass\n"})
        p2, _ = build(tmp_path / "two", {"mod.py": "def f():\n    pass\n"})
        assert get_callgraph(p1) is not get_callgraph(p2)

    def test_callees_cached(self, tmp_path):
        _, graph = build(tmp_path, {"mod.py": """\
            def target():
                pass

            def caller():
                target()
        """})
        func = graph.functions["mod.py::caller"]
        assert graph.callees(func) is graph.callees(func)
